use floorplan::reference::power8_like;
use simkit::units::Seconds;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;
fn main() {
    let chip = power8_like();
    for us in [1000.0, 100.0] {
        let cfg = EngineConfig {
            decision_interval: Seconds::from_micros(us),
            thermal_step: Seconds::from_micros(10.0),
            noise_window_count: 8,
            duration: Seconds::from_millis(8.0),
            ..EngineConfig::standard()
        };
        let engine = SimulationEngine::new(&chip, cfg);
        let r = engine.run(Benchmark::LuNcb, PolicyKind::OracT).unwrap();
        // hottest VR and its peak temp
        let mut best = (0usize, f64::MIN);
        for v in 0..96 {
            let m = r
                .vr_temperatures()
                .channel(v)
                .iter()
                .copied()
                .fold(f64::MIN, f64::max);
            if m > best.1 {
                best = (v, m);
            }
        }
        let site = chip.vr_site(floorplan::VrId(best.0));
        println!("{us:6.0}us Tmax {:6.2} hottestVR VR{} temp {:6.2} domain {} hood {:?} center ({:.1},{:.1})mm",
            r.max_temperature().get(), best.0, best.1,
            chip.domain_of_vr(floorplan::VrId(best.0)).name(), site.neighborhood(),
            site.center().x.as_mm(), site.center().y.as_mm());
        // heatmap max location
        let hm = r.heatmap_at_tmax();
        let mut hot = (0usize, 0usize, f64::MIN);
        for (j, row) in hm.iter().enumerate() {
            for (i, &t) in row.iter().enumerate() {
                if t > hot.2 {
                    hot = (i, j, t);
                }
            }
        }
        println!(
            "          heatmap max {:.2} at cell ({},{}) of 64 → ({:.1},{:.1})mm",
            hot.2,
            hot.0,
            hot.1,
            hot.0 as f64 * 0.328 + 0.16,
            hot.1 as f64 * 0.328 + 0.16
        );
    }
}
