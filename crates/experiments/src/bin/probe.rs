//! Diagnostic probe: runs `lu_ncb × oract` at two decision intervals and
//! prints the hottest VR site and heat-map peak for each, as a quick
//! spatial sanity check of the thermal/gating coupling.
//!
//! Accepts the shared experiment flags: `--quiet`/`-q` and
//! `--telemetry=<dir>` (one manifest cell per probed interval).

use experiments::context::ExpOptions;
use experiments::telemetry::TelemetryCtx;
use floorplan::reference::power8_like;
use simkit::telemetry::manifest::RunManifest;
use simkit::units::Seconds;
use std::time::Instant;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

fn main() {
    let opts = ExpOptions::from_args();
    let ctx = TelemetryCtx::from_options(&opts);
    let chip = power8_like();
    let mut manifest = RunManifest::new("probe");
    manifest.push_config("benchmark", Benchmark::LuNcb.label());
    manifest.push_config("policy", "oract");
    for us in [1000.0, 100.0] {
        let cfg = EngineConfig {
            decision_interval: Seconds::from_micros(us),
            thermal_step: Seconds::from_micros(10.0),
            noise_window_count: 8,
            duration: Seconds::from_millis(8.0),
            ..EngineConfig::standard()
        };
        let mut engine = SimulationEngine::new(&chip, cfg);
        let cell_counter = ctx.as_ref().map(|ctx| {
            let (telemetry, counter) = ctx.cell_handle();
            engine.set_telemetry(telemetry);
            counter
        });
        let started = Instant::now();
        let r = engine.run(Benchmark::LuNcb, PolicyKind::OracT).unwrap();
        if ctx.is_some() {
            manifest
                .cells
                .push(simkit::telemetry::manifest::CellManifest {
                    label: format!("lu_ncb-oract-{us:.0}us"),
                    seconds: started.elapsed().as_secs_f64(),
                    events: cell_counter.map_or(0, |c| c.count()),
                    cached: false,
                });
        }
        if opts.quiet {
            continue;
        }
        // hottest VR and its peak temp
        let mut best = (0usize, f64::MIN);
        for v in 0..96 {
            let m = r
                .vr_temperatures()
                .channel(v)
                .iter()
                .copied()
                .fold(f64::MIN, f64::max);
            if m > best.1 {
                best = (v, m);
            }
        }
        let site = chip.vr_site(floorplan::VrId(best.0));
        println!("{us:6.0}us Tmax {:6.2} hottestVR VR{} temp {:6.2} domain {} hood {:?} center ({:.1},{:.1})mm",
            r.max_temperature().get(), best.0, best.1,
            chip.domain_of_vr(floorplan::VrId(best.0)).name(), site.neighborhood(),
            site.center().x.as_mm(), site.center().y.as_mm());
        // heatmap max location
        let hm = r.heatmap_at_tmax();
        let mut hot = (0usize, 0usize, f64::MIN);
        for (j, row) in hm.iter().enumerate() {
            for (i, &t) in row.iter().enumerate() {
                if t > hot.2 {
                    hot = (i, j, t);
                }
            }
        }
        println!(
            "          heatmap max {:.2} at cell ({},{}) of 64 → ({:.1},{:.1})mm",
            hot.2,
            hot.0,
            hot.1,
            hot.0 as f64 * 0.328 + 0.16,
            hot.1 as f64 * 0.328 + 0.16
        );
    }
    if let Some(ctx) = &ctx {
        match ctx.finish(&mut manifest) {
            Ok(path) => {
                if !opts.quiet {
                    println!(
                        "telemetry: {} events → {}",
                        manifest.total_events(),
                        path.display()
                    );
                }
            }
            Err(e) => eprintln!("warning: cannot write telemetry manifest: {e}"),
        }
    }
}
