//! Fig. 14 — per-cycle voltage noise over the critical sampled window:
//! OracT vs. OracV (fft).

use experiments::context::ExpOptions;
use experiments::figures::noise_figs::fig14;
use experiments::report::{banner, downsample, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Fig. 14",
        "noise trace of the worst sampled window: OracT vs. OracV (fft)",
    );
    let data = fig14(&opts);
    let points = 50;
    let oract = downsample(&data.oract, points);
    let oracv = downsample(&data.oracv, points);
    let mut table = TextTable::new(&["cycle bucket", "OracT (%Vdd)", "OracV (%Vdd)"]);
    for k in 0..oract.len().max(oracv.len()) {
        table.add_row(vec![
            format!("{}", k * data.oract.len() / points),
            oract.get(k).map_or("-".into(), |v| format!("{v:.2}")),
            oracv.get(k).map_or("-".into(), |v| format!("{v:.2}")),
        ]);
    }
    table.print();
    let peak = |t: &[f64]| t.iter().copied().fold(0.0f64, f64::max);
    let p_t = peak(&data.oract);
    let p_v = peak(&data.oracv);
    println!(
        "\nPeaks: OracT {:.1} %, OracV {:.1} % — OracV lowers the critical \
         window's maximum noise by {:.0} % (paper: 28.2 % for fft).",
        p_t,
        p_v,
        (1.0 - p_v / p_t) * 100.0
    );
}
