//! General-purpose simulation runner: any workload × policy ×
//! configuration from the command line, with optional trace replay and
//! export.
//!
//! ```text
//! cargo run --release -p experiments --bin simulate -- \
//!     --bench fft --policy pracvt --duration-ms 10 --heatmap
//!
//! cargo run --release -p experiments --bin simulate -- \
//!     --mix chol,rayt --policy oract
//!
//! cargo run --release -p experiments --bin simulate -- \
//!     --trace my_trace.csv --policy allon
//!
//! cargo run --release -p experiments --bin simulate -- \
//!     --bench lu_ncb --export-trace lu_ncb.csv
//! ```

use experiments::report::{self, banner, metrics_report, render_heatmap, solver_report};
use experiments::telemetry::TelemetryCtx;
use floorplan::reference::power8_like;
use simkit::telemetry::manifest::{CellManifest, RunManifest};
use simkit::units::Seconds;
use std::fs::File;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use thermal::ThermalConfig;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use vreg::RegulatorDesign;
use workload::{replay, Benchmark, TraceGenerator, WorkloadMix, WorkloadSpec};

struct Args {
    spec: WorkloadSpec,
    policy: PolicyKind,
    duration_ms: Option<f64>,
    windows: Option<usize>,
    grid: Option<usize>,
    design: Option<RegulatorDesign>,
    trace_path: Option<String>,
    export_path: Option<String>,
    heatmap: bool,
    quiet: bool,
    telemetry: Option<PathBuf>,
    frames: Option<usize>,
    live: bool,
}

fn usage() -> &'static str {
    "usage: simulate [--bench <label> | --mix <a,b,..>] [--policy <tag>]\n\
     \u{20}       [--duration-ms <f64>] [--windows <n>] [--grid <n>]\n\
     \u{20}       [--design fivr|ldo] [--trace <csv>] [--export-trace <csv>]\n\
     \u{20}       [--heatmap] [--quiet|-q] [--telemetry=<dir>] [--frames <n>]\n\
     \u{20}       [--live]\n\
     benchmarks: barnes chol fft fmm lu_cb lu_ncb oc_cp oc_ncp radio\n\
     \u{20}           radix rayt volr water_n water_s\n\
     policies:   allon offchip naive oract oracv oracvt pract pracvt\n\
     \u{20}           integralt integralp\n\
     telemetry:  --telemetry=<dir> (or SIMKIT_TELEMETRY=<dir>) writes a\n\
     \u{20}           structured trace.jsonl + manifest.json into <dir>;\n\
     \u{20}           --frames <n> records a spatial thermal frame every\n\
     \u{20}           n thermal steps into the trace (0 = off);\n\
     \u{20}           --live (or SIMKIT_LIVE=1) adds a streaming in-process\n\
     \u{20}           aggregator that self-reports its cost as\n\
     \u{20}           telemetry.live.* counters in the trace"
}

fn parse_benchmark(label: &str) -> Result<Benchmark, String> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.label() == label)
        .ok_or_else(|| format!("unknown benchmark {label:?}"))
}

fn parse_policy(tag: &str) -> Result<PolicyKind, String> {
    match tag {
        "allon" => Ok(PolicyKind::AllOn),
        "offchip" => Ok(PolicyKind::OffChip),
        "naive" => Ok(PolicyKind::Naive),
        "oract" => Ok(PolicyKind::OracT),
        "oracv" => Ok(PolicyKind::OracV),
        "oracvt" => Ok(PolicyKind::OracVT),
        "pract" => Ok(PolicyKind::PracT),
        "pracvt" => Ok(PolicyKind::PracVT),
        "integralt" => Ok(PolicyKind::IntegralT),
        "integralp" => Ok(PolicyKind::IntegralP),
        other => Err(format!("unknown policy {other:?}")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec: WorkloadSpec::Single(Benchmark::LuNcb),
        policy: PolicyKind::PracVT,
        duration_ms: None,
        windows: None,
        grid: None,
        design: None,
        trace_path: None,
        export_path: None,
        heatmap: false,
        quiet: false,
        telemetry: std::env::var("SIMKIT_TELEMETRY").ok().map(PathBuf::from),
        frames: None,
        live: std::env::var("SIMKIT_LIVE").is_ok(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--bench" => args.spec = WorkloadSpec::Single(parse_benchmark(&value()?)?),
            "--mix" => {
                let assignments = value()?
                    .split(',')
                    .map(parse_benchmark)
                    .collect::<Result<Vec<_>, _>>()?;
                if assignments.is_empty() {
                    return Err("--mix needs at least one benchmark".into());
                }
                args.spec = WorkloadSpec::Mix(WorkloadMix::new(assignments));
            }
            "--policy" => args.policy = parse_policy(&value()?)?,
            "--duration-ms" => {
                args.duration_ms = Some(value()?.parse().map_err(|e| format!("bad duration: {e}"))?)
            }
            "--windows" => {
                args.windows = Some(value()?.parse().map_err(|e| format!("bad windows: {e}"))?)
            }
            "--grid" => args.grid = Some(value()?.parse().map_err(|e| format!("bad grid: {e}"))?),
            "--design" => {
                args.design = Some(match value()?.as_str() {
                    "fivr" => RegulatorDesign::fivr(),
                    "ldo" => RegulatorDesign::power8_ldo(),
                    other => return Err(format!("unknown design {other:?}")),
                })
            }
            "--frames" => {
                args.frames = Some(value()?.parse().map_err(|e| format!("bad frames: {e}"))?)
            }
            "--trace" => args.trace_path = Some(value()?),
            "--export-trace" => args.export_path = Some(value()?),
            "--heatmap" => args.heatmap = true,
            "--quiet" | "-q" => args.quiet = true,
            "--telemetry" => args.telemetry = Some(PathBuf::from(value()?)),
            "--live" => args.live = true,
            "--help" | "-h" => return Err(String::new()),
            other => match other.strip_prefix("--telemetry=") {
                Some(dir) => args.telemetry = Some(PathBuf::from(dir)),
                None => return Err(format!("unknown flag {other:?}")),
            },
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    report::set_quiet(args.quiet);
    let chip = power8_like();
    let mut config = EngineConfig::standard();
    if let Some(ms) = args.duration_ms {
        config.duration = Seconds::from_millis(ms);
    }
    if let Some(w) = args.windows {
        config.noise_window_count = w;
    }
    if let Some(n) = args.grid {
        config.thermal = ThermalConfig {
            nx: n,
            ny: n,
            ..config.thermal
        };
    }
    if let Some(design) = args.design {
        config.design = design;
    }
    if let Some(every) = args.frames {
        config.frame_every = every;
    }
    let duration = config.duration;
    let noise_windows = config.noise_window_count;
    let grid_n = config.thermal.nx;
    // A single-benchmark run is exactly one scenario of the service
    // layer; stamping its content hash into the manifest ties the run
    // to the matching `ScenarioCache` entry (mixes and trace replays
    // have no scenario identity).
    let scenario_hash = match (&args.spec, &args.trace_path) {
        (WorkloadSpec::Single(bench), None) => Some(
            experiments::service::ScenarioSpec::new(*bench, args.policy, config.clone())
                .content_hash(),
        ),
        _ => None,
    };
    let mut engine = SimulationEngine::new(&chip, config);

    // Telemetry: the engine runs with a per-cell counted handle so the
    // manifest's single cell carries an exact event count.
    let telemetry_ctx =
        args.telemetry
            .as_ref()
            .and_then(|dir| match TelemetryCtx::create_with(dir, args.live) {
                Ok(ctx) => Some(ctx),
                Err(e) => {
                    eprintln!("warning: cannot open telemetry dir {}: {e}", dir.display());
                    None
                }
            });
    let cell_counter = telemetry_ctx.as_ref().map(|ctx| {
        let (telemetry, counter) = ctx.cell_handle();
        engine.set_telemetry(telemetry);
        counter
    });

    // Export-only path.
    if let Some(path) = &args.export_path {
        let trace = TraceGenerator::new(&chip).generate_spec(&args.spec, duration);
        let file = match File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = replay::write_csv(&trace, file) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} samples × {} blocks to {path}",
            trace.sample_count(),
            trace.activity().channel_count()
        );
        return ExitCode::SUCCESS;
    }

    banner("simulate", &format!("{} under {}", args.spec, args.policy));
    let run_started = Instant::now();
    let result = if let Some(path) = &args.trace_path {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let trace = match replay::read_csv(file, Benchmark::LuNcb) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        engine.run_trace(&trace, args.policy)
    } else {
        engine.run_spec(&args.spec, args.policy)
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let (Some(ctx), Some(counter)) = (&telemetry_ctx, &cell_counter) {
        let mut manifest = RunManifest::new("simulate");
        manifest.push_config("workload", args.spec.to_string());
        manifest.push_config("policy", experiments::sweep::policy_tag(args.policy));
        manifest.push_config("duration_ms", format!("{}", duration.get() * 1e3));
        manifest.push_config("windows", noise_windows);
        manifest.push_config("grid", grid_n);
        if let Some(path) = &args.trace_path {
            manifest.push_config("trace", path);
        }
        if let Some(hash) = scenario_hash {
            manifest.push_config("scenario_hash", format!("{hash:016x}"));
        }
        manifest.cells.push(CellManifest {
            label: format!(
                "{}-{}",
                args.spec,
                experiments::sweep::policy_tag(args.policy)
            ),
            seconds: run_started.elapsed().as_secs_f64(),
            events: counter.count(),
            cached: false,
        });
        match ctx.finish(&mut manifest) {
            Ok(path) => {
                if !args.quiet {
                    println!(
                        "telemetry:            {} events → {}",
                        manifest.total_events(),
                        path.display()
                    );
                }
            }
            Err(e) => eprintln!("warning: cannot write telemetry manifest: {e}"),
        }
    }

    if args.quiet {
        return ExitCode::SUCCESS;
    }
    println!("T_max:                {:.2}", result.max_temperature());
    println!("thermal gradient:     {:.2} °C", result.max_gradient());
    println!(
        "conversion η:         {:.2} %",
        result.mean_efficiency() * 100.0
    );
    println!("regulator loss:       {:.2}", result.mean_total_vr_loss());
    println!(
        "max voltage noise:    {}",
        result
            .max_noise_percent()
            .map_or("- (off-chip)".to_string(), |v| format!("{v:.2} % of Vdd"))
    );
    println!(
        "emergency residency:  {}",
        result
            .emergency_cycle_fraction()
            .map_or("-".to_string(), |v| format!("{:.4} % of cycles", v * 100.0))
    );
    println!(
        "active regulators:    {:.1} / {} (mean)",
        result.mean_active_count(),
        chip.vr_sites().len()
    );
    if let Some(r2) = result.predictor_r_squared() {
        println!("predictor R²:         {r2:.4}");
    }
    if !result.solver_profile().is_empty() {
        print!(
            "\nsolver profile:\n{}",
            solver_report(result.solver_profile())
        );
    }
    if let Some(ctx) = &telemetry_ctx {
        let metrics = metrics_report(ctx.registry());
        if !metrics.is_empty() {
            print!("\ntelemetry metrics:\n{metrics}");
        }
    }
    if args.heatmap {
        println!("\nheat map at T_max:");
        print!("{}", render_heatmap(result.heatmap_at_tmax()));
    }
    ExitCode::SUCCESS
}
