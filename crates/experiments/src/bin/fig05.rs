//! Fig. 5 — the calibration curve family used throughout the evaluation:
//! a per-core domain of 9 FIVR-like phases.

use experiments::figures::regulator::fig05_family;
use experiments::report::{banner, TextTable};

fn main() {
    banner(
        "Fig. 5",
        "η vs. I_out calibration family (9-phase per-core domain)",
    );
    let family = fig05_family();
    let mut headers: Vec<String> = vec!["I_out (A)".to_string()];
    headers.extend(family.per_count.iter().map(|c| c.label.clone()));
    headers.push(family.effective.label.clone());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for k in (0..family.effective.points.len()).step_by(6) {
        let mut row = vec![format!("{:.2}", family.effective.points[k].0)];
        for curve in &family.per_count {
            row.push(format!("{:.1}", curve.points[k].1 * 100.0));
        }
        row.push(format!("{:.1}", family.effective.points[k].1 * 100.0));
        table.add_row(row);
    }
    table.print();
    println!(
        "\nEach component phase supplies ≈1.5 A at η_peak = 90 %; all 9 \
         phases cover the core's full-load demand, and gating the phase \
         count sustains η_peak at lower utilisation (paper Section 5)."
    );
}
