//! Footnote 2 study — sensitivity to the component-regulator count: a
//! sparser distributed network worsens both the thermal and the
//! voltage-noise profile.

use experiments::context::ExpOptions;
use experiments::figures::ablations::ablation_vr_count;
use experiments::report::{banner, fmt_opt, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Study (footnote 2)",
        "per-domain regulator count vs. thermal/noise profile (lu_ncb)",
    );
    let rows = ablation_vr_count(&opts);
    let mut table = TextTable::new(&[
        "VRs/core",
        "VRs/L3",
        "total",
        "T_max all-on",
        "noise all-on",
        "T_max OracT",
        "noise OracT",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.core_vrs.to_string(),
            row.l3_vrs.to_string(),
            (8 * row.core_vrs + 8 * row.l3_vrs).to_string(),
            format!("{:.2}", row.tmax_allon_c),
            fmt_opt(row.noise_allon_pct, 1),
            format!("{:.2}", row.tmax_oract_c),
            fmt_opt(row.noise_oract_pct, 1),
        ]);
    }
    table.print();
    println!(
        "\nShape check (paper footnote 2): the paper chose 96 regulators \
         as the most its simulation infrastructure permitted precisely \
         because 'a lower regulator count worsens both the thermal and \
         the voltage noise profile' — in the all-on columns the 4/2 row \
         sits above the 12/4 row on both metrics. Under OracT, a denser \
         network also buys the governor more placement freedom, which it \
         spends on temperature at some voltage-noise cost."
    );
}
