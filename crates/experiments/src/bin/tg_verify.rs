//! `tg-verify` — physics-invariant and differential verification of the
//! whole simulator stack.
//!
//! Runs, in a fixed deterministic order:
//!
//! * the [`simkit::check`]-based physics/policy oracles (regulator
//!   sizing, Eqn-1 loss consistency, η ≤ η_peak, efficiency-curve shape
//!   consistency, policy active-set exactness, emergency all-on overlay,
//!   thermal energy balance, PDN KCL and linearity);
//! * the CG vs Gauss–Seidel solver differential;
//! * the serial vs parallel sweep differential (cache cleared, both legs
//!   recompute) and the golden-run comparison against the committed
//!   fixture.
//!
//! On any violation the process exits non-zero and prints the fully
//! shrunk counterexample — base seed plus shrunk encoded input — so the
//! failure replays offline. The report contains no timestamps: two runs
//! with the same options render byte-identical output (CI compares them
//! with `cmp`).

use experiments::verify::{self, VerifyOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
tg-verify — physics-invariant + differential verification

USAGE:
    tg-verify [OPTIONS]

OPTIONS:
    --seed=<u64>      Base seed for the property RNG streams (decimal or 0x-hex)
    --cases=<n>       Random cases per cheap oracle (default 48)
    --fast            Reduced depth for CI smoke runs
    --corpus=<dir>    Regression corpus directory (default tests/corpus)
    --no-corpus       Disable corpus replay
    --save=<dir>      Persist newly shrunk counterexamples as .case files
    --threads=<n>     Parallel-sweep leg thread count (default 2)
    --golden=<file>   Golden fixture path (default crates/experiments/tests/fixtures/golden_tiny.csv)
    --bless           Regenerate the golden fixture instead of comparing
    --no-sweep        Skip the sweep differential and golden comparison
    --report=<file>   Also write the report to a file
    -h, --help        This help

Exit status is 0 when every check passes, 1 otherwise.
";

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn main() -> ExitCode {
    let mut opts = VerifyOptions::default();
    let mut report_path: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--seed=") {
            match parse_u64(v) {
                Some(seed) => opts.seed = seed,
                None => return usage_error(&format!("bad --seed value: {v}")),
            }
        } else if let Some(v) = arg.strip_prefix("--cases=") {
            match v.parse() {
                Ok(n) => opts.cases = n,
                Err(_) => return usage_error(&format!("bad --cases value: {v}")),
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            match v.parse() {
                Ok(n) => opts.threads = n,
                Err(_) => return usage_error(&format!("bad --threads value: {v}")),
            }
        } else if let Some(v) = arg.strip_prefix("--corpus=") {
            opts.corpus = Some(PathBuf::from(v));
        } else if let Some(v) = arg.strip_prefix("--save=") {
            opts.save_dir = Some(PathBuf::from(v));
        } else if let Some(v) = arg.strip_prefix("--golden=") {
            opts.golden = PathBuf::from(v);
        } else if let Some(v) = arg.strip_prefix("--report=") {
            report_path = Some(PathBuf::from(v));
        } else {
            match arg.as_str() {
                "--fast" => opts.fast = true,
                "--no-corpus" => opts.corpus = None,
                "--bless" => opts.bless = true,
                "--no-sweep" => opts.skip_sweep = true,
                "-h" | "--help" => {
                    print!("{USAGE}");
                    return ExitCode::SUCCESS;
                }
                other => return usage_error(&format!("unknown argument: {other}")),
            }
        }
    }
    if opts.fast {
        opts.cases = opts.cases.min(16);
    }

    let run = verify::run_all(&opts);
    let rendered = run.render(&opts);
    print!("{rendered}");
    if let Some(path) = report_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("tg-verify: could not write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if run.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("tg-verify: {message}\n\n{USAGE}");
    ExitCode::FAILURE
}
