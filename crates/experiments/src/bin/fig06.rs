//! Fig. 6 — evolution of the active-regulator count with time against
//! the total power demand (lu_ncb).

use experiments::context::ExpOptions;
use experiments::figures::powerloss::fig06;
use experiments::report::{banner, downsample, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Fig. 6",
        "active regulators track the total power demand (lu_ncb, gating)",
    );
    let data = fig06(&opts);
    // 100 µs buckets resolve the program phases without drowning the
    // table (the decision interval is 1 ms).
    let points = (data.time_ms.len() / 5).clamp(1, 200);
    let time = downsample(&data.time_ms, points);
    let power = downsample(&data.power_w, points);
    let active = downsample(&data.active, points);
    let mut table = TextTable::new(&["time (ms)", "total power (W)", "# active regulators"]);
    for k in (0..time.len()).step_by((time.len() / 50).max(1)) {
        table.add_row(vec![
            format!("{:.2}", time[k]),
            format!("{:.1}", power[k]),
            format!("{:.1}", active[k]),
        ]);
    }
    table.print();

    // Correlation between demand and active count at full resolution —
    // the figure's message.
    let corr = correlation(&data.power_w, &data.active);
    println!(
        "\nPearson correlation(power, active) = {corr:.3} — regulator \
         activity closely tracks temporal changes in total power demand \
         (paper Fig. 6)."
    );
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    cov / (va.sqrt() * vb.sqrt())
}
