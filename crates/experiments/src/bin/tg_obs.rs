//! `tg-obs` — trace analytics, run diffing, and perf-regression
//! snapshots over the telemetry layer.
//!
//! Operates on the run directories every experiment binary produces
//! under `--telemetry=<dir>` (a `trace.jsonl` plus `manifest.json`) and
//! on the `BENCH_*.json` performance snapshots this tool captures
//! itself:
//!
//! ```text
//! tg-obs summarize <run-dir>                  # human-readable report
//! tg-obs export <run-dir> [--out <csv>]       # CSV time series
//! tg-obs timeline <run-dir> [--out <json>]    # Chrome-trace / Perfetto
//! tg-obs flame <run-dir> [--out <txt>]        # collapsed stacks
//! tg-obs top <run-dir> [--times] [--tree]     # hottest-site profile
//! tg-obs diff <a> <b> [--all] [--tol m=rel] [--solver-agnostic]
//! tg-obs bench-snapshot [--label <l>] [--out <dir>] [--policies t,t]
//! ```
//!
//! `diff` exits non-zero when a gated metric regresses beyond its
//! tolerance, so it can guard CI.

use experiments::obs::{diff_analyses, diff_manifests, diff_snapshots, DiffConfig, DiffReport};
use experiments::report::{analysis_json, analysis_report};
use experiments::snapshot::{self, BenchSnapshot};
use experiments::sweep::policy_from_tag;
use simkit::telemetry::analyze::{series_points, TraceAnalysis, TraceReader, TraceTailer};
use simkit::telemetry::live::LiveStats;
use simkit::telemetry::manifest::{RunManifest, MANIFEST_FILE, TRACE_FILE};
use simkit::telemetry::prof::Profile;
use simkit::telemetry::rules::{RuleSet, Severity};
use simkit::telemetry::timeline;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};
use thermogater::PolicyKind;

const USAGE: &str = "\
tg-obs — trace analytics over ThermoGater telemetry

USAGE:
    tg-obs summarize <run-dir> [--json] [--out <file>]
        Summarise a run: event counts, metric percentiles, span
        durations, solver convergence, gating churn, emergency rates.
        --json writes one stable-key-order JSON document (schema
        thermogater.summary/v1) instead of the human tables.

    tg-obs watch <run-dir> [--once] [--rules <file.json>]
                 [--status-every <n>] [--interval-ms <n>] [--timeout-s <n>]
        Follow a live trace as it is written: streaming aggregation
        with a deterministic status line every n events (default 1000),
        rules re-evaluated as events arrive, and — once the run
        completes (manifest written), goes idle for timeout-s (default
        30), or --once drains the current file — a final summary that
        is byte-identical to `summarize` on the finished trace, below a
        `--- summary ---` marker. Exits 1 when a rule fails.

    tg-obs check <run-dir> --rules <file.json> [--strict]
        Batch-evaluate a rules file against a finished trace. Prints
        the deterministic rule report and exits 1 when any rule fails
        (with `failed: <rule>` on stderr, mirroring diff's contract);
        --strict also gates warnings. Usage errors exit 2.

    tg-obs export <run-dir> [--out <file.csv>]
        Export the trace as a CSV time series (t_s,metric,value):
        gauges, histograms, solver iterations/residuals, gating
        activity, span durations.

    tg-obs timeline <run-dir> [--out <file.json>]
        Export the trace in Chrome Trace Event JSON: spans as duration
        events per worker track, counters/gauges/histograms as counter
        tracks, gating/emergency/progress as instants, timed solves as
        complete events. Open the file in Perfetto
        (https://ui.perfetto.dev) or chrome://tracing. The export is
        shape-validated before it is written.

    tg-obs flame <run-dir> [--out <file.txt>]
        Fold the trace's spans into collapsed-stack lines
        (`track0;a;b <weight-µs>`), ready for flamegraph.pl or
        inferno-flamegraph. Per-track weights sum exactly to that
        track's root inclusive time.

    tg-obs top <run-dir> [--times] [--tree]
        Hierarchical self-profile of the run: hottest span sites with
        call counts. The default report is structural (byte-identical
        across reruns of the same seeded config); --times adds
        inclusive/exclusive wall time and re-ranks by exclusive time.
        --tree prints the full per-track call tree instead.

    tg-obs diff <a> <b> [--all] [--tol <metric>=<rel>]... [--solver-agnostic]
        Compare two run directories or two BENCH_*.json snapshots.
        Exits 1 when a gated metric regresses beyond tolerance.
        --all prints every compared metric, not just notable ones.
        --solver-agnostic compares runs made with different solver
        backends: solver sites match by backend-stripped name and gate
        on solve counts only, simulation metrics gate at 1e-6 relative.

    tg-obs bench-snapshot [--label <l>] [--out <dir>] [--policies <t,t>]
                          [--grids <n,n>] [--scaling-solves <k>] [--serve]
        Run the pinned fast-config workload per policy and write
        BENCH_<label>.json (schema thermogater.bench/v1). Default
        label `local`, directory `.`, policies allon,oract,pracvt;
        `--policies all` measures all ten (the paper's eight plus
        the integralt/integralp governors). `--grids 64,128` also
        measures the steady-solve grid-scaling axis (cg/mgcg/direct
        per grid edge, `--scaling-solves` cache-warm solves each,
        default 3) into the snapshot's `scaling` member. `--serve`
        measures the scenario-service cache-hit-throughput axis (a
        repeated tiny batch, cold vs warm) into the `serve` member.

A <run-dir> is a directory holding trace.jsonl (and usually
manifest.json), as written by any experiment binary under
--telemetry=<dir>; a bare path to a .jsonl trace also works.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("tg-obs: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("summarize") => cmd_summarize(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("timeline") => cmd_timeline(&args[1..]),
        Some("flame") => cmd_flame(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("bench-snapshot") => cmd_bench_snapshot(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

/// Resolves a CLI input to the trace file it denotes.
fn trace_path(input: &Path) -> PathBuf {
    if input.is_dir() {
        input.join(TRACE_FILE)
    } else {
        input.to_path_buf()
    }
}

/// Loads `manifest.json` next to the trace, when present.
fn load_manifest(input: &Path) -> Result<Option<RunManifest>, String> {
    let path = if input.is_dir() {
        input.join(MANIFEST_FILE)
    } else {
        match input.parent() {
            Some(dir) => dir.join(MANIFEST_FILE),
            None => return Ok(None),
        }
    };
    if !path.is_file() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    RunManifest::from_json(text.trim())
        .map(Some)
        .map_err(|e| format!("invalid manifest {}: {e}", path.display()))
}

fn load_analysis(input: &Path) -> Result<TraceAnalysis, String> {
    let trace = trace_path(input);
    TraceAnalysis::from_path(&trace).map_err(|e| format!("cannot read {}: {e}", trace.display()))
}

fn cmd_summarize(args: &[String]) -> Result<ExitCode, String> {
    let (run_dir, out, flags) = parse_io_args(
        args,
        "usage: tg-obs summarize <run-dir> [--json] [--out <file>]",
        &["--json"],
    )?;
    let input = Path::new(run_dir);
    let text = if flags[0] {
        let analysis = load_analysis(input)?;
        let manifest = load_manifest(input)?;
        analysis_json(&analysis, manifest.as_ref())
    } else {
        render_summarize(input)?
    };
    write_output(&text, out)?;
    Ok(ExitCode::SUCCESS)
}

/// Builds the complete `summarize` text for a run directory. `watch`
/// prints this same string as its final summary, so the two are
/// byte-identical by construction.
fn render_summarize(input: &Path) -> Result<String, String> {
    let analysis = load_analysis(input)?;
    let mut text = format!("run: {}\n", input.display());
    if let Some(manifest) = load_manifest(input)? {
        text.push_str(&format!(
            "created by {} · config hash {:016x} · {} thread(s) · {} cell(s)\n",
            manifest.created_by,
            manifest.config_hash(),
            manifest.threads,
            manifest.cells.len(),
        ));
        if manifest.total_events() != analysis.events {
            text.push_str(&format!(
                "warning: manifest claims {} events but the trace holds {}\n",
                manifest.total_events(),
                analysis.events
            ));
        }
    }
    text.push('\n');
    text.push_str(&analysis_report(&analysis));
    Ok(text)
}

fn load_rules(path: &str) -> Result<RuleSet, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read rules file {path}: {e}"))?;
    RuleSet::from_json(&text).map_err(|e| format!("invalid rules file {path}: {e}"))
}

/// Folds a finished trace into the same streaming aggregates `watch`
/// maintains incrementally.
fn live_stats_from_trace(input: &Path) -> Result<LiveStats, String> {
    let trace = trace_path(input);
    let mut reader =
        TraceReader::open(&trace).map_err(|e| format!("cannot open {}: {e}", trace.display()))?;
    let mut stats = LiveStats::new();
    while let Some(event) = reader
        .next_event()
        .map_err(|e| format!("cannot read {}: {e}", trace.display()))?
    {
        stats.observe(&event);
    }
    stats.malformed_lines = reader.malformed_lines();
    stats.truncated = reader.truncated();
    Ok(stats)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: tg-obs check <run-dir> --rules <file.json> [--strict]";
    let mut run_dir: Option<&str> = None;
    let mut rules_path: Option<&str> = None;
    let mut strict = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--rules" => {
                rules_path = Some(
                    iter.next()
                        .ok_or_else(|| format!("--rules needs a file path\n\n{usage}"))?,
                );
            }
            "--strict" => strict = true,
            _ if run_dir.is_none() && !arg.starts_with('-') => run_dir = Some(arg),
            other => return Err(format!("unexpected argument `{other}`\n\n{usage}")),
        }
    }
    let (Some(run_dir), Some(rules_path)) = (run_dir, rules_path) else {
        return Err(format!("{usage}\n\n{USAGE}"));
    };
    let rules = load_rules(rules_path)?;
    let stats = live_stats_from_trace(Path::new(run_dir))?;
    let report = rules.evaluate(&stats);
    print!("{}", report.render());
    let gate = if strict {
        Severity::Warn
    } else {
        Severity::Fail
    };
    if report.worst() >= gate {
        for outcome in report.outcomes.iter().filter(|o| o.severity >= gate) {
            eprintln!("failed: {}", outcome.rule);
        }
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// One deterministic status line: every field is a pure function of
/// the trace prefix folded so far — counts and aggregates only, never
/// wall-clock times — so two watches of identical runs render
/// identical lines.
fn watch_status(stats: &LiveStats, rules: Option<&RuleSet>) -> String {
    use simkit::telemetry::EventKind;
    let mut line = format!(
        "[watch] events={} decisions={} churn={} solves={} emergencies={} progress={}",
        stats.events,
        stats.counter("engine.decisions"),
        stats.gating.churn(),
        stats.total_solves(),
        stats.emergency.with_emergency,
        stats.kind_count(EventKind::Progress),
    );
    if let Some(rules) = rules {
        let report = rules.evaluate(stats);
        line.push_str(&format!(
            " rules={}ok/{}warn/{}fail",
            report.count(Severity::Ok),
            report.count(Severity::Warn),
            report.count(Severity::Fail),
        ));
    }
    line
}

/// The run is complete once the manifest has landed and the trace has
/// yielded every event it claims (malformed lines count toward the
/// total — they occupy trace lines) with no partial line pending.
fn watch_complete(input: &Path, stats: &LiveStats, tailer: &TraceTailer) -> Result<bool, String> {
    if tailer.partial_tail() {
        return Ok(false);
    }
    Ok(load_manifest(input)?
        .is_some_and(|m| stats.events + tailer.malformed_lines() >= m.total_events()))
}

fn cmd_watch(args: &[String]) -> Result<ExitCode, String> {
    let usage = "usage: tg-obs watch <run-dir> [--once] [--rules <file.json>] \
                 [--status-every <n>] [--interval-ms <n>] [--timeout-s <n>]";
    let mut run_dir: Option<&str> = None;
    let mut once = false;
    let mut rules_path: Option<&str> = None;
    let mut status_every: u64 = 1000;
    let mut interval_ms: u64 = 200;
    let mut timeout_s: f64 = 30.0;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} needs a value\n\n{usage}"))
        };
        match arg.as_str() {
            "--once" => once = true,
            "--rules" => rules_path = Some(value("--rules")?),
            "--status-every" => {
                status_every = value("--status-every")?
                    .parse()
                    .map_err(|_| format!("--status-every needs a positive integer\n\n{usage}"))?;
                if status_every == 0 {
                    return Err(format!(
                        "--status-every needs a positive integer\n\n{usage}"
                    ));
                }
            }
            "--interval-ms" => {
                interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|_| format!("--interval-ms needs an integer\n\n{usage}"))?;
            }
            "--timeout-s" => {
                timeout_s = value("--timeout-s")?
                    .parse()
                    .map_err(|_| format!("--timeout-s needs a number\n\n{usage}"))?;
            }
            _ if run_dir.is_none() && !arg.starts_with('-') => run_dir = Some(arg),
            other => return Err(format!("unexpected argument `{other}`\n\n{usage}")),
        }
    }
    let Some(run_dir) = run_dir else {
        return Err(format!("{usage}\n\n{USAGE}"));
    };
    let input = Path::new(run_dir);
    let rules = rules_path.map(load_rules).transpose()?;
    let trace = trace_path(input);

    // Wait for the trace to appear (the writer may not have started yet).
    let opened = Instant::now();
    let mut tailer = loop {
        match TraceTailer::follow(&trace) {
            Ok(tailer) => break tailer,
            Err(e) => {
                if once || opened.elapsed().as_secs_f64() >= timeout_s {
                    return Err(format!("cannot open {}: {e}", trace.display()));
                }
                std::thread::sleep(Duration::from_millis(interval_ms.max(1)));
            }
        }
    };

    let mut stats = LiveStats::new();
    let mut last_event = Instant::now();
    loop {
        let events = tailer
            .poll()
            .map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
        if events.is_empty() {
            if once || watch_complete(input, &stats, &tailer)? {
                break;
            }
            if last_event.elapsed().as_secs_f64() >= timeout_s {
                eprintln!("watch: no new events for {timeout_s}s, stopping");
                break;
            }
            std::thread::sleep(Duration::from_millis(interval_ms.max(1)));
            continue;
        }
        last_event = Instant::now();
        for event in &events {
            stats.observe(event);
            // Status fires at exact event counts, not poll boundaries,
            // so the rendered sequence is independent of I/O timing.
            if stats.events.is_multiple_of(status_every) {
                println!("{}", watch_status(&stats, rules.as_ref()));
            }
        }
    }
    stats.malformed_lines = tailer.malformed_lines();
    stats.truncated = tailer.partial_tail();
    if !stats.events.is_multiple_of(status_every) || stats.events == 0 {
        println!("{}", watch_status(&stats, rules.as_ref()));
    }
    let mut failed: Vec<String> = Vec::new();
    if let Some(rules) = &rules {
        let report = rules.evaluate(&stats);
        print!("{}", report.render());
        failed = report.failures().map(|o| o.rule.clone()).collect();
    }
    println!("--- summary ---");
    print!("{}", render_summarize(input)?);
    if failed.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        for rule in &failed {
            eprintln!("failed: {rule}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_export(args: &[String]) -> Result<ExitCode, String> {
    let mut run_dir: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    iter.next()
                        .ok_or_else(|| "--out needs a file path".to_string())?,
                );
            }
            _ if run_dir.is_none() => run_dir = Some(arg),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let run_dir = run_dir.ok_or_else(|| format!("usage: tg-obs export <run-dir>\n\n{USAGE}"))?;
    let trace = trace_path(Path::new(run_dir));
    let mut reader =
        TraceReader::open(&trace).map_err(|e| format!("cannot open {}: {e}", trace.display()))?;

    let mut csv = String::from("t_s,metric,value\n");
    let mut points = Vec::new();
    while let Some(event) = reader
        .next_event()
        .map_err(|e| format!("read error in {}: {e}", trace.display()))?
    {
        points.clear();
        series_points(&event, &mut points);
        for (metric, value) in &points {
            csv.push_str(&format!("{:.9},{metric},{value}\n", event.t_s));
        }
    }
    if reader.malformed_lines() > 0 || reader.truncated() {
        eprintln!(
            "warning: {} malformed line(s), truncated: {}",
            reader.malformed_lines(),
            reader.truncated()
        );
    }
    match out {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => {
            // Large traces: one buffered write beats per-line println.
            std::io::stdout()
                .write_all(csv.as_bytes())
                .map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses `<run-dir> [--out <file>]` plus any listed boolean flags;
/// returns (input, out, flag states in the order given).
fn parse_io_args<'a>(
    args: &'a [String],
    usage: &str,
    flags: &[&str],
) -> Result<(&'a str, Option<&'a str>, Vec<bool>), String> {
    let mut run_dir: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut states = vec![false; flags.len()];
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            out = Some(
                iter.next()
                    .ok_or_else(|| "--out needs a file path".to_string())?,
            );
        } else if let Some(pos) = flags.iter().position(|f| f == arg) {
            states[pos] = true;
        } else if run_dir.is_none() && !arg.starts_with('-') {
            run_dir = Some(arg);
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    let run_dir = run_dir.ok_or_else(|| format!("usage: {usage}\n\n{USAGE}"))?;
    Ok((run_dir, out, states))
}

/// Writes `text` to `out` (reporting the path on stderr) or to stdout.
fn write_output(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => {
            std::io::stdout()
                .write_all(text.as_bytes())
                .map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_timeline(args: &[String]) -> Result<ExitCode, String> {
    let (run_dir, out, _) = parse_io_args(args, "tg-obs timeline <run-dir> [--out <file>]", &[])?;
    let trace = trace_path(Path::new(run_dir));
    let json = timeline::chrome_trace_from_path(&trace)
        .map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
    let stats = timeline::validate(&json)
        .map_err(|e| format!("internal error: export failed validation: {e}"))?;
    write_output(&json, out)?;
    eprintln!(
        "{} events: {} span, {} complete, {} counter, {} instant on {} track(s)",
        stats.events, stats.spans, stats.complete, stats.counters, stats.instants, stats.tracks,
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_flame(args: &[String]) -> Result<ExitCode, String> {
    let (run_dir, out, _) = parse_io_args(args, "tg-obs flame <run-dir> [--out <file>]", &[])?;
    let trace = trace_path(Path::new(run_dir));
    let profile =
        Profile::from_path(&trace).map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
    if profile.pairing_errors() > 0 {
        eprintln!(
            "warning: {} span pairing error(s); stacks below them are approximate",
            profile.pairing_errors()
        );
    }
    write_output(&profile.collapsed(), out)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_top(args: &[String]) -> Result<ExitCode, String> {
    let (run_dir, out, flags) = parse_io_args(
        args,
        "tg-obs top <run-dir> [--times] [--tree]",
        &["--times", "--tree"],
    )?;
    let trace = trace_path(Path::new(run_dir));
    let profile =
        Profile::from_path(&trace).map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
    let report = if flags[1] {
        profile.render_tree()
    } else {
        profile.render_top(flags[0])
    };
    write_output(&report, out)?;
    Ok(ExitCode::SUCCESS)
}

/// What one side of a `diff` turned out to be.
enum DiffSide {
    Run(Box<TraceAnalysis>, Option<RunManifest>),
    Snapshot(Box<BenchSnapshot>),
}

fn load_side(input: &Path) -> Result<DiffSide, String> {
    if input.is_file() && input.extension().is_some_and(|e| e == "json") {
        let text = std::fs::read_to_string(input)
            .map_err(|e| format!("cannot read {}: {e}", input.display()))?;
        let snap = BenchSnapshot::from_json(&text)
            .map_err(|e| format!("{} is not a bench snapshot: {e}", input.display()))?;
        return Ok(DiffSide::Snapshot(Box::new(snap)));
    }
    Ok(DiffSide::Run(
        Box::new(load_analysis(input)?),
        load_manifest(input)?,
    ))
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut inputs: Vec<&str> = Vec::new();
    let mut config = DiffConfig::new();
    let mut all = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--solver-agnostic" => config = config.solver_agnostic(true),
            "--tol" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--tol needs <metric>=<rel>".to_string())?;
                let (metric, tol) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --tol `{spec}`, expected <metric>=<rel>"))?;
                let tol: f64 = tol
                    .parse()
                    .map_err(|_| format!("bad --tol value in `{spec}`"))?;
                config = config.with_tolerance(metric, tol);
            }
            _ => inputs.push(arg),
        }
    }
    let [a, b] = inputs[..] else {
        return Err(format!("usage: tg-obs diff <a> <b>\n\n{USAGE}"));
    };

    let report = match (load_side(Path::new(a))?, load_side(Path::new(b))?) {
        (DiffSide::Run(analysis_a, manifest_a), DiffSide::Run(analysis_b, manifest_b)) => {
            let mut report = DiffReport::default();
            if let (Some(ma), Some(mb)) = (manifest_a, manifest_b) {
                report.extend(diff_manifests(&ma, &mb, &config));
            }
            report.extend(diff_analyses(&analysis_a, &analysis_b, &config));
            report
        }
        (DiffSide::Snapshot(snap_a), DiffSide::Snapshot(snap_b)) => {
            diff_snapshots(&snap_a, &snap_b, &config)
        }
        _ => {
            return Err(format!(
                "cannot diff a run directory against a snapshot ({a} vs {b})"
            ))
        }
    };

    let regressions: Vec<&str> = report.regressions().map(|d| d.metric.as_str()).collect();
    let table = report.render(!all);
    if !table.trim_end().ends_with('-') || all {
        // The table body is non-empty (or everything was requested).
        print!("{table}");
    }
    println!(
        "{} metric(s) compared, {} regression(s)",
        report.deltas.len(),
        regressions.len()
    );
    if regressions.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        for metric in &regressions {
            eprintln!("regression: {metric}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_bench_snapshot(args: &[String]) -> Result<ExitCode, String> {
    let mut label = "local".to_string();
    let mut out_dir = PathBuf::from(".");
    let mut policies = vec![PolicyKind::AllOn, PolicyKind::OracT, PolicyKind::PracVT];
    let mut grids: Vec<usize> = Vec::new();
    let mut scaling_solves = 3usize;
    let mut serve = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--serve" => serve = true,
            "--grids" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--grids needs a comma-separated list".to_string())?;
                grids = spec
                    .split(',')
                    .map(|g| {
                        g.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| format!("bad grid edge `{g}`"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--scaling-solves" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--scaling-solves needs a count".to_string())?;
                scaling_solves = spec
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("bad --scaling-solves `{spec}`"))?;
            }
            "--label" => {
                label = iter
                    .next()
                    .ok_or_else(|| "--label needs a value".to_string())?
                    .clone();
            }
            "--out" => {
                out_dir = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| "--out needs a directory".to_string())?,
                );
            }
            "--policies" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--policies needs a comma-separated list".to_string())?;
                if spec == "all" {
                    policies = PolicyKind::EXTENDED.to_vec();
                } else {
                    policies = spec
                        .split(',')
                        .map(|tag| {
                            policy_from_tag(tag.trim())
                                .ok_or_else(|| format!("unknown policy tag `{tag}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if policies.is_empty() {
        return Err("--policies list is empty".to_string());
    }

    eprintln!(
        "measuring {} polic{} with the pinned fast config…",
        policies.len(),
        if policies.len() == 1 { "y" } else { "ies" }
    );
    let mut snap = snapshot::capture(&label, &policies)?;
    if !grids.is_empty() {
        eprintln!(
            "measuring the grid-scaling axis at {} grid edge(s)…",
            grids.len()
        );
        snap.scaling = snapshot::capture_scaling(&grids, scaling_solves)?;
    }
    if serve {
        eprintln!("measuring the scenario-service cache-hit-throughput axis…");
        snap.serve = Some(snapshot::measure_serve_throughput()?);
    }
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let path = snap
        .write(&out_dir)
        .map_err(|e| format!("cannot write snapshot: {e}"))?;

    let mut t = experiments::report::TextTable::new(&["policy", "steps", "steps/s", "wall s"]);
    for entry in &snap.entries {
        t.add_row(vec![
            entry.policy.clone(),
            entry.steps.to_string(),
            format!("{:.0}", entry.steps_per_sec),
            format!("{:.3}", entry.wall_s),
        ]);
    }
    print!("{}", t.render());
    if !snap.scaling.is_empty() {
        let mut t = experiments::report::TextTable::new(&[
            "grid", "nodes", "backend", "iters", "setup s", "wall s",
        ]);
        for s in &snap.scaling {
            t.add_row(vec![
                format!("{0}x{0}", s.grid),
                s.nodes.to_string(),
                s.backend.clone(),
                format!("{:.1}", s.iters_mean),
                format!("{:.3}", s.setup_s),
                format!("{:.3}", s.wall_s),
            ]);
        }
        print!("{}", t.render());
    }
    if let Some(rss) = snap.peak_rss_bytes {
        println!("peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
    if let Some(t) = &snap.telemetry {
        println!(
            "frame recorder: {} frames in {} µs ({:.3}% of the run)",
            t.frames,
            t.overhead_us,
            t.overhead_share() * 100.0
        );
    }
    if let Some(l) = &snap.live {
        println!(
            "live aggregation: {} events folded in {} µs ({:.3}% of the run)",
            l.events,
            l.overhead_us,
            l.overhead_share() * 100.0
        );
    }
    if let Some(s) = &snap.serve {
        println!(
            "scenario service: {} scenarios ({} unique), cold {:.3} s, warm {:.3} s ({:.0} answers/s from cache)",
            s.scenarios,
            s.unique,
            s.cold_wall_s,
            s.warm_wall_s,
            s.warm_per_sec()
        );
    }
    println!("wrote {}", path.display());
    Ok(ExitCode::SUCCESS)
}
