//! `tg-obs` — trace analytics, run diffing, and perf-regression
//! snapshots over the telemetry layer.
//!
//! Operates on the run directories every experiment binary produces
//! under `--telemetry=<dir>` (a `trace.jsonl` plus `manifest.json`) and
//! on the `BENCH_*.json` performance snapshots this tool captures
//! itself:
//!
//! ```text
//! tg-obs summarize <run-dir>                  # human-readable report
//! tg-obs export <run-dir> [--out <csv>]       # CSV time series
//! tg-obs timeline <run-dir> [--out <json>]    # Chrome-trace / Perfetto
//! tg-obs flame <run-dir> [--out <txt>]        # collapsed stacks
//! tg-obs top <run-dir> [--times] [--tree]     # hottest-site profile
//! tg-obs diff <a> <b> [--all] [--tol m=rel] [--solver-agnostic]
//! tg-obs bench-snapshot [--label <l>] [--out <dir>] [--policies t,t]
//! ```
//!
//! `diff` exits non-zero when a gated metric regresses beyond its
//! tolerance, so it can guard CI.

use experiments::obs::{diff_analyses, diff_manifests, diff_snapshots, DiffConfig, DiffReport};
use experiments::report::analysis_report;
use experiments::snapshot::{self, BenchSnapshot};
use experiments::sweep::policy_from_tag;
use simkit::telemetry::analyze::{series_points, TraceAnalysis, TraceReader};
use simkit::telemetry::manifest::{RunManifest, MANIFEST_FILE, TRACE_FILE};
use simkit::telemetry::prof::Profile;
use simkit::telemetry::timeline;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use thermogater::PolicyKind;

const USAGE: &str = "\
tg-obs — trace analytics over ThermoGater telemetry

USAGE:
    tg-obs summarize <run-dir>
        Summarise a run: event counts, metric percentiles, span
        durations, solver convergence, gating churn, emergency rates.

    tg-obs export <run-dir> [--out <file.csv>]
        Export the trace as a CSV time series (t_s,metric,value):
        gauges, histograms, solver iterations/residuals, gating
        activity, span durations.

    tg-obs timeline <run-dir> [--out <file.json>]
        Export the trace in Chrome Trace Event JSON: spans as duration
        events per worker track, counters/gauges/histograms as counter
        tracks, gating/emergency/progress as instants, timed solves as
        complete events. Open the file in Perfetto
        (https://ui.perfetto.dev) or chrome://tracing. The export is
        shape-validated before it is written.

    tg-obs flame <run-dir> [--out <file.txt>]
        Fold the trace's spans into collapsed-stack lines
        (`track0;a;b <weight-µs>`), ready for flamegraph.pl or
        inferno-flamegraph. Per-track weights sum exactly to that
        track's root inclusive time.

    tg-obs top <run-dir> [--times] [--tree]
        Hierarchical self-profile of the run: hottest span sites with
        call counts. The default report is structural (byte-identical
        across reruns of the same seeded config); --times adds
        inclusive/exclusive wall time and re-ranks by exclusive time.
        --tree prints the full per-track call tree instead.

    tg-obs diff <a> <b> [--all] [--tol <metric>=<rel>]... [--solver-agnostic]
        Compare two run directories or two BENCH_*.json snapshots.
        Exits 1 when a gated metric regresses beyond tolerance.
        --all prints every compared metric, not just notable ones.
        --solver-agnostic compares runs made with different solver
        backends: solver sites match by backend-stripped name and gate
        on solve counts only, simulation metrics gate at 1e-6 relative.

    tg-obs bench-snapshot [--label <l>] [--out <dir>] [--policies <t,t>]
                          [--grids <n,n>] [--scaling-solves <k>]
        Run the pinned fast-config workload per policy and write
        BENCH_<label>.json (schema thermogater.bench/v1). Default
        label `local`, directory `.`, policies allon,oract,pracvt;
        `--policies all` measures all eight. `--grids 64,128` also
        measures the steady-solve grid-scaling axis (cg/mgcg/direct
        per grid edge, `--scaling-solves` cache-warm solves each,
        default 3) into the snapshot's `scaling` member.

A <run-dir> is a directory holding trace.jsonl (and usually
manifest.json), as written by any experiment binary under
--telemetry=<dir>; a bare path to a .jsonl trace also works.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("tg-obs: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("summarize") => cmd_summarize(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("timeline") => cmd_timeline(&args[1..]),
        Some("flame") => cmd_flame(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("bench-snapshot") => cmd_bench_snapshot(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

/// Resolves a CLI input to the trace file it denotes.
fn trace_path(input: &Path) -> PathBuf {
    if input.is_dir() {
        input.join(TRACE_FILE)
    } else {
        input.to_path_buf()
    }
}

/// Loads `manifest.json` next to the trace, when present.
fn load_manifest(input: &Path) -> Result<Option<RunManifest>, String> {
    let path = if input.is_dir() {
        input.join(MANIFEST_FILE)
    } else {
        match input.parent() {
            Some(dir) => dir.join(MANIFEST_FILE),
            None => return Ok(None),
        }
    };
    if !path.is_file() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    RunManifest::from_json(text.trim())
        .map(Some)
        .map_err(|e| format!("invalid manifest {}: {e}", path.display()))
}

fn load_analysis(input: &Path) -> Result<TraceAnalysis, String> {
    let trace = trace_path(input);
    TraceAnalysis::from_path(&trace).map_err(|e| format!("cannot read {}: {e}", trace.display()))
}

fn cmd_summarize(args: &[String]) -> Result<ExitCode, String> {
    let [run_dir] = args else {
        return Err(format!("usage: tg-obs summarize <run-dir>\n\n{USAGE}"));
    };
    let input = Path::new(run_dir);
    let analysis = load_analysis(input)?;
    println!("run: {}", input.display());
    if let Some(manifest) = load_manifest(input)? {
        println!(
            "created by {} · config hash {:016x} · {} thread(s) · {} cell(s)",
            manifest.created_by,
            manifest.config_hash(),
            manifest.threads,
            manifest.cells.len(),
        );
        if manifest.total_events() != analysis.events {
            println!(
                "warning: manifest claims {} events but the trace holds {}",
                manifest.total_events(),
                analysis.events
            );
        }
    }
    println!();
    print!("{}", analysis_report(&analysis));
    Ok(ExitCode::SUCCESS)
}

fn cmd_export(args: &[String]) -> Result<ExitCode, String> {
    let mut run_dir: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    iter.next()
                        .ok_or_else(|| "--out needs a file path".to_string())?,
                );
            }
            _ if run_dir.is_none() => run_dir = Some(arg),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let run_dir = run_dir.ok_or_else(|| format!("usage: tg-obs export <run-dir>\n\n{USAGE}"))?;
    let trace = trace_path(Path::new(run_dir));
    let mut reader =
        TraceReader::open(&trace).map_err(|e| format!("cannot open {}: {e}", trace.display()))?;

    let mut csv = String::from("t_s,metric,value\n");
    let mut points = Vec::new();
    while let Some(event) = reader
        .next_event()
        .map_err(|e| format!("read error in {}: {e}", trace.display()))?
    {
        points.clear();
        series_points(&event, &mut points);
        for (metric, value) in &points {
            csv.push_str(&format!("{:.9},{metric},{value}\n", event.t_s));
        }
    }
    if reader.malformed_lines() > 0 || reader.truncated() {
        eprintln!(
            "warning: {} malformed line(s), truncated: {}",
            reader.malformed_lines(),
            reader.truncated()
        );
    }
    match out {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => {
            // Large traces: one buffered write beats per-line println.
            std::io::stdout()
                .write_all(csv.as_bytes())
                .map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses `<run-dir> [--out <file>]` plus any listed boolean flags;
/// returns (input, out, flag states in the order given).
fn parse_io_args<'a>(
    args: &'a [String],
    usage: &str,
    flags: &[&str],
) -> Result<(&'a str, Option<&'a str>, Vec<bool>), String> {
    let mut run_dir: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut states = vec![false; flags.len()];
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--out" {
            out = Some(
                iter.next()
                    .ok_or_else(|| "--out needs a file path".to_string())?,
            );
        } else if let Some(pos) = flags.iter().position(|f| f == arg) {
            states[pos] = true;
        } else if run_dir.is_none() && !arg.starts_with('-') {
            run_dir = Some(arg);
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
    }
    let run_dir = run_dir.ok_or_else(|| format!("usage: {usage}\n\n{USAGE}"))?;
    Ok((run_dir, out, states))
}

/// Writes `text` to `out` (reporting the path on stderr) or to stdout.
fn write_output(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => {
            std::io::stdout()
                .write_all(text.as_bytes())
                .map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

fn cmd_timeline(args: &[String]) -> Result<ExitCode, String> {
    let (run_dir, out, _) = parse_io_args(args, "tg-obs timeline <run-dir> [--out <file>]", &[])?;
    let trace = trace_path(Path::new(run_dir));
    let json = timeline::chrome_trace_from_path(&trace)
        .map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
    let stats = timeline::validate(&json)
        .map_err(|e| format!("internal error: export failed validation: {e}"))?;
    write_output(&json, out)?;
    eprintln!(
        "{} events: {} span, {} complete, {} counter, {} instant on {} track(s)",
        stats.events, stats.spans, stats.complete, stats.counters, stats.instants, stats.tracks,
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_flame(args: &[String]) -> Result<ExitCode, String> {
    let (run_dir, out, _) = parse_io_args(args, "tg-obs flame <run-dir> [--out <file>]", &[])?;
    let trace = trace_path(Path::new(run_dir));
    let profile =
        Profile::from_path(&trace).map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
    if profile.pairing_errors() > 0 {
        eprintln!(
            "warning: {} span pairing error(s); stacks below them are approximate",
            profile.pairing_errors()
        );
    }
    write_output(&profile.collapsed(), out)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_top(args: &[String]) -> Result<ExitCode, String> {
    let (run_dir, out, flags) = parse_io_args(
        args,
        "tg-obs top <run-dir> [--times] [--tree]",
        &["--times", "--tree"],
    )?;
    let trace = trace_path(Path::new(run_dir));
    let profile =
        Profile::from_path(&trace).map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
    let report = if flags[1] {
        profile.render_tree()
    } else {
        profile.render_top(flags[0])
    };
    write_output(&report, out)?;
    Ok(ExitCode::SUCCESS)
}

/// What one side of a `diff` turned out to be.
enum DiffSide {
    Run(Box<TraceAnalysis>, Option<RunManifest>),
    Snapshot(Box<BenchSnapshot>),
}

fn load_side(input: &Path) -> Result<DiffSide, String> {
    if input.is_file() && input.extension().is_some_and(|e| e == "json") {
        let text = std::fs::read_to_string(input)
            .map_err(|e| format!("cannot read {}: {e}", input.display()))?;
        let snap = BenchSnapshot::from_json(&text)
            .map_err(|e| format!("{} is not a bench snapshot: {e}", input.display()))?;
        return Ok(DiffSide::Snapshot(Box::new(snap)));
    }
    Ok(DiffSide::Run(
        Box::new(load_analysis(input)?),
        load_manifest(input)?,
    ))
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut inputs: Vec<&str> = Vec::new();
    let mut config = DiffConfig::new();
    let mut all = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--solver-agnostic" => config = config.solver_agnostic(true),
            "--tol" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--tol needs <metric>=<rel>".to_string())?;
                let (metric, tol) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("bad --tol `{spec}`, expected <metric>=<rel>"))?;
                let tol: f64 = tol
                    .parse()
                    .map_err(|_| format!("bad --tol value in `{spec}`"))?;
                config = config.with_tolerance(metric, tol);
            }
            _ => inputs.push(arg),
        }
    }
    let [a, b] = inputs[..] else {
        return Err(format!("usage: tg-obs diff <a> <b>\n\n{USAGE}"));
    };

    let report = match (load_side(Path::new(a))?, load_side(Path::new(b))?) {
        (DiffSide::Run(analysis_a, manifest_a), DiffSide::Run(analysis_b, manifest_b)) => {
            let mut report = DiffReport::default();
            if let (Some(ma), Some(mb)) = (manifest_a, manifest_b) {
                report.extend(diff_manifests(&ma, &mb, &config));
            }
            report.extend(diff_analyses(&analysis_a, &analysis_b, &config));
            report
        }
        (DiffSide::Snapshot(snap_a), DiffSide::Snapshot(snap_b)) => {
            diff_snapshots(&snap_a, &snap_b, &config)
        }
        _ => {
            return Err(format!(
                "cannot diff a run directory against a snapshot ({a} vs {b})"
            ))
        }
    };

    let regressions: Vec<&str> = report.regressions().map(|d| d.metric.as_str()).collect();
    let table = report.render(!all);
    if !table.trim_end().ends_with('-') || all {
        // The table body is non-empty (or everything was requested).
        print!("{table}");
    }
    println!(
        "{} metric(s) compared, {} regression(s)",
        report.deltas.len(),
        regressions.len()
    );
    if regressions.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        for metric in &regressions {
            eprintln!("regression: {metric}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_bench_snapshot(args: &[String]) -> Result<ExitCode, String> {
    let mut label = "local".to_string();
    let mut out_dir = PathBuf::from(".");
    let mut policies = vec![PolicyKind::AllOn, PolicyKind::OracT, PolicyKind::PracVT];
    let mut grids: Vec<usize> = Vec::new();
    let mut scaling_solves = 3usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--grids" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--grids needs a comma-separated list".to_string())?;
                grids = spec
                    .split(',')
                    .map(|g| {
                        g.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| format!("bad grid edge `{g}`"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--scaling-solves" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--scaling-solves needs a count".to_string())?;
                scaling_solves = spec
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("bad --scaling-solves `{spec}`"))?;
            }
            "--label" => {
                label = iter
                    .next()
                    .ok_or_else(|| "--label needs a value".to_string())?
                    .clone();
            }
            "--out" => {
                out_dir = PathBuf::from(
                    iter.next()
                        .ok_or_else(|| "--out needs a directory".to_string())?,
                );
            }
            "--policies" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--policies needs a comma-separated list".to_string())?;
                if spec == "all" {
                    policies = PolicyKind::ALL.to_vec();
                } else {
                    policies = spec
                        .split(',')
                        .map(|tag| {
                            policy_from_tag(tag.trim())
                                .ok_or_else(|| format!("unknown policy tag `{tag}`"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if policies.is_empty() {
        return Err("--policies list is empty".to_string());
    }

    eprintln!(
        "measuring {} polic{} with the pinned fast config…",
        policies.len(),
        if policies.len() == 1 { "y" } else { "ies" }
    );
    let mut snap = snapshot::capture(&label, &policies)?;
    if !grids.is_empty() {
        eprintln!(
            "measuring the grid-scaling axis at {} grid edge(s)…",
            grids.len()
        );
        snap.scaling = snapshot::capture_scaling(&grids, scaling_solves)?;
    }
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let path = snap
        .write(&out_dir)
        .map_err(|e| format!("cannot write snapshot: {e}"))?;

    let mut t = experiments::report::TextTable::new(&["policy", "steps", "steps/s", "wall s"]);
    for entry in &snap.entries {
        t.add_row(vec![
            entry.policy.clone(),
            entry.steps.to_string(),
            format!("{:.0}", entry.steps_per_sec),
            format!("{:.3}", entry.wall_s),
        ]);
    }
    print!("{}", t.render());
    if !snap.scaling.is_empty() {
        let mut t = experiments::report::TextTable::new(&[
            "grid", "nodes", "backend", "iters", "setup s", "wall s",
        ]);
        for s in &snap.scaling {
            t.add_row(vec![
                format!("{0}x{0}", s.grid),
                s.nodes.to_string(),
                s.backend.clone(),
                format!("{:.1}", s.iters_mean),
                format!("{:.3}", s.setup_s),
                format!("{:.3}", s.wall_s),
            ]);
        }
        print!("{}", t.render());
    }
    if let Some(rss) = snap.peak_rss_bytes {
        println!("peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
    }
    if let Some(t) = &snap.telemetry {
        println!(
            "frame recorder: {} frames in {} µs ({:.3}% of the run)",
            t.frames,
            t.overhead_us,
            t.overhead_share() * 100.0
        );
    }
    println!("wrote {}", path.display());
    Ok(ExitCode::SUCCESS)
}
