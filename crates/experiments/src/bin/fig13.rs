//! Fig. 13 — spatial regulator activity under OracT vs. OracV: % of
//! execution time each per-core-domain regulator stays on, binned into
//! logic-neighborhood vs. memory-neighborhood groups.

use experiments::context::ExpOptions;
use experiments::figures::thermal_figs::fig13;
use experiments::report::{banner, TextTable};
use floorplan::VrNeighborhood;
use thermogater::PolicyKind;

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Fig. 13",
        "regulator activity by location: OracT vs. OracV (lu_ncb)",
    );
    let oract = fig13(&opts, PolicyKind::OracT);
    let oracv = fig13(&opts, PolicyKind::OracV);
    let pracvt = fig13(&opts, PolicyKind::PracVT);

    let mut table = TextTable::new(&[
        "regulator",
        "group",
        "OracT on-%",
        "OracV on-%",
        "PracVT on-%",
    ]);
    for ((a, b), c) in oract.bars.iter().zip(&oracv.bars).zip(&pracvt.bars) {
        assert_eq!(a.vr, b.vr, "bar ordering must match");
        assert_eq!(a.vr, c.vr, "bar ordering must match");
        table.add_row(vec![
            a.vr.to_string(),
            match a.neighborhood {
                VrNeighborhood::Logic => "logic".to_string(),
                VrNeighborhood::Memory => "memory".to_string(),
            },
            format!("{:.0}", a.activity * 100.0),
            format!("{:.0}", b.activity * 100.0),
            format!("{:.0}", c.activity * 100.0),
        ]);
    }
    table.print();

    println!(
        "\nGroup means (% of decisions on):\n\
           OracT:  logic {:.0} %, memory {:.0} %\n\
           OracV:  logic {:.0} %, memory {:.0} %\n\
           PracVT: logic {:.0} %, memory {:.0} %",
        oract.logic_mean * 100.0,
        oract.memory_mean * 100.0,
        oracv.logic_mean * 100.0,
        oracv.memory_mean * 100.0,
        pracvt.logic_mean * 100.0,
        pracvt.memory_mean * 100.0,
    );
    println!(
        "\nShape check vs. the paper's Fig. 13: OracT turns regulators \
         off near logic units (memory group busier), OracV does the \
         opposite to protect the noise-critical logic supply. PracVT's \
         profile resembles OracT's, as Section 7 anticipates: its \
         periodic decisions are thermal, and voltage-driven all-on is \
         rare and event-driven."
    );
}
