//! Fig. 1 — reported power conversion efficiency of eight recent, highly
//! optimized integrated regulators (ISSCC 2015 survey).

use experiments::figures::regulator::fig01_curves;
use experiments::report::{banner, TextTable};

fn main() {
    banner("Fig. 1", "η vs. I_out of the ISSCC 2015 regulator survey");
    for curve in fig01_curves() {
        println!("\n{}", curve.label);
        let mut table = TextTable::new(&["I_out (A)", "η (%)"]);
        for (i, eta) in &curve.points {
            table.add_row(vec![format!("{i:.6}"), format!("{:.1}", eta * 100.0)]);
        }
        table.print();
    }
    println!(
        "\nShape check: every design peaks at 40–95 % somewhere inside its \
         rated current range and degrades off-peak, as in the paper's Fig. 1."
    );
}
