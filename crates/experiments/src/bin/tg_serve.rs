//! `tg-serve` — the sweep-as-a-service front end.
//!
//! Answers (benchmark, policy, engine-config) scenarios from the
//! content-addressed [`ScenarioCache`], simulating only hashes the
//! cache has never seen. Two modes:
//!
//! * `--batch=<file>` — stream a request file through the sharded
//!   batch executor: bounded work queue with backpressure, coalescing
//!   of identical in-flight scenarios, answers on stdout in request
//!   order. Memory stays bounded in the batch length, so the file may
//!   hold millions of lines.
//! * no `--batch` — a line-oriented stdin request loop (one answer per
//!   request, flushed immediately; `quit`/`exit` or EOF ends it).
//!
//! Request grammar (one request per line, `#` comments and blank lines
//! skipped):
//!
//! ```text
//! <benchmark> <policy> [seed=N] [duration-ms=X] [windows=N] [grid=N]
//! ```
//!
//! Overrides mutate the base engine configuration (`--tiny`/`--quick`
//! or the full default), and therefore the scenario hash: the same
//! cell under a different seed or grid is a different cache entry.
//!
//! Every answer is one stdout line — `<hash:016x> <record-csv>` — so a
//! cold and a warm run of the same batch compare byte-identically. The
//! tallies land on stderr (`serve: scenarios=… hits=… misses=…`) and,
//! under `--telemetry=<dir>`, as `serve.*` counters in the trace: a
//! warm batch proves "zero engine executions" via `serve.misses` = 0.

use experiments::context::ExpOptions;
use experiments::service::{
    self, BatchOptions, BatchOutcome, ScenarioCache, ScenarioSpec, ServeCounters,
};
use experiments::sweep;
use experiments::telemetry::TelemetryCtx;
use simkit::telemetry::manifest::RunManifest;
use simkit::units::Seconds;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use thermogater::EngineConfig;

const USAGE: &str = "\
tg-serve — content-addressed scenario evaluation service

USAGE:
  tg-serve --batch=<file> [options]   stream a request file (stdout answers in request order)
  tg-serve [options]                  stdin request loop (quit/exit or EOF ends it)

OPTIONS:
  --tiny | --quick      reduced base engine configurations (default: full)
  --threads=N           worker threads (else SIMKIT_THREADS, else all cores)
  --queue=N             work-queue bound for backpressure (default 4×threads)
  --cache=<dir>         cache directory (default target/experiments/<tag>)
  --telemetry=<dir>     write trace.jsonl + manifest.json with serve.* counters
  --quiet | -q          suppress per-cell progress chatter on stderr

REQUESTS (one per line; '#' comments and blank lines are skipped):
  <benchmark> <policy> [seed=N] [duration-ms=X] [windows=N] [grid=N]

Each answer is one line: <hash:016x> <record-csv>.
";

/// Parses one request line against the base configuration.
fn parse_request(line: &str, base: &EngineConfig) -> Result<ScenarioSpec, String> {
    let mut words = line.split_whitespace();
    let bench_word = words.next().ok_or("missing benchmark")?;
    let benchmark = sweep::benchmark_from_label(bench_word)
        .ok_or_else(|| format!("unknown benchmark {bench_word:?}"))?;
    let policy_word = words.next().ok_or("missing policy")?;
    let policy = sweep::policy_from_tag(policy_word)
        .ok_or_else(|| format!("unknown policy {policy_word:?}"))?;
    let mut config = base.clone();
    for word in words {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| format!("override {word:?} is not key=value"))?;
        match key {
            "seed" => {
                config.seed =
                    parse_u64(value).ok_or_else(|| format!("seed {value:?} is not an integer"))?;
            }
            "duration-ms" => {
                let ms: f64 = value
                    .parse()
                    .map_err(|_| format!("duration-ms {value:?} is not a number"))?;
                config.duration = Seconds::from_millis(ms);
            }
            "windows" => {
                config.noise_window_count = value
                    .parse()
                    .map_err(|_| format!("windows {value:?} is not an integer"))?;
            }
            "grid" => {
                let edge: usize = value
                    .parse()
                    .map_err(|_| format!("grid {value:?} is not an integer"))?;
                config.thermal.nx = edge;
                config.thermal.ny = edge;
            }
            other => return Err(format!("unknown override key {other:?}")),
        }
    }
    Ok(ScenarioSpec::new(benchmark, policy, config))
}

fn parse_u64(value: &str) -> Option<u64> {
    if let Some(hex) = value.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        value.parse().ok()
    }
}

fn answer_line(outcome: &BatchOutcome) -> String {
    format!("{:016x} {}", outcome.hash, outcome.record.to_csv())
}

fn cell_label(outcome: &BatchOutcome) -> String {
    format!(
        "{}-{}",
        outcome.record.benchmark.label(),
        sweep::policy_tag(outcome.record.policy)
    )
}

fn finish_manifest(
    ctx: &TelemetryCtx,
    counters: &ServeCounters,
    cells: Vec<simkit::telemetry::manifest::CellManifest>,
    opts: &ExpOptions,
    mode: &str,
    threads: usize,
) {
    counters.emit(ctx);
    let mut manifest = RunManifest::new("tg-serve");
    manifest.push_config("tag", opts.tag());
    manifest.push_config("mode", mode);
    manifest.threads = threads;
    manifest.cells = cells;
    if let Err(e) = ctx.finish(&mut manifest) {
        eprintln!(
            "warning: cannot write serve manifest into {}: {e}",
            ctx.dir().display()
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let opts = ExpOptions::from_args();
    let batch_file = std::env::args().find_map(|a| a.strip_prefix("--batch=").map(PathBuf::from));
    let queue =
        std::env::args().find_map(|a| a.strip_prefix("--queue=").and_then(|n| n.parse().ok()));
    let cache_dir = std::env::args()
        .find_map(|a| a.strip_prefix("--cache=").map(PathBuf::from))
        .unwrap_or_else(|| sweep::cache_dir(&opts));
    let cache = ScenarioCache::new(cache_dir);
    let ctx = TelemetryCtx::from_options(&opts);
    let counters = ServeCounters::default();
    let base = opts.engine_config();

    let malformed = match &batch_file {
        Some(path) => run_batch_mode(path, &opts, &cache, &ctx, &counters, &base, queue),
        None => run_stdin_loop(&opts, &cache, &ctx, &counters, &base),
    };

    eprintln!("serve: {}", counters.summary());
    if malformed > 0 {
        eprintln!("serve: {malformed} malformed request line(s) skipped");
        std::process::exit(2);
    }
}

fn run_batch_mode(
    path: &PathBuf,
    opts: &ExpOptions,
    cache: &ScenarioCache,
    ctx: &Option<TelemetryCtx>,
    counters: &ServeCounters,
    base: &EngineConfig,
    queue: Option<usize>,
) -> u64 {
    let file = std::fs::File::open(path)
        .unwrap_or_else(|e| panic!("cannot open batch file {}: {e}", path.display()));
    let reader = io::BufReader::new(file);
    let malformed = AtomicU64::new(0);
    // Lazy request parsing: the executor's bounded queue pulls lines
    // from the file only as workers free up, so a huge batch file never
    // materializes in memory.
    let specs = reader.lines().filter_map(|line| {
        let line = line.expect("read batch file line");
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        match parse_request(line, base) {
            Ok(spec) => Some(spec),
            Err(e) => {
                eprintln!("[serve] skipping malformed request {line:?}: {e}");
                malformed.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    });
    let threads = opts.resolved_threads();
    let batch = BatchOptions {
        queue_cap: queue.unwrap_or(4 * threads.max(1)),
        quiet: opts.quiet,
        ..BatchOptions::for_threads(threads)
    };
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    let mut cells = Vec::new();
    let answered = service::run_batch(cache, specs, &batch, ctx.as_ref(), counters, |outcome| {
        writeln!(out, "{}", answer_line(&outcome)).expect("write answer");
        if ctx.is_some() {
            let label = cell_label(&outcome);
            cells.push(service::cell_manifest(&outcome, label));
        }
    });
    out.flush().expect("flush answers");
    if !opts.quiet {
        eprintln!(
            "serve: answered {answered} scenario(s) from {}",
            path.display()
        );
    }
    if let Some(ctx) = ctx {
        finish_manifest(ctx, counters, cells, opts, "batch", batch.threads);
    }
    malformed.load(Ordering::Relaxed)
}

fn run_stdin_loop(
    opts: &ExpOptions,
    cache: &ScenarioCache,
    ctx: &Option<TelemetryCtx>,
    counters: &ServeCounters,
    base: &EngineConfig,
) -> u64 {
    let stdin = io::stdin();
    let mut malformed = 0u64;
    let mut cells = Vec::new();
    for line in stdin.lock().lines() {
        let line = line.expect("read stdin request");
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        if line == "stats" {
            println!("# {}", counters.summary());
            io::stdout().flush().expect("flush stats");
            continue;
        }
        match parse_request(line, base) {
            Ok(spec) => {
                let outcome = service::answer_one(cache, &spec, ctx.as_ref(), counters, opts.quiet);
                println!("{}", answer_line(&outcome));
                io::stdout().flush().expect("flush answer");
                if ctx.is_some() {
                    let label = cell_label(&outcome);
                    cells.push(service::cell_manifest(&outcome, label));
                }
            }
            Err(e) => {
                eprintln!("[serve] malformed request {line:?}: {e}");
                malformed += 1;
            }
        }
    }
    if let Some(ctx) = ctx {
        finish_manifest(ctx, counters, cells, opts, "stdin", 1);
    }
    malformed
}
