//! Section 7 study — regulator aging under the gating policies: wear
//! imbalance across the 96 regulators with an Arrhenius
//! (electromigration-class) model.

use experiments::context::ExpOptions;
use experiments::figures::ablations::ablation_aging;
use experiments::report::{banner, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Study (Section 7)",
        "regulator aging under gating policies (lu_ncb, Arrhenius Ea = 0.7 eV)",
    );
    let rows = ablation_aging(&opts);
    let mut table = TextTable::new(&["policy", "imbalance (max/mean)", "max wear", "rel. MTTF"]);
    for row in &rows {
        table.add_row(vec![
            row.policy.label().to_string(),
            format!("{:.2}", row.imbalance),
            format!("{:.2}", row.max_wear),
            format!("{:.2}", row.relative_mttf),
        ]);
    }
    table.print();
    println!(
        "\nReading guide (paper Section 7): thermally-aware gating keeps \
         its busiest regulators in cooler regions, which tempers the \
         exponential temperature dependence of wear; OracV concentrates \
         both utilisation and heat near logic and ages its fleet fastest."
    );
}
