//! Table 2 — % execution time spent in voltage emergencies under OracT.

use experiments::context::ExpOptions;
use experiments::figures::noise_figs::{table2, PAPER_AVERAGE_EMERGENCY_PCT};
use experiments::report::{banner, fmt_opt, is_quiet, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Table 2",
        "% execution time in voltage emergencies under OracT",
    );
    let rows = table2(&opts);
    let mut table = TextTable::new(&["benchmark", "% exec. time", "paper (%)"]);
    for row in &rows {
        table.add_row(vec![
            row.benchmark.label().to_string(),
            format!("{:.3}", row.pct),
            fmt_opt(row.paper_pct, 3),
        ]);
    }
    let avg = rows.iter().map(|r| r.pct).sum::<f64>() / rows.len() as f64;
    table.add_row(vec![
        "AVG".to_string(),
        format!("{avg:.3}"),
        format!("{PAPER_AVERAGE_EMERGENCY_PCT:.3}"),
    ]);
    table.print();
    if is_quiet() {
        return;
    }
    println!(
        "\nShape check: every application stays well under 1 % of cycles \
         in emergency, and temperature time constants dwarf emergency \
         durations — which is what lets OracVT switch to per-domain \
         all-on only upon (rare) emergencies without disturbing the \
         thermal profile (paper Section 6.2.4)."
    );
}
