//! Fig. 2 — η of a 16-phase Intel-like buck regulator: one curve per
//! active-phase count plus the gated effective curve.

use experiments::figures::regulator::fig02_family;
use experiments::report::{banner, TextTable};

fn main() {
    banner("Fig. 2", "η of a 16-phase regulator under phase gating");
    let family = fig02_family();
    let mut headers: Vec<String> = vec!["I_out (A)".to_string()];
    headers.extend(family.per_count.iter().map(|c| c.label.clone()));
    headers.push(family.effective.label.clone());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    // Sample every 6th point to keep the table readable.
    for k in (0..family.effective.points.len()).step_by(6) {
        let mut row = vec![format!("{:.2}", family.effective.points[k].0)];
        for curve in &family.per_count {
            row.push(format!("{:.1}", curve.points[k].1 * 100.0));
        }
        row.push(format!("{:.1}", family.effective.points[k].1 * 100.0));
        table.add_row(row);
    }
    table.print();
    let floor = family
        .effective
        .points
        .iter()
        .filter(|&&(i, _)| i > 1.0)
        .map(|&(_, eta)| eta)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nEffective-curve floor past 1 A: {:.1} % — phase gating holds \
         near-peak efficiency over the whole 0–15 A window (paper: the \
         dotted trend line of Fig. 2).",
        floor * 100.0
    );
}
