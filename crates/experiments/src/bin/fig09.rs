//! Fig. 9 — maximum chip-wide temperature under every gating policy,
//! per benchmark.

use experiments::context::ExpOptions;
use experiments::report::{banner, is_quiet, TextTable};
use experiments::sweep;
use thermogater::PolicyKind;
use workload::Benchmark;

fn main() {
    let opts = ExpOptions::from_args();
    banner("Fig. 9", "maximum chip temperature T_max (°C) per policy");
    let policies = PolicyKind::ALL;
    let records = sweep::grid(&opts, &Benchmark::ALL, &policies);

    let mut headers = vec!["benchmark".to_string()];
    headers.extend(policies.iter().map(|p| p.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    let mut sums = vec![0.0; policies.len()];
    for &benchmark in &Benchmark::ALL {
        let mut row = vec![benchmark.label().to_string()];
        for (i, &policy) in policies.iter().enumerate() {
            let t = sweep::cell(&records, benchmark, policy).tmax_c;
            sums[i] += t;
            row.push(format!("{t:.1}"));
        }
        table.add_row(row);
    }
    let mut avg_row = vec!["AVG".to_string()];
    for s in &sums {
        avg_row.push(format!("{:.1}", s / Benchmark::ALL.len() as f64));
    }
    table.add_row(avg_row);
    table.print();

    if is_quiet() {
        return;
    }
    let avg = |p: PolicyKind| {
        Benchmark::ALL
            .iter()
            .map(|&b| sweep::cell(&records, b, p).tmax_c)
            .sum::<f64>()
            / Benchmark::ALL.len() as f64
    };
    println!(
        "\nShape checks vs. the paper's Fig. 9 (average deltas):\n\
           all-on − off-chip = {:+.2} °C   (paper +5.4 °C)\n\
           Naïve  − all-on   = {:+.2} °C   (paper +1.1 °C)\n\
           OracT  − all-on   = {:+.2} °C   (paper −1.2 °C)\n\
           OracV  − all-on   = {:+.2} °C   (paper +8.5 °C)\n\
           PracT  − OracT    = {:+.2} °C   (paper +0.5 °C)",
        avg(PolicyKind::AllOn) - avg(PolicyKind::OffChip),
        avg(PolicyKind::Naive) - avg(PolicyKind::AllOn),
        avg(PolicyKind::OracT) - avg(PolicyKind::AllOn),
        avg(PolicyKind::OracV) - avg(PolicyKind::AllOn),
        avg(PolicyKind::PracT) - avg(PolicyKind::OracT),
    );
}
