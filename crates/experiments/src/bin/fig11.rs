//! Fig. 11 — maximum voltage noise under the gating policies, per
//! benchmark (% of nominal Vdd; the 10 % emergency threshold is the
//! figure's horizontal line).

use experiments::context::ExpOptions;
use experiments::report::{banner, is_quiet, TextTable};
use experiments::sweep;
use thermogater::PolicyKind;
use workload::Benchmark;

/// Fig. 11's policy set (no Naïve, no off-chip).
const POLICIES: [PolicyKind; 6] = [
    PolicyKind::OracT,
    PolicyKind::OracV,
    PolicyKind::OracVT,
    PolicyKind::PracT,
    PolicyKind::PracVT,
    PolicyKind::AllOn,
];

fn main() {
    let opts = ExpOptions::from_args();
    banner("Fig. 11", "maximum voltage noise (% of Vdd) per policy");
    let records = sweep::grid(&opts, &Benchmark::ALL, &POLICIES);

    let mut headers = vec!["benchmark".to_string()];
    headers.extend(POLICIES.iter().map(|p| p.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for &benchmark in &Benchmark::ALL {
        let mut row = vec![benchmark.label().to_string()];
        for &policy in &POLICIES {
            let v = sweep::cell(&records, benchmark, policy)
                .max_noise_pct
                .unwrap_or(f64::NAN);
            row.push(format!("{v:.1}"));
        }
        table.add_row(row);
    }
    let mut max_row = vec!["MAX".to_string()];
    for &policy in &POLICIES {
        let m = Benchmark::ALL
            .iter()
            .filter_map(|&b| sweep::cell(&records, b, policy).max_noise_pct)
            .fold(0.0f64, f64::max);
        max_row.push(format!("{m:.1}"));
    }
    table.add_row(max_row);
    table.print();

    if is_quiet() {
        return;
    }
    let avg = |p: PolicyKind| {
        Benchmark::ALL
            .iter()
            .filter_map(|&b| sweep::cell(&records, b, p).max_noise_pct)
            .sum::<f64>()
            / Benchmark::ALL.len() as f64
    };
    println!(
        "\nShape checks vs. the paper's Fig. 11:\n\
           OracT averages {:.1} % of Vdd ({:+.0} % over all-on; paper: 23.4 %, +79.3 %)\n\
           OracV sits {:.0} % below OracT on average (paper: −28.2 % for the fft worst case)\n\
           OracVT / PracVT converge to the all-on profile: {:.1} / {:.1} vs {:.1} %\n\
           (paper: 13.22 % under PracVT vs 13.05 % under all-on)",
        avg(PolicyKind::OracT),
        (avg(PolicyKind::OracT) / avg(PolicyKind::AllOn) - 1.0) * 100.0,
        (1.0 - avg(PolicyKind::OracV) / avg(PolicyKind::OracT)) * 100.0,
        avg(PolicyKind::OracVT),
        avg(PolicyKind::PracVT),
        avg(PolicyKind::AllOn),
    );
}
