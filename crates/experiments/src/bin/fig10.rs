//! Fig. 10 — maximum thermal gradient under every gating policy, per
//! benchmark.

use experiments::context::ExpOptions;
use experiments::report::{banner, is_quiet, TextTable};
use experiments::sweep;
use thermogater::PolicyKind;
use workload::Benchmark;

fn main() {
    let opts = ExpOptions::from_args();
    banner("Fig. 10", "maximum thermal gradient (°C) per policy");
    let policies = PolicyKind::ALL;
    let records = sweep::grid(&opts, &Benchmark::ALL, &policies);

    let mut headers = vec!["benchmark".to_string()];
    headers.extend(policies.iter().map(|p| p.label().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    for &benchmark in &Benchmark::ALL {
        let mut row = vec![benchmark.label().to_string()];
        for &policy in &policies {
            row.push(format!(
                "{:.1}",
                sweep::cell(&records, benchmark, policy).gradient_c
            ));
        }
        table.add_row(row);
    }
    table.print();

    if is_quiet() {
        return;
    }
    let avg = |p: PolicyKind| {
        Benchmark::ALL
            .iter()
            .map(|&b| sweep::cell(&records, b, p).gradient_c)
            .sum::<f64>()
            / Benchmark::ALL.len() as f64
    };
    let rel = |num: f64, den: f64| (num / den - 1.0) * 100.0;
    println!(
        "\nShape checks vs. the paper's Fig. 10 (average relative deltas):\n\
           all-on vs off-chip: {:+.1} %   (paper +79.4 %)\n\
           Naïve  vs all-on:   {:+.1} %   (paper +12.5 %)\n\
           OracT  vs all-on:   {:+.1} %   (paper −10.9 %)\n\
           OracV  vs all-on:   {:+.1} %   (paper +96.3 %)\n\
           PracT  vs OracT:    {:+.1} %   (paper +3 %)",
        rel(avg(PolicyKind::AllOn), avg(PolicyKind::OffChip)),
        rel(avg(PolicyKind::Naive), avg(PolicyKind::AllOn)),
        rel(avg(PolicyKind::OracT), avg(PolicyKind::AllOn)),
        rel(avg(PolicyKind::OracV), avg(PolicyKind::AllOn)),
        rel(avg(PolicyKind::PracT), avg(PolicyKind::OracT)),
    );
}
