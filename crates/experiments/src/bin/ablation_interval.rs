//! Footnote 5 ablation — shrinking the 1 ms gating decision interval by
//! 10× and 100× changes the results by less than 1 %.

use experiments::context::ExpOptions;
use experiments::figures::ablations::ablation_interval;
use experiments::report::{banner, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Ablation (footnote 5)",
        "sensitivity to the gating decision interval (lu_ncb, OracT)",
    );
    let rows = ablation_interval(&opts);
    let mut table = TextTable::new(&["interval (µs)", "T_max (°C)", "gradient (°C)", "loss (W)"]);
    for row in &rows {
        table.add_row(vec![
            format!("{:.0}", row.interval_us),
            format!("{:.2}", row.tmax_c),
            format!("{:.2}", row.gradient_c),
            format!("{:.2}", row.mean_loss_w),
        ]);
    }
    table.print();
    let base = &rows[0];
    let loss_dev = rows[1..]
        .iter()
        .map(|r| (r.mean_loss_w / base.mean_loss_w - 1.0).abs())
        .fold(0.0f64, f64::max);
    let tmax_dev = rows[1..]
        .iter()
        .map(|r| (r.tmax_c / base.tmax_c - 1.0).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nLargest relative deviation from the 1 ms baseline: \
         conversion loss {:.2} %, T_max {:.2} %.\n\
         Paper footnote 5 reports < 1 % for its pipeline. This \
         reproduction matches on the efficiency side but shows a larger \
         thermal sensitivity: finer decision periods track the demand \
         phases so tightly that regulator conversion loss lands on the \
         hottest logic cells exactly during workload peaks, while 1 ms \
         interval-mean sizing smooths that correlation — an effect our \
         cell-granularity thermal substrate amplifies (see \
         EXPERIMENTS.md, known gaps).",
        loss_dev * 100.0,
        tmax_dev * 100.0
    );
}
