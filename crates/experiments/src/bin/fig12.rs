//! Fig. 12 — representative heat maps (cholesky, at the instant of
//! T_max) under off-chip / all-on / OracT / OracV.

use experiments::context::ExpOptions;
use experiments::figures::thermal_figs::fig12;
use experiments::report::{banner, render_heatmap};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Fig. 12", "heat maps at T_max (cholesky)");
    let frames = fig12(&opts);
    for frame in &frames {
        println!("\n--- {} (T_max {:.1} °C) ---", frame.policy, frame.tmax_c);
        print!("{}", render_heatmap(&frame.heatmap));
    }
    let t = |label: &str| {
        frames
            .iter()
            .find(|f| f.policy.label() == label)
            .map(|f| f.tmax_c)
            .unwrap_or(f64::NAN)
    };
    println!(
        "\nShape checks vs. the paper's Fig. 12:\n\
           off-chip coolest ({:.1} °C; paper ≤66 °C), all-on triggers \
         hotspots on LSUs/EXUs ({:.1} °C; paper 73 °C),\n\
           OracT trims them ({:.1} °C; paper ≈71.2 °C), OracV concentrates \
         heat near logic and is the hottest ({:.1} °C; paper >90 °C).",
        t("off-chip"),
        t("all-on"),
        t("OracT"),
        t("OracV"),
    );
}
