//! Section 6.3 ablation — accuracy (R²) of the ΔT = θ·ΔP per-regulator
//! temperature predictor.

use experiments::context::ExpOptions;
use experiments::figures::ablations::ablation_r2;
use experiments::report::{banner, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Ablation (Section 6.3)",
        "R² of the linear ΔT = θ·ΔP regulator-temperature predictor",
    );
    let rows = ablation_r2(&opts);
    let mut table = TextTable::new(&["benchmark", "R²"]);
    for row in &rows {
        table.add_row(vec![
            row.benchmark.label().to_string(),
            format!("{:.4}", row.r_squared),
        ]);
    }
    let avg = rows.iter().map(|r| r.r_squared).sum::<f64>() / rows.len() as f64;
    table.add_row(vec!["AVG".to_string(), format!("{avg:.4}")]);
    table.print();
    println!(
        "\nShape check: the paper calibrates θ to keep R² around 0.99; \
         confined to regulator-sized heat sources, the linear model is \
         highly accurate."
    );
}
