//! Fig. 15 — maximum voltage noise under all-on: POWER8-like LDO vs.
//! Intel-FIVR-like design.

use experiments::context::ExpOptions;
use experiments::figures::noise_figs::fig15;
use experiments::report::{banner, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Fig. 15", "maximum voltage noise: LDO vs. FIVR (all-on)");
    let rows = fig15(&opts);
    let mut table = TextTable::new(&["benchmark", "LDO (%Vdd)", "FIVR (%Vdd)", "Δ"]);
    for row in &rows {
        table.add_row(vec![
            row.benchmark.label().to_string(),
            format!("{:.2}", row.ldo_pct),
            format!("{:.2}", row.fivr_pct),
            format!("{:+.2}", row.ldo_pct - row.fivr_pct),
        ]);
    }
    let max_ldo = rows.iter().map(|r| r.ldo_pct).fold(0.0f64, f64::max);
    let max_fivr = rows.iter().map(|r| r.fivr_pct).fold(0.0f64, f64::max);
    table.add_row(vec![
        "MAX".to_string(),
        format!("{max_ldo:.2}"),
        format!("{max_fivr:.2}"),
        format!("{:+.2}", max_ldo - max_fivr),
    ]);
    table.print();
    let avg_delta: f64 =
        rows.iter().map(|r| r.fivr_pct - r.ldo_pct).sum::<f64>() / rows.len() as f64;
    println!(
        "\nThe faster LDO lowers the maximum noise by {avg_delta:.2} % of \
         Vdd on average (paper: ≈0.7 % average, ≈1.1 % for the overall \
         maximum) — a small improvement that does not change any of the \
         Section 6 observations."
    );
}
