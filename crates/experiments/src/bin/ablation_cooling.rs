//! Section 5 study — the thermal observations hold under better cooling.

use experiments::context::ExpOptions;
use experiments::figures::ablations::ablation_cooling;
use experiments::report::{banner, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Study (Section 5)",
        "policy ordering under the default vs. an improved cooling package",
    );
    let rows = ablation_cooling(&opts);
    let mut table = TextTable::new(&["policy", "T_max air (°C)", "T_max improved (°C)", "Δ"]);
    for row in &rows {
        table.add_row(vec![
            row.policy.label().to_string(),
            format!("{:.2}", row.tmax_air),
            format!("{:.2}", row.tmax_improved),
            format!("{:+.2}", row.tmax_improved - row.tmax_air),
        ]);
    }
    table.print();
    let ordering_preserved = {
        let t = |label: &str, improved: bool| {
            rows.iter()
                .find(|r| r.policy.label() == label)
                .map(|r| {
                    if improved {
                        r.tmax_improved
                    } else {
                        r.tmax_air
                    }
                })
                .unwrap_or(f64::NAN)
        };
        t("off-chip", true) < t("OracT", true)
            && t("OracT", true) <= t("all-on", true)
            && t("all-on", true) < t("OracV", true)
    };
    println!(
        "\nOrdering (off-chip < OracT ≤ all-on < OracV) preserved under \
         improved cooling: {ordering_preserved} — cooling shifts every \
         policy down nearly uniformly, as the paper argues: cooling \
         solutions affect the chip uniformly, regulators keep their tiny \
         footprint, and conversion loss remains inevitable."
    );
}
