//! Fig. 7 — % regulator conversion-loss saving of peak-efficiency gating
//! vs. the all-on baseline, per benchmark.

use experiments::context::ExpOptions;
use experiments::figures::powerloss::{fig07, PAPER_AVERAGE_SAVING_PCT};
use experiments::report::{banner, fmt_opt, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Fig. 7",
        "P_loss saving under optimal (peak-efficiency) gating vs. all-on",
    );
    let rows = fig07(&opts);
    let mut table = TextTable::new(&["benchmark", "saving (%)", "paper (%)"]);
    for row in &rows {
        table.add_row(vec![
            row.benchmark.label().to_string(),
            format!("{:.1}", row.saving_pct),
            fmt_opt(row.paper_pct, 1),
        ]);
    }
    let avg = rows.iter().map(|r| r.saving_pct).sum::<f64>() / rows.len() as f64;
    table.add_row(vec![
        "AVG".to_string(),
        format!("{avg:.1}"),
        format!("{PAPER_AVERAGE_SAVING_PCT:.1}"),
    ]);
    table.print();
    println!(
        "\nShape check: savings depend inversely on sustained power — \
         cholesky (high power) saves least, raytrace (light load) saves \
         most, matching the paper's 10.4 %–49.8 % spread."
    );
}
