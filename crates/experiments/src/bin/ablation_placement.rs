//! Section 5 ablation — the voltage-noise-optimized regulator placement
//! vs. the uniform one.

use experiments::context::ExpOptions;
use experiments::figures::ablations::ablation_placement;
use experiments::report::banner;

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Ablation (Section 5)",
        "Walking-Pads-style regulator placement vs. uniform",
    );
    let outcome = ablation_placement(&opts);
    println!(
        "uniform placement max IR drop:   {:.3} % of Vdd\n\
         optimized placement max IR drop: {:.3} % of Vdd\n\
         accepted moves: {}\n\
         relative improvement: {:.2} %",
        outcome.initial_max_fraction * 100.0,
        outcome.final_max_fraction * 100.0,
        outcome.accepted_moves,
        outcome.improvement() * 100.0,
    );
    println!(
        "\nShape check: the paper finds the uniform placement within \
         0.4 % of the noise-optimal one and therefore evaluates on the \
         uniform layout; this reproduction keeps the same choice."
    );
}
