//! Section 7 study — thermally-aware regulator placement: shifting core
//! regulators towards the memory blocks exploits lateral heat transfer
//! but boosts voltage noise.

use experiments::context::ExpOptions;
use experiments::figures::ablations::ablation_thermal_placement;
use experiments::report::{banner, fmt_opt, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Study (Section 7)",
        "thermally-aware regulator placement vs. the uniform layout",
    );
    let rows = ablation_thermal_placement(&opts);
    let mut table = TextTable::new(&["placement", "policy", "T_max (°C)", "noise (%)"]);
    for row in &rows {
        table.add_row(vec![
            row.placement.to_string(),
            row.policy.label().to_string(),
            format!("{:.2}", row.tmax_c),
            fmt_opt(row.max_noise_pct, 1),
        ]);
    }
    table.print();
    println!(
        "\nReading guide (paper Section 7): moving regulators towards the \
         cooler memory regions trims the thermal profile a little, but \
         'placing regulators further away from logic units is very \
         likely to boost voltage noise due to the increased distance \
         between the respective regulators and their load' — the noise \
         column pays for the temperature column."
    );
}
