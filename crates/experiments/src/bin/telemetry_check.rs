//! Validates a telemetry output directory written by `--telemetry=<dir>`.
//!
//! Checks that `manifest.json` parses (schema, hash, and event totals
//! are self-validated by the loader), that every `trace.jsonl` line is
//! well-formed JSON with a known `kind`, a numeric `t`, and a string
//! `name`, that the trace's line count equals the manifest's
//! `events_total`, that every `span_end` closes a previously opened
//! span of the same name *on the same track* — cell handles stamp a
//! `track` field, so a worker's end can never consume another
//! worker's start — (and none stay open at end of trace), and
//! that timestamps never step backwards by more than `--mono-slack`
//! seconds (run-level and cell-level handles have separate epochs a
//! few milliseconds apart, so exact monotonicity would be a false
//! positive). Multi-cell traces interleave parallel workers, so the
//! monotonicity check auto-skips when the manifest lists more than one
//! cell; span pairing stays on — depth counting balances regardless of
//! interleaving. With `--require a,b,..` the listed event kinds must
//! each appear at least once.
//!
//! ```text
//! cargo run -p experiments --bin telemetry_check -- <dir> [--require gating,emergency]
//! ```
//!
//! Exits non-zero (with a diagnostic on stderr) on any violation, so
//! `ci.sh` can use it as a machine-readable smoke test without `jq`.

use simkit::telemetry::json::{parse, JsonValue};
use simkit::telemetry::manifest::{RunManifest, MANIFEST_FILE, TRACE_FILE};
use simkit::telemetry::EventKind;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: telemetry_check <dir> [--require kind1,kind2,..] [--mono-slack <s>]\n\
     kinds: span_start span_end counter gauge histogram gating\n\
     \u{20}      emergency solve progress frame"
}

struct Args {
    dir: PathBuf,
    require: Vec<EventKind>,
    /// Largest tolerated backward timestamp step, in seconds.
    mono_slack: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut dir = None;
    let mut require = Vec::new();
    let mut mono_slack = 0.1;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--require" => {
                let list = it.next().ok_or("--require expects a value")?;
                for tag in list.split(',').filter(|t| !t.is_empty()) {
                    require.push(
                        EventKind::parse(tag).ok_or_else(|| format!("unknown kind {tag:?}"))?,
                    );
                }
            }
            "--mono-slack" => {
                let value = it.next().ok_or("--mono-slack expects seconds")?;
                mono_slack = value
                    .parse()
                    .map_err(|e| format!("bad --mono-slack: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => match other.strip_prefix("--require=") {
                Some(list) => {
                    for tag in list.split(',').filter(|t| !t.is_empty()) {
                        require.push(
                            EventKind::parse(tag).ok_or_else(|| format!("unknown kind {tag:?}"))?,
                        );
                    }
                }
                None if dir.is_none() => dir = Some(PathBuf::from(other)),
                None => return Err(format!("unexpected argument {other:?}")),
            },
        }
    }
    Ok(Args {
        dir: dir.ok_or("missing <dir>")?,
        require,
        mono_slack,
    })
}

/// Validates one trace line; returns its event kind, timestamp, name,
/// and track id (0 for the run-level handle, which omits the field).
fn check_line(line: &str) -> Result<(EventKind, f64, String, u64), String> {
    let value = parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let obj = match &value {
        JsonValue::Obj(_) => &value,
        _ => return Err("event is not a JSON object".into()),
    };
    let kind_str = obj
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"kind\"")?;
    let kind = EventKind::parse(kind_str).ok_or_else(|| format!("unknown kind {kind_str:?}"))?;
    let t = obj
        .get("t")
        .and_then(JsonValue::as_f64)
        .filter(|t| t.is_finite() && *t >= 0.0)
        .ok_or("missing finite numeric field \"t\"")?;
    let name = obj
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"name\"")?;
    if name.is_empty() {
        return Err("empty \"name\"".into());
    }
    let track = match obj.get("track") {
        None => 0,
        Some(v) => v
            .as_f64()
            .filter(|t| t.is_finite() && *t >= 0.0 && t.fract() == 0.0)
            .ok_or("field \"track\" is not a non-negative integer")? as u64,
    };
    Ok((kind, t, name.to_string(), track))
}

fn run(args: &Args) -> Result<(u64, usize), String> {
    let manifest_path = args.dir.join(MANIFEST_FILE);
    let manifest_text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    // `from_json` re-checks the schema tag, config hash, and event total.
    let manifest = RunManifest::from_json(manifest_text.trim())
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;

    let trace_path = args.dir.join(TRACE_FILE);
    let trace = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("cannot read {}: {e}", trace_path.display()))?;
    // Parallel sweep cells interleave their (per-handle-epoch)
    // timestamps arbitrarily; only single-cell traces are ordered.
    let check_mono = manifest.cells.len() <= 1;
    let mut seen = BTreeSet::new();
    let mut lines = 0u64;
    // Keyed by (track, name): parallel workers pair independently.
    let mut open_spans: BTreeMap<(u64, String), u64> = BTreeMap::new();
    let mut prev_t = f64::NEG_INFINITY;
    for (i, line) in trace.lines().enumerate() {
        let (kind, t, name, track) =
            check_line(line).map_err(|e| format!("{}:{}: {e}", TRACE_FILE, i + 1))?;
        match kind {
            EventKind::SpanStart => *open_spans.entry((track, name)).or_insert(0) += 1,
            EventKind::SpanEnd => {
                let depth = open_spans
                    .get_mut(&(track, name.clone()))
                    .filter(|d| **d > 0)
                    .ok_or_else(|| {
                        format!(
                            "{}:{}: span_end {name:?} on track {track} without a \
                             matching span_start",
                            TRACE_FILE,
                            i + 1
                        )
                    })?;
                *depth -= 1;
            }
            _ => {}
        }
        if check_mono && t + args.mono_slack < prev_t {
            return Err(format!(
                "{}:{}: timestamp went backwards: {t:.6}s after {prev_t:.6}s \
                 (slack {}s)",
                TRACE_FILE,
                i + 1,
                args.mono_slack
            ));
        }
        prev_t = prev_t.max(t);
        seen.insert(kind.as_str());
        lines += 1;
    }
    let unclosed: Vec<String> = open_spans
        .iter()
        .filter(|(_, depth)| **depth > 0)
        .map(|((track, name), _)| format!("{name} (track {track})"))
        .collect();
    if !unclosed.is_empty() {
        return Err(format!(
            "{} span(s) never closed: {}",
            unclosed.len(),
            unclosed.join(", ")
        ));
    }
    if lines != manifest.total_events() {
        return Err(format!(
            "event count mismatch: {} trace lines vs events_total {}",
            lines,
            manifest.total_events()
        ));
    }
    for kind in &args.require {
        if !seen.contains(kind.as_str()) {
            return Err(format!(
                "required event kind {:?} never appears",
                kind.as_str()
            ));
        }
    }
    Ok((lines, seen.len()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok((lines, kinds)) => {
            println!(
                "ok: {} valid events across {} kinds in {} (spans paired, timestamps ordered)",
                lines,
                kinds,
                args.dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("telemetry_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
