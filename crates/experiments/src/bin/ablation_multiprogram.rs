//! Section 7 study — multiprogrammed workloads: ThermoGater governs each
//! Vdd-domain independently, so mixing a heavy and a light program
//! across the cores still sustains near-peak conversion efficiency.

use experiments::context::ExpOptions;
use experiments::figures::ablations::ablation_multiprogram;
use experiments::report::{banner, fmt_opt, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Study (Section 7)",
        "multiprogramming: cholesky + raytrace mixed across the cores",
    );
    let rows = ablation_multiprogram(&opts);
    let mut table = TextTable::new(&[
        "workload",
        "policy",
        "T_max (°C)",
        "η (%)",
        "noise (%)",
        "#active",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.workload.clone(),
            row.policy.label().to_string(),
            format!("{:.2}", row.tmax_c),
            format!("{:.2}", row.mean_efficiency * 100.0),
            fmt_opt(row.max_noise_pct, 1),
            format!("{:.1}", row.mean_active),
        ]);
    }
    table.print();
    println!(
        "\nReading guide: under the mix, PracVT's active count and \
         efficiency land between the two single-program runs — each \
         core domain is gated for its own program's demand, which is \
         exactly the per-domain independence Section 7 claims."
    );
}
