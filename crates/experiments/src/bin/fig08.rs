//! Fig. 8 — a representative regulator's thermal profile under Naïve
//! gating: the temperature oscillates as the policy toggles it.

use experiments::context::ExpOptions;
use experiments::figures::thermal_figs::fig08;
use experiments::report::{banner, TextTable};

fn main() {
    let opts = ExpOptions::from_args();
    banner(
        "Fig. 8",
        "thermal profile of one regulator under Naïve gating (lu_ncb)",
    );
    let data = fig08(&opts);
    println!("showcased regulator: {}\n", data.vr);
    let mut table = TextTable::new(&["time (ms)", "T (°C)", "state"]);
    let step = (data.time_ms.len() / 50).max(1);
    for k in (0..data.time_ms.len()).step_by(step) {
        table.add_row(vec![
            format!("{:.2}", data.time_ms[k]),
            format!("{:.2}", data.temperature_c[k]),
            if data.state_on[k] { "ON" } else { "off" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nPeak-to-peak swing of this regulator: {:.2} °C (paper: the \
         showcased regulator changes by more than 5 °C as Naïve toggles \
         it every decision interval).",
        data.swing_c
    );
}
