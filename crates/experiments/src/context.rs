//! Experiment options and engine configurations.

use simkit::units::Seconds;
use std::path::PathBuf;
use thermal::ThermalConfig;
use thermogater::EngineConfig;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExpOptions {
    /// Run a reduced configuration (shorter ROI, coarser grid, fewer
    /// noise windows) for fast iteration.
    pub quick: bool,
    /// Run a minimal configuration (3 ms ROI, 4 noise windows) — for
    /// tests and benchmarks of the sweep machinery itself.
    pub tiny: bool,
    /// Sweep worker-thread count. `None` defers to the `SIMKIT_THREADS`
    /// environment variable, then to the machine's available parallelism.
    pub threads: Option<usize>,
    /// Suppress human-readable tables and banners; telemetry files are
    /// still written.
    pub quiet: bool,
    /// Directory to write structured telemetry into (`trace.jsonl` +
    /// `manifest.json`). `None` disables telemetry.
    pub telemetry: Option<PathBuf>,
    /// Spatial frame-recorder sampling period in thermal steps
    /// (`--frames=N` / `SIMKIT_FRAMES`). `None` disables frame capture;
    /// frames are only emitted when telemetry is also enabled.
    pub frames: Option<usize>,
    /// Fold events into an in-process live aggregate (`--live` /
    /// `SIMKIT_LIVE`), self-reporting the aggregation cost through
    /// `telemetry.live.*` counters. Only meaningful with telemetry on.
    pub live: bool,
}

impl ExpOptions {
    /// Parses the process arguments (`--quick`, `--tiny`, `--threads=N`,
    /// `--quiet`/`-q`, `--telemetry=<dir>`). `THERMOGATER_QUICK` in the
    /// environment also selects the quick configuration, and
    /// `SIMKIT_TELEMETRY=<dir>` enables telemetry when the flag is
    /// absent. `--frames=N` / `SIMKIT_FRAMES=N` turns on the spatial
    /// frame recorder with a capture every N thermal steps; `--live` /
    /// `SIMKIT_LIVE` folds events into an in-process live aggregate
    /// with self-reported overhead counters. Also installs the quiet
    /// preference into [`crate::report`], so tables printed through it
    /// honour `--quiet`.
    pub fn from_args() -> Self {
        let quick =
            std::env::args().any(|a| a == "--quick") || std::env::var("THERMOGATER_QUICK").is_ok();
        let tiny = std::env::args().any(|a| a == "--tiny");
        let threads = std::env::args()
            .find_map(|a| a.strip_prefix("--threads=").and_then(|n| n.parse().ok()));
        let quiet = std::env::args().any(|a| a == "--quiet" || a == "-q");
        let telemetry = std::env::args()
            .find_map(|a| a.strip_prefix("--telemetry=").map(PathBuf::from))
            .or_else(|| std::env::var("SIMKIT_TELEMETRY").ok().map(PathBuf::from));
        let frames = std::env::args()
            .find_map(|a| a.strip_prefix("--frames=").and_then(|n| n.parse().ok()))
            .or_else(|| {
                std::env::var("SIMKIT_FRAMES")
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
            });
        let live = std::env::args().any(|a| a == "--live") || std::env::var("SIMKIT_LIVE").is_ok();
        crate::report::set_quiet(quiet);
        ExpOptions {
            quick,
            tiny,
            threads,
            quiet,
            telemetry,
            frames,
            live,
        }
    }

    /// Explicit constructor for benches and tests.
    pub fn new(quick: bool) -> Self {
        ExpOptions {
            quick,
            ..ExpOptions::default()
        }
    }

    /// The minimal configuration (3 ms ROI, coarse grid, 4 noise
    /// windows) — small enough for sweep-machinery tests and benches.
    pub fn tiny() -> Self {
        ExpOptions {
            tiny: true,
            ..ExpOptions::default()
        }
    }

    /// This configuration with an explicit sweep worker-thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        ExpOptions {
            threads: Some(threads),
            ..self
        }
    }

    /// This configuration with telemetry written into `dir`.
    pub fn with_telemetry(self, dir: impl Into<PathBuf>) -> Self {
        ExpOptions {
            telemetry: Some(dir.into()),
            ..self
        }
    }

    /// This configuration with human-readable output suppressed.
    pub fn with_quiet(self) -> Self {
        ExpOptions {
            quiet: true,
            ..self
        }
    }

    /// This configuration with the spatial frame recorder sampling
    /// every `every` thermal steps.
    pub fn with_frames(self, every: usize) -> Self {
        ExpOptions {
            frames: Some(every),
            ..self
        }
    }

    /// This configuration with in-process live aggregation enabled.
    pub fn with_live(self) -> Self {
        ExpOptions { live: true, ..self }
    }

    /// The sweep worker-thread count: the explicit option, else the
    /// `SIMKIT_THREADS` environment variable, else the machine's
    /// available parallelism; never zero.
    pub fn resolved_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        if let Some(n) = std::env::var("SIMKIT_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// The engine configuration these options select.
    pub fn engine_config(&self) -> EngineConfig {
        let base = if self.tiny {
            EngineConfig {
                duration: Seconds::from_millis(3.0),
                thermal: ThermalConfig::coarse(),
                noise_window_count: 4,
                profiling_decisions: 4,
                ..EngineConfig::standard()
            }
        } else if self.quick {
            EngineConfig {
                duration: Seconds::from_millis(6.0),
                thermal: ThermalConfig::coarse(),
                noise_window_count: 60,
                profiling_decisions: 5,
                ..EngineConfig::standard()
            }
        } else {
            EngineConfig::standard()
        };
        EngineConfig {
            frame_every: self.frames.unwrap_or(0),
            ..base
        }
    }

    /// Cache-directory tag for this configuration.
    pub fn tag(&self) -> &'static str {
        if self.tiny {
            "tiny"
        } else if self.quick {
            "quick"
        } else {
            "full"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller() {
        let quick = ExpOptions::new(true).engine_config();
        let full = ExpOptions::new(false).engine_config();
        assert!(quick.duration < full.duration);
        assert!(quick.noise_window_count < full.noise_window_count);
        assert!(quick.thermal.nx < full.thermal.nx);
        assert_eq!(ExpOptions::new(true).tag(), "quick");
        assert_eq!(ExpOptions::new(false).tag(), "full");
    }

    #[test]
    fn tiny_config_is_smallest() {
        let tiny = ExpOptions::tiny().engine_config();
        let quick = ExpOptions::new(true).engine_config();
        assert!(tiny.duration < quick.duration);
        assert!(tiny.noise_window_count < quick.noise_window_count);
        assert_eq!(ExpOptions::tiny().tag(), "tiny");
    }

    #[test]
    fn explicit_threads_win_and_are_clamped() {
        assert_eq!(ExpOptions::tiny().with_threads(3).resolved_threads(), 3);
        assert_eq!(ExpOptions::tiny().with_threads(0).resolved_threads(), 1);
        // Without an explicit count the resolution is still nonzero.
        assert!(ExpOptions::tiny().resolved_threads() >= 1);
    }

    #[test]
    fn frames_option_selects_the_recorder_period() {
        assert_eq!(ExpOptions::tiny().engine_config().frame_every, 0);
        let opts = ExpOptions::tiny().with_frames(25);
        assert_eq!(opts.frames, Some(25));
        assert_eq!(opts.engine_config().frame_every, 25);
        // The frame grid stays at the engine default resolution.
        assert_eq!(opts.engine_config().frame_grid, 16);
    }

    #[test]
    fn telemetry_and_quiet_builders() {
        let opts = ExpOptions::tiny().with_telemetry("/tmp/tg").with_quiet();
        assert!(opts.quiet);
        assert_eq!(
            opts.telemetry.as_deref(),
            Some(std::path::Path::new("/tmp/tg"))
        );
        assert!(ExpOptions::tiny().telemetry.is_none());
        assert!(!ExpOptions::tiny().quiet);
        assert!(!ExpOptions::tiny().live);
        assert!(ExpOptions::tiny().with_live().live);
    }
}
