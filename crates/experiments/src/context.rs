//! Experiment options and engine configurations.

use simkit::units::Seconds;
use thermal::ThermalConfig;
use thermogater::EngineConfig;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub struct ExpOptions {
    /// Run a reduced configuration (shorter ROI, coarser grid, fewer
    /// noise windows) for fast iteration.
    pub quick: bool,
}

impl ExpOptions {
    /// Parses the process arguments (`--quick` is the only flag).
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("THERMOGATER_QUICK").is_ok();
        ExpOptions { quick }
    }

    /// Explicit constructor for benches and tests.
    pub fn new(quick: bool) -> Self {
        ExpOptions { quick }
    }

    /// The engine configuration these options select.
    pub fn engine_config(&self) -> EngineConfig {
        if self.quick {
            EngineConfig {
                duration: Seconds::from_millis(6.0),
                thermal: ThermalConfig::coarse(),
                noise_window_count: 60,
                profiling_decisions: 5,
                ..EngineConfig::standard()
            }
        } else {
            EngineConfig::standard()
        }
    }

    /// Cache-directory tag for this configuration.
    pub fn tag(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller() {
        let quick = ExpOptions::new(true).engine_config();
        let full = ExpOptions::new(false).engine_config();
        assert!(quick.duration < full.duration);
        assert!(quick.noise_window_count < full.noise_window_count);
        assert!(quick.thermal.nx < full.thermal.nx);
        assert_eq!(ExpOptions::new(true).tag(), "quick");
        assert_eq!(ExpOptions::new(false).tag(), "full");
    }
}
