//! Experiment drivers that regenerate every table and figure of the
//! ThermoGater paper.
//!
//! Each `fig*`/`table*`/`ablation_*` binary in `src/bin/` reproduces one
//! artefact of the paper's evaluation section; the shared logic lives
//! here so the Criterion benches in the `bench` crate can reuse it:
//!
//! * [`context`] — common CLI options (`--quick`) and engine
//!   configurations;
//! * [`report`] — plain-text tables, series and heat-map rendering;
//! * [`sweep`] — cached benchmark × policy sweeps (the 14 × 8 grid that
//!   Figs. 9/10/11 and Table 2 share);
//! * [`service`] — the scenario layer under the sweep: content-hashed
//!   [`service::ScenarioSpec`]s, the content-addressed
//!   [`service::ScenarioCache`], and the bounded-memory batch executor
//!   behind the `tg-serve` bin;
//! * [`telemetry`] — per-run JSONL traces, metrics registries, and
//!   `manifest.json` writing (`--telemetry=<dir>`);
//! * [`figures`] — the per-artefact data builders;
//! * [`obs`] — run/snapshot diffing with per-metric directional
//!   tolerances (the engine behind `tg-obs diff`);
//! * [`snapshot`] — pinned-workload performance snapshots
//!   (`BENCH_*.json`, schema `thermogater.bench/v1`);
//! * [`verify`] — physics-invariant oracles, differential checks, and
//!   golden-run comparison (the engine behind `tg-verify`).
//!
//! Run an experiment with e.g.
//!
//! ```text
//! cargo run --release -p experiments --bin fig09            # full
//! cargo run --release -p experiments --bin fig09 -- --quick # reduced
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod figures;
pub mod obs;
pub mod report;
pub mod service;
pub mod snapshot;
pub mod sweep;
pub mod telemetry;
pub mod verify;
