//! Run and snapshot diffing with per-metric relative tolerances.
//!
//! `tg-obs diff` reduces two runs (JSONL trace + manifest) or two
//! [`BenchSnapshot`]s to a flat list of [`MetricDelta`]s. Every metric
//! carries its own tolerance and *direction*:
//!
//! * deterministic simulation metrics (event counts, counters, gauge
//!   means, solver iterations, gating churn) gate **exactly** or near
//!   exactly in either direction — the engine is bit-reproducible, so
//!   any drift means behaviour changed;
//! * wall-clock metrics (span durations, phase seconds) are
//!   **informational** — they never gate, they are reported for eyes;
//! * snapshot performance metrics gate **directionally** with loose
//!   tolerances (throughput may only drop so far, solver iterations and
//!   peak RSS may only grow so far) — an improvement is never a
//!   failure.
//!
//! A diff with at least one [`Verdict::Regression`] is a non-zero exit
//! for the CLI; the offending metrics are named in the rendered table.

use crate::report::TextTable;
use crate::snapshot::BenchSnapshot;
use simkit::telemetry::analyze::TraceAnalysis;
use simkit::telemetry::manifest::RunManifest;
use simkit::telemetry::EventKind;

/// How a metric is allowed to move between baseline `a` and candidate
/// `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Any relative change beyond tolerance is a regression.
    BothWays,
    /// Only an increase beyond tolerance is a regression (iterations,
    /// RSS, residuals).
    HigherIsWorse,
    /// Only a decrease beyond tolerance is a regression (throughput).
    LowerIsWorse,
    /// Never gates; reported for context (wall-clock noise).
    Informational,
}

/// The outcome for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or an allowed-direction change).
    Ok,
    /// Out of tolerance in a gating direction.
    Regression,
    /// Informational metric; never gates.
    Info,
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name, e.g. `"solver.thermal.gs.iters_p95"`.
    pub metric: String,
    /// Baseline value.
    pub a: f64,
    /// Candidate value.
    pub b: f64,
    /// Relative change `(b - a) / |a|` (sign preserved; ±∞ when the
    /// baseline is zero and the candidate is not).
    pub rel_change: f64,
    /// Allowed relative change.
    pub tolerance: f64,
    /// Gating direction.
    pub direction: Direction,
    /// Outcome.
    pub verdict: Verdict,
}

/// Per-metric tolerance overrides (`--tol name=rel` on the CLI) and the
/// cross-backend comparison mode (`--solver-agnostic`).
#[derive(Debug, Clone, Default)]
pub struct DiffConfig {
    overrides: Vec<(String, f64)>,
    solver_agnostic: bool,
}

impl DiffConfig {
    /// No overrides: built-in defaults apply.
    pub fn new() -> Self {
        DiffConfig::default()
    }

    /// Overrides the tolerance for one exact metric name.
    pub fn with_tolerance(mut self, metric: &str, tolerance: f64) -> Self {
        self.overrides.push((metric.to_string(), tolerance));
        self
    }

    /// Compares runs produced by *different solver backends*: solver
    /// sites are matched by their backend-stripped canonical name and
    /// only their solve counts gate (iteration counts and residuals are
    /// meaningless across solver families), while simulation metrics
    /// gate at [`PHYS_TOL`] instead of bit-tightness — different solvers
    /// agree to solver tolerance, not to the last ulp.
    pub fn solver_agnostic(mut self, yes: bool) -> Self {
        self.solver_agnostic = yes;
        self
    }

    fn tolerance(&self, metric: &str, default: f64) -> f64 {
        self.overrides
            .iter()
            .rev()
            .find(|(name, _)| name == metric)
            .map_or(default, |(_, t)| *t)
    }
}

/// The result of one diff: every compared metric, in comparison order.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All compared metrics.
    pub deltas: Vec<MetricDelta>,
}

impl DiffReport {
    fn push(
        &mut self,
        config: &DiffConfig,
        metric: String,
        a: f64,
        b: f64,
        default_tol: f64,
        direction: Direction,
    ) {
        let tolerance = config.tolerance(&metric, default_tol);
        let rel_change = if a == b {
            0.0
        } else if a == 0.0 {
            f64::INFINITY * (b - a).signum()
        } else {
            (b - a) / a.abs()
        };
        let verdict = match direction {
            Direction::Informational => Verdict::Info,
            _ if rel_change == 0.0 => Verdict::Ok,
            Direction::BothWays if rel_change.abs() > tolerance => Verdict::Regression,
            Direction::HigherIsWorse if rel_change > tolerance => Verdict::Regression,
            Direction::LowerIsWorse if rel_change < -tolerance => Verdict::Regression,
            _ => Verdict::Ok,
        };
        self.deltas.push(MetricDelta {
            metric,
            a,
            b,
            rel_change,
            tolerance,
            direction,
            verdict,
        });
    }

    /// The metrics that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regression)
    }

    /// Whether any metric regressed (CLI exit status).
    pub fn has_regression(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Merges another report's deltas in.
    pub fn extend(&mut self, other: DiffReport) {
        self.deltas.extend(other.deltas);
    }

    /// Renders the comparison as a column-aligned table. With
    /// `only_notable`, Ok rows are dropped (Info rows with a visible
    /// change and all regressions stay).
    pub fn render(&self, only_notable: bool) -> String {
        let mut table = TextTable::new(&["metric", "a", "b", "Δ%", "tol%", "verdict"]);
        for d in &self.deltas {
            if only_notable && d.verdict == Verdict::Ok {
                continue;
            }
            if only_notable && d.verdict == Verdict::Info && d.rel_change == 0.0 {
                continue;
            }
            let pct = |v: f64| {
                if v.is_finite() {
                    format!("{:+.2}", v * 100.0)
                } else {
                    "inf".to_string()
                }
            };
            table.add_row(vec![
                d.metric.clone(),
                format!("{:.6}", d.a),
                format!("{:.6}", d.b),
                pct(d.rel_change),
                format!("{:.2}", d.tolerance * 100.0),
                match d.verdict {
                    Verdict::Ok => "ok".to_string(),
                    Verdict::Regression => "REGRESSION".to_string(),
                    Verdict::Info => "info".to_string(),
                },
            ]);
        }
        table.render()
    }
}

/// Relative tolerance for simulation metrics in a cross-backend diff
/// ([`DiffConfig::solver_agnostic`]): direct and iterative solvers agree
/// to solver tolerance (measured ≤6e-9 relative on the hotspot
/// temperature — BENCH.md), far inside this bound, while any real
/// physics change is far outside it.
pub const PHYS_TOL: f64 = 1e-6;

/// Backend-stripped canonical solver-site name: `thermal.steady_cg`,
/// `thermal.steady_mgcg`, and `thermal.steady_direct` all solve the
/// steady conductance system, and `thermal.gs` / `thermal.transient_cg`
/// / `thermal.transient_mgcg` / `thermal.transient_direct` all solve
/// the backward-Euler step — a cross-backend diff matches sites by
/// *what* they solve, not how. (`_mgcg` strips before `_cg`: the
/// suffixes overlap.)
fn canonical_site(name: &str) -> &str {
    match name {
        "thermal.gs" => "thermal.transient",
        _ => name
            .strip_suffix("_mgcg")
            .or_else(|| name.strip_suffix("_cg"))
            .or_else(|| name.strip_suffix("_direct"))
            .unwrap_or(name),
    }
}

/// Unions the names of two ordered name-keyed slices, preserving `a`'s
/// order then appending `b`-only names.
fn name_union<'s, T>(a: &'s [(String, T)], b: &'s [(String, T)]) -> Vec<&'s str> {
    let mut names: Vec<&str> = a.iter().map(|(n, _)| n.as_str()).collect();
    for (n, _) in b {
        if !names.contains(&n.as_str()) {
            names.push(n);
        }
    }
    names
}

/// Compares two trace analyses.
///
/// Simulation metrics gate tightly (the engine is deterministic);
/// span-duration metrics are informational. A name present on only one
/// side shows up as a `count` metric with a zero on the missing side —
/// which gates, so a disappeared metric is a named regression, not a
/// silent hole.
pub fn diff_analyses(a: &TraceAnalysis, b: &TraceAnalysis, config: &DiffConfig) -> DiffReport {
    /// Relative slack for deterministic float aggregates: bitwise
    /// reproducibility is the repo's contract, but a diff should not
    /// fail on a last-ulp wobble in a mean.
    const EXACT: f64 = 0.0;
    const TIGHT: f64 = 1e-9;
    // Cross-backend comparisons agree to solver tolerance, not to the
    // last ulp of a deterministic replay.
    let metric_tol = if config.solver_agnostic {
        PHYS_TOL
    } else {
        TIGHT
    };

    let mut report = DiffReport::default();
    report.push(
        config,
        "events.total".into(),
        a.events as f64,
        b.events as f64,
        EXACT,
        Direction::BothWays,
    );
    for kind in EventKind::ALL {
        report.push(
            config,
            format!("events.{}", kind.as_str()),
            a.kind_count(kind) as f64,
            b.kind_count(kind) as f64,
            EXACT,
            Direction::BothWays,
        );
    }
    for name in name_union(&a.counters, &b.counters) {
        report.push(
            config,
            format!("counter.{name}"),
            a.counter(name) as f64,
            b.counter(name) as f64,
            EXACT,
            Direction::BothWays,
        );
    }
    for name in name_union(&a.rollups, &b.rollups) {
        let (ra, rb) = (a.rollup(name), b.rollup(name));
        report.push(
            config,
            format!("metric.{name}.count"),
            ra.map_or(0.0, |r| r.count() as f64),
            rb.map_or(0.0, |r| r.count() as f64),
            EXACT,
            Direction::BothWays,
        );
        for (stat, get) in [
            ("mean", Rollfn::Mean),
            ("p50", Rollfn::P(50.0)),
            ("p99", Rollfn::P(99.0)),
        ] {
            report.push(
                config,
                format!("metric.{name}.{stat}"),
                ra.and_then(|r| get.eval(r)).unwrap_or(0.0),
                rb.and_then(|r| get.eval(r)).unwrap_or(0.0),
                metric_tol,
                Direction::BothWays,
            );
        }
    }
    if config.solver_agnostic {
        // Match sites by the system they solve; only the solve *counts*
        // gate (both backends must solve every system exactly as often).
        // Iteration counts and residuals are properties of the solver
        // family, not the simulation — they are not comparable and are
        // not reported here.
        let canon_solves = |x: &TraceAnalysis, canon: &str| -> f64 {
            x.solvers
                .iter()
                .filter(|(n, _)| canonical_site(n) == canon)
                .map(|(_, s)| s.solves() as f64)
                .sum()
        };
        let mut canon_names: Vec<&str> = Vec::new();
        for (n, _) in a.solvers.iter().chain(b.solvers.iter()) {
            let c = canonical_site(n);
            if !canon_names.contains(&c) {
                canon_names.push(c);
            }
        }
        for canon in canon_names {
            report.push(
                config,
                format!("solver.{canon}.solves"),
                canon_solves(a, canon),
                canon_solves(b, canon),
                EXACT,
                Direction::BothWays,
            );
        }
    } else {
        for name in name_union(&a.solvers, &b.solvers) {
            let (sa, sb) = (a.solver(name), b.solver(name));
            report.push(
                config,
                format!("solver.{name}.solves"),
                sa.map_or(0.0, |s| s.solves() as f64),
                sb.map_or(0.0, |s| s.solves() as f64),
                EXACT,
                Direction::BothWays,
            );
            report.push(
                config,
                format!("solver.{name}.iters_mean"),
                sa.and_then(|s| s.iters.mean()).unwrap_or(0.0),
                sb.and_then(|s| s.iters.mean()).unwrap_or(0.0),
                TIGHT,
                Direction::BothWays,
            );
            report.push(
                config,
                format!("solver.{name}.iters_p95"),
                sa.and_then(|s| s.iters.percentile(95.0)).unwrap_or(0.0),
                sb.and_then(|s| s.iters.percentile(95.0)).unwrap_or(0.0),
                TIGHT,
                Direction::BothWays,
            );
            report.push(
                config,
                format!("solver.{name}.residual_max"),
                sa.and_then(|s| s.residuals.max()).unwrap_or(0.0),
                sb.and_then(|s| s.residuals.max()).unwrap_or(0.0),
                TIGHT,
                Direction::BothWays,
            );
        }
    }
    report.push(
        config,
        "gating.decisions".into(),
        a.gating.decisions as f64,
        b.gating.decisions as f64,
        EXACT,
        Direction::BothWays,
    );
    report.push(
        config,
        "gating.churn".into(),
        a.gating.churn() as f64,
        b.gating.churn() as f64,
        EXACT,
        Direction::BothWays,
    );
    report.push(
        config,
        "gating.active_mean".into(),
        a.gating.active.mean().unwrap_or(0.0),
        b.gating.active.mean().unwrap_or(0.0),
        TIGHT,
        Direction::BothWays,
    );
    report.push(
        config,
        "emergency.checks".into(),
        a.emergency.checks as f64,
        b.emergency.checks as f64,
        EXACT,
        Direction::BothWays,
    );
    report.push(
        config,
        "emergency.flagged_domains".into(),
        a.emergency.flagged_domains as f64,
        b.emergency.flagged_domains as f64,
        EXACT,
        Direction::BothWays,
    );
    report.push(
        config,
        "emergency.mispredicted".into(),
        a.emergency.mispredicted as f64,
        b.emergency.mispredicted as f64,
        EXACT,
        Direction::BothWays,
    );
    for name in name_union(&a.spans, &b.spans) {
        report.push(
            config,
            format!("span.{name}.p50_s"),
            a.span(name)
                .and_then(|s| s.durations.percentile(50.0))
                .unwrap_or(0.0),
            b.span(name)
                .and_then(|s| s.durations.percentile(50.0))
                .unwrap_or(0.0),
            0.0,
            Direction::Informational,
        );
    }
    report
}

enum Rollfn {
    Mean,
    P(f64),
}

impl Rollfn {
    fn eval(&self, r: &simkit::telemetry::analyze::Rollup) -> Option<f64> {
        match self {
            Rollfn::Mean => r.mean(),
            Rollfn::P(p) => r.percentile(*p),
        }
    }
}

/// Compares two run manifests. Everything here is context (who produced
/// the runs, with what configuration), so all rows are informational —
/// except the event totals, which gate exactly like the trace counts.
pub fn diff_manifests(a: &RunManifest, b: &RunManifest, config: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    report.push(
        config,
        "manifest.config_hash_matches".into(),
        1.0,
        if a.config_hash() == b.config_hash() {
            1.0
        } else {
            0.0
        },
        0.0,
        Direction::Informational,
    );
    report.push(
        config,
        "manifest.threads".into(),
        a.threads as f64,
        b.threads as f64,
        0.0,
        Direction::Informational,
    );
    report.push(
        config,
        "manifest.cells".into(),
        a.cells.len() as f64,
        b.cells.len() as f64,
        0.0,
        Direction::BothWays,
    );
    report.push(
        config,
        "manifest.events_total".into(),
        a.total_events() as f64,
        b.total_events() as f64,
        0.0,
        Direction::BothWays,
    );
    report
}

/// Default tolerances for snapshot (performance) comparisons.
pub mod snapshot_tolerances {
    /// Throughput may drop this much before gating (wall-clock noise on
    /// shared CI hardware is real).
    pub const STEPS_PER_SEC: f64 = 0.25;
    /// Solver iterations are deterministic; a growth beyond this is a
    /// real algorithmic regression.
    pub const SOLVER_ITERS: f64 = 0.10;
    /// Peak RSS may grow this much before gating.
    pub const PEAK_RSS: f64 = 0.30;
    /// The frame recorder's share of run wall time may grow this much
    /// before gating (both the numerator and denominator are
    /// wall-clock, so the ratio is doubly env-sensitive; an order of
    /// magnitude means the recorder's cost model actually changed).
    pub const TELEMETRY_OVERHEAD: f64 = 9.0;
}

/// Compares two performance snapshots (`BENCH_*.json`).
///
/// Entries are matched by policy tag; an entry present on one side only
/// gates via the entry-count metric. Throughput gates downward, solver
/// iterations and peak RSS gate upward, phase/wall seconds are
/// informational.
pub fn diff_snapshots(a: &BenchSnapshot, b: &BenchSnapshot, config: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    report.push(
        config,
        "snap.entries".into(),
        a.entries.len() as f64,
        b.entries.len() as f64,
        0.0,
        Direction::BothWays,
    );
    if let (Some(ra), Some(rb)) = (a.peak_rss_bytes, b.peak_rss_bytes) {
        report.push(
            config,
            "snap.peak_rss_bytes".into(),
            ra as f64,
            rb as f64,
            snapshot_tolerances::PEAK_RSS,
            Direction::HigherIsWorse,
        );
    }
    // Frame-recorder overhead axis: the frame count is deterministic
    // for the pinned config and gates exactly; the recorder's share of
    // wall time gates loosely upward; raw wall seconds are for eyes.
    if let (Some(ta), Some(tb)) = (&a.telemetry, &b.telemetry) {
        report.push(
            config,
            "snap.telemetry.frames".into(),
            ta.frames as f64,
            tb.frames as f64,
            0.0,
            Direction::BothWays,
        );
        report.push(
            config,
            "snap.telemetry.overhead_share".into(),
            ta.overhead_share(),
            tb.overhead_share(),
            snapshot_tolerances::TELEMETRY_OVERHEAD,
            Direction::HigherIsWorse,
        );
        report.push(
            config,
            "snap.telemetry.frames_wall_s".into(),
            ta.frames_wall_s,
            tb.frames_wall_s,
            0.0,
            Direction::Informational,
        );
        report.push(
            config,
            "snap.telemetry.base_wall_s".into(),
            ta.base_wall_s,
            tb.base_wall_s,
            0.0,
            Direction::Informational,
        );
    }
    // Live-aggregation overhead axis: mirrors the frame-recorder axis —
    // folded-event count is deterministic and gates exactly, the fold's
    // share of wall time gates loosely upward, raw walls are for eyes.
    if let (Some(la), Some(lb)) = (&a.live, &b.live) {
        report.push(
            config,
            "snap.live.events".into(),
            la.events as f64,
            lb.events as f64,
            0.0,
            Direction::BothWays,
        );
        report.push(
            config,
            "snap.live.overhead_share".into(),
            la.overhead_share(),
            lb.overhead_share(),
            snapshot_tolerances::TELEMETRY_OVERHEAD,
            Direction::HigherIsWorse,
        );
        report.push(
            config,
            "snap.live.live_wall_s".into(),
            la.live_wall_s,
            lb.live_wall_s,
            0.0,
            Direction::Informational,
        );
        report.push(
            config,
            "snap.live.base_wall_s".into(),
            la.base_wall_s,
            lb.base_wall_s,
            0.0,
            Direction::Informational,
        );
    }
    // Scenario-service cache-hit axis: the counters are deterministic
    // for the pinned batch (cold engine runs = unique hashes, warm
    // answers = all from cache) and gate exactly — any drift means the
    // cache key or the executor's coalescing semantics changed. Walls
    // and the derived warm throughput are env-sensitive, so they stay
    // informational like every other wall-clock metric here.
    if let (Some(sa), Some(sb)) = (&a.serve, &b.serve) {
        report.push(
            config,
            "snap.serve.scenarios".into(),
            sa.scenarios as f64,
            sb.scenarios as f64,
            0.0,
            Direction::BothWays,
        );
        report.push(
            config,
            "snap.serve.unique".into(),
            sa.unique as f64,
            sb.unique as f64,
            0.0,
            Direction::BothWays,
        );
        report.push(
            config,
            "snap.serve.cold_misses".into(),
            sa.cold_misses as f64,
            sb.cold_misses as f64,
            0.0,
            Direction::BothWays,
        );
        report.push(
            config,
            "snap.serve.cold_served".into(),
            sa.cold_served as f64,
            sb.cold_served as f64,
            0.0,
            Direction::BothWays,
        );
        report.push(
            config,
            "snap.serve.warm_hits".into(),
            sa.warm_hits as f64,
            sb.warm_hits as f64,
            0.0,
            Direction::BothWays,
        );
        report.push(
            config,
            "snap.serve.cold_wall_s".into(),
            sa.cold_wall_s,
            sb.cold_wall_s,
            0.0,
            Direction::Informational,
        );
        report.push(
            config,
            "snap.serve.warm_wall_s".into(),
            sa.warm_wall_s,
            sb.warm_wall_s,
            0.0,
            Direction::Informational,
        );
        report.push(
            config,
            "snap.serve.warm_per_sec".into(),
            sa.warm_per_sec(),
            sb.warm_per_sec(),
            0.0,
            Direction::Informational,
        );
    }
    for ea in &a.entries {
        let Some(eb) = b.entries.iter().find(|e| e.policy == ea.policy) else {
            continue;
        };
        let p = &ea.policy;
        report.push(
            config,
            format!("snap.{p}.steps_per_sec"),
            ea.steps_per_sec,
            eb.steps_per_sec,
            snapshot_tolerances::STEPS_PER_SEC,
            Direction::LowerIsWorse,
        );
        report.push(
            config,
            format!("snap.{p}.wall_s"),
            ea.wall_s,
            eb.wall_s,
            0.0,
            Direction::Informational,
        );
        for (phase, seconds) in &ea.phases {
            let other = eb
                .phases
                .iter()
                .find(|(n, _)| n == phase)
                .map_or(0.0, |(_, s)| *s);
            report.push(
                config,
                format!("snap.{p}.phase.{phase}_s"),
                *seconds,
                other,
                0.0,
                Direction::Informational,
            );
        }
        for sa in &ea.solver {
            let Some(sb) = eb.solver.iter().find(|s| s.site == sa.site) else {
                report.push(
                    config,
                    format!("snap.{p}.solver.{}.solves", sa.site),
                    sa.solves as f64,
                    0.0,
                    0.0,
                    Direction::BothWays,
                );
                continue;
            };
            report.push(
                config,
                format!("snap.{p}.solver.{}.iters_p50", sa.site),
                sa.iters_p50,
                sb.iters_p50,
                snapshot_tolerances::SOLVER_ITERS,
                Direction::HigherIsWorse,
            );
            report.push(
                config,
                format!("snap.{p}.solver.{}.iters_p95", sa.site),
                sa.iters_p95,
                sb.iters_p95,
                snapshot_tolerances::SOLVER_ITERS,
                Direction::HigherIsWorse,
            );
            report.push(
                config,
                format!("snap.{p}.solver.{}.residual_max", sa.site),
                sa.residual_max,
                sb.residual_max,
                0.0,
                Direction::Informational,
            );
        }
    }
    // Grid-scaling axis: (grid, backend) cells are matched pairwise.
    // Iteration counts are deterministic and gate tightly; setup and
    // wall seconds are env-sensitive and stay informational. A cell
    // present on one side only gates via the solves metric, so dropping
    // a grid or backend from the axis cannot pass silently.
    for sa in &a.scaling {
        let cell = format!("snap.scaling.{}.{}", sa.grid, sa.backend);
        let Some(sb) = b
            .scaling
            .iter()
            .find(|s| s.grid == sa.grid && s.backend == sa.backend)
        else {
            report.push(
                config,
                format!("{cell}.solves"),
                sa.solves as f64,
                0.0,
                0.0,
                Direction::BothWays,
            );
            continue;
        };
        report.push(
            config,
            format!("{cell}.iters_mean"),
            sa.iters_mean,
            sb.iters_mean,
            snapshot_tolerances::SOLVER_ITERS,
            Direction::HigherIsWorse,
        );
        report.push(
            config,
            format!("{cell}.setup_s"),
            sa.setup_s,
            sb.setup_s,
            0.0,
            Direction::Informational,
        );
        report.push(
            config,
            format!("{cell}.wall_s"),
            sa.wall_s,
            sb.wall_s,
            0.0,
            Direction::Informational,
        );
    }
    for sb in &b.scaling {
        if !a
            .scaling
            .iter()
            .any(|s| s.grid == sb.grid && s.backend == sb.backend)
        {
            report.push(
                config,
                format!("snap.scaling.{}.{}.solves", sb.grid, sb.backend),
                0.0,
                sb.solves as f64,
                0.0,
                Direction::BothWays,
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::telemetry::analyze::ParsedEvent;
    use simkit::telemetry::Telemetry;

    fn tiny_analysis(extra_iters: usize) -> TraceAnalysis {
        let (tel, sink) = Telemetry::recorder();
        tel.counter("engine.decisions", 3);
        tel.gauge("thermal.max_silicon_c", 63.5);
        tel.solve("thermal.gs", 10 + extra_iters, 1e-9);
        tel.event(simkit::telemetry::EventKind::Gating, "engine.gating")
            .field_u64("active", 12)
            .field_u64("turned_on", 1)
            .field_u64("turned_off", 0)
            .emit();
        let mut analysis = TraceAnalysis::new();
        for event in sink.events() {
            analysis.observe(&ParsedEvent::from_line(&event.to_json()).unwrap());
        }
        analysis
    }

    #[test]
    fn identical_analyses_have_zero_drift() {
        let a = tiny_analysis(0);
        let report = diff_analyses(&a, &a, &DiffConfig::new());
        assert!(!report.has_regression(), "{}", report.render(true));
        assert!(report.deltas.iter().all(|d| d.rel_change == 0.0));
    }

    #[test]
    fn solver_iteration_growth_is_a_named_regression() {
        let a = tiny_analysis(0);
        let b = tiny_analysis(5);
        let report = diff_analyses(&a, &b, &DiffConfig::new());
        assert!(report.has_regression());
        let names: Vec<&str> = report.regressions().map(|d| d.metric.as_str()).collect();
        assert!(
            names.contains(&"solver.thermal.gs.iters_mean"),
            "regressions: {names:?}"
        );
    }

    #[test]
    fn missing_metric_gates_instead_of_vanishing() {
        let a = tiny_analysis(0);
        let mut b = tiny_analysis(0);
        b.rollups.clear();
        let report = diff_analyses(&a, &b, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "metric.thermal.max_silicon_c.count"));
    }

    fn backend_analysis(site: &'static str, temp: f64, solves: usize) -> TraceAnalysis {
        let (tel, sink) = Telemetry::recorder();
        tel.counter("engine.decisions", 3);
        tel.gauge("thermal.max_silicon_c", temp);
        for _ in 0..solves {
            tel.solve(site, if site.ends_with("_direct") { 1 } else { 42 }, 1e-9);
        }
        let mut analysis = TraceAnalysis::new();
        for event in sink.events() {
            analysis.observe(&ParsedEvent::from_line(&event.to_json()).unwrap());
        }
        analysis
    }

    #[test]
    fn solver_agnostic_diff_matches_sites_across_backends() {
        // A GS run and a direct run: different site names, different
        // iteration counts, temperatures agreeing to solver tolerance.
        let a = backend_analysis("thermal.gs", 63.5, 4);
        let b = backend_analysis("thermal.transient_direct", 63.5 + 1e-7, 4);

        // The default (bit-tight) diff flags the renamed site and the
        // float wobble…
        let strict = diff_analyses(&a, &b, &DiffConfig::new());
        assert!(strict.has_regression());

        // …the solver-agnostic diff sees the same system solved the
        // same number of times and physics within PHYS_TOL.
        let config = DiffConfig::new().solver_agnostic(true);
        let report = diff_analyses(&a, &b, &config);
        assert!(!report.has_regression(), "{}", report.render(true));
        let solves = report
            .deltas
            .iter()
            .find(|d| d.metric == "solver.thermal.transient.solves")
            .expect("canonical solver row");
        assert_eq!((solves.a, solves.b), (4.0, 4.0));
        // Per-backend iteration stats are not comparable and not emitted.
        assert!(report.deltas.iter().all(|d| !d.metric.contains("iters")));
    }

    #[test]
    fn solver_agnostic_diff_still_gates_on_solve_counts_and_physics() {
        let a = backend_analysis("thermal.transient_cg", 63.5, 4);
        let config = DiffConfig::new().solver_agnostic(true);

        // One missing solve is a gating regression even across backends.
        let fewer = backend_analysis("thermal.transient_direct", 63.5, 3);
        let report = diff_analyses(&a, &fewer, &config);
        assert!(report
            .regressions()
            .any(|d| d.metric == "solver.thermal.transient.solves"));

        // So is a physics difference beyond PHYS_TOL.
        let hotter = backend_analysis("thermal.transient_direct", 64.2, 4);
        let report = diff_analyses(&a, &hotter, &config);
        assert!(report
            .regressions()
            .any(|d| d.metric.starts_with("metric.thermal.max_silicon_c")));
    }

    #[test]
    fn tolerance_overrides_win() {
        let a = tiny_analysis(0);
        let b = tiny_analysis(5);
        let config = DiffConfig::new()
            .with_tolerance("solver.thermal.gs.iters_mean", 10.0)
            .with_tolerance("solver.thermal.gs.iters_p95", 10.0)
            .with_tolerance("solver.thermal.gs.residual_max", 10.0);
        let report = diff_analyses(&a, &b, &config);
        assert!(!report.has_regression(), "{}", report.render(true));
    }

    #[test]
    fn snapshot_diff_gates_directionally() {
        let base = crate::snapshot::tests::sample("a", 4.0);

        // Identical snapshots: zero drift.
        let same = diff_snapshots(&base, &base, &DiffConfig::new());
        assert!(!same.has_regression(), "{}", same.render(true));

        // Injected solver-iteration regression: named, gating.
        let worse = crate::snapshot::tests::sample("b", 8.0);
        let report = diff_snapshots(&base, &worse, &DiffConfig::new());
        assert!(report.has_regression());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.oract.solver.transient.iters_p95"));

        // The reverse direction (fewer iterations) is an improvement,
        // not a failure.
        let better = diff_snapshots(&worse, &base, &DiffConfig::new());
        assert!(!better.has_regression(), "{}", better.render(true));
    }

    #[test]
    fn scaling_axis_gates_on_iterations_and_missing_cells() {
        let base = crate::snapshot::tests::sample("a", 4.0);

        // Multigrid losing its iteration advantage at a grid gates.
        let mut worse = base.clone();
        worse
            .scaling
            .iter_mut()
            .find(|s| s.backend == "mgcg")
            .unwrap()
            .iters_mean *= 3.0;
        let report = diff_snapshots(&base, &worse, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.scaling.64.mgcg.iters_mean"));

        // Wall-clock drift alone stays informational.
        let mut slower = base.clone();
        for s in &mut slower.scaling {
            s.wall_s *= 5.0;
            s.setup_s *= 5.0;
        }
        let report = diff_snapshots(&base, &slower, &DiffConfig::new());
        assert!(!report.has_regression(), "{}", report.render(true));

        // Dropping a (grid, backend) cell cannot pass silently — in
        // either direction.
        let mut missing = base.clone();
        missing.scaling.retain(|s| s.backend != "mgcg");
        let report = diff_snapshots(&base, &missing, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.scaling.64.mgcg.solves"));
        let report = diff_snapshots(&missing, &base, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.scaling.64.mgcg.solves"));
    }

    #[test]
    fn telemetry_overhead_axis_gates_on_frames_and_share() {
        let base = crate::snapshot::tests::sample("a", 4.0);

        // A changed frame count means the sampling schedule changed.
        let mut fewer = base.clone();
        fewer.telemetry.as_mut().unwrap().frames -= 1;
        let report = diff_snapshots(&base, &fewer, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.telemetry.frames"));

        // An order-of-magnitude overhead-share blowup gates; wall-clock
        // wobble inside the loose tolerance does not.
        let mut costly = base.clone();
        costly.telemetry.as_mut().unwrap().overhead_us *= 20;
        let report = diff_snapshots(&base, &costly, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.telemetry.overhead_share"));
        let mut wobble = base.clone();
        wobble.telemetry.as_mut().unwrap().overhead_us *= 2;
        let report = diff_snapshots(&base, &wobble, &DiffConfig::new());
        assert!(!report.has_regression(), "{}", report.render(true));

        // A side without the axis skips it instead of failing.
        let mut absent = base.clone();
        absent.telemetry = None;
        let report = diff_snapshots(&base, &absent, &DiffConfig::new());
        assert!(report
            .deltas
            .iter()
            .all(|d| !d.metric.starts_with("snap.telemetry")));
    }

    #[test]
    fn serve_axis_gates_on_counters_not_walls() {
        let base = crate::snapshot::tests::sample("a", 4.0);

        // An extra cold engine run means the cache key drifted.
        let mut leaky = base.clone();
        leaky.serve.as_mut().unwrap().cold_misses += 1;
        let report = diff_snapshots(&base, &leaky, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.serve.cold_misses"));

        // A warm pass that fell short of pure cache hits gates — in
        // either direction.
        let mut cold = base.clone();
        cold.serve.as_mut().unwrap().warm_hits -= 1;
        let report = diff_snapshots(&base, &cold, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.serve.warm_hits"));
        let report = diff_snapshots(&cold, &base, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.serve.warm_hits"));

        // Wall-clock (and hence throughput) drift stays informational.
        let mut slower = base.clone();
        slower.serve.as_mut().unwrap().warm_wall_s *= 10.0;
        slower.serve.as_mut().unwrap().cold_wall_s *= 10.0;
        let report = diff_snapshots(&base, &slower, &DiffConfig::new());
        assert!(!report.has_regression(), "{}", report.render(true));

        // A side without the axis skips it instead of failing.
        let mut absent = base.clone();
        absent.serve = None;
        let report = diff_snapshots(&base, &absent, &DiffConfig::new());
        assert!(report
            .deltas
            .iter()
            .all(|d| !d.metric.starts_with("snap.serve")));
    }

    #[test]
    fn throughput_drop_beyond_tolerance_gates() {
        let base = crate::snapshot::tests::sample("a", 4.0);
        let mut slow = base.clone();
        slow.entries[0].steps_per_sec *= 0.5;
        let report = diff_snapshots(&base, &slow, &DiffConfig::new());
        assert!(report
            .regressions()
            .any(|d| d.metric == "snap.oract.steps_per_sec"));
        // A faster candidate never gates.
        let fast = diff_snapshots(&slow, &base, &DiffConfig::new());
        assert!(!fast.has_regression());
    }

    #[test]
    fn manifest_diff_flags_event_totals_only() {
        let mut a = RunManifest::new("simulate");
        a.push_config("bench", "fft");
        a.run_events = 10;
        let mut b = a.clone();
        let same = diff_manifests(&a, &b, &DiffConfig::new());
        assert!(!same.has_regression());
        b.run_events = 11;
        b.push_config("bench2", "lu"); // hash differs: informational
        let diff = diff_manifests(&a, &b, &DiffConfig::new());
        let names: Vec<&str> = diff.regressions().map(|d| d.metric.as_str()).collect();
        assert_eq!(names, ["manifest.events_total"]);
    }

    #[test]
    fn render_marks_regressions() {
        let base = crate::snapshot::tests::sample("a", 4.0);
        let worse = crate::snapshot::tests::sample("b", 8.0);
        let table = diff_snapshots(&base, &worse, &DiffConfig::new()).render(true);
        assert!(table.contains("REGRESSION"));
        assert!(table.contains("iters_p95"));
    }

    #[test]
    fn zero_baseline_changes_are_infinite_but_finite_to_render() {
        let mut report = DiffReport::default();
        report.push(
            &DiffConfig::new(),
            "x".into(),
            0.0,
            1.0,
            0.0,
            Direction::BothWays,
        );
        assert!(report.has_regression());
        assert!(report.render(false).contains("inf"));
    }
}
