//! Wiring between experiment binaries and `simkit::telemetry`.
//!
//! A [`TelemetryCtx`] owns one telemetry output directory for a run:
//! every event goes to a `trace.jsonl` JSONL writer and, in parallel,
//! into an in-process [`MetricsRegistry`] so binaries can print a
//! counter/histogram summary table next to their phase tables. Event
//! counts are tracked at two levels — per run and per sweep cell — so
//! [`TelemetryCtx::finish`] can write a `manifest.json` whose
//! `events_total` provably matches the number of trace lines.
//!
//! ```text
//! Telemetry handle ──► CountingSink (run or cell) ──► Fanout
//!                                                       ├─► JsonlSink   (trace.jsonl)
//!                                                       └─► MetricsSink (registry)
//! ```

use crate::context::ExpOptions;
use simkit::telemetry::live::{LiveSink, LiveStats};
use simkit::telemetry::manifest::{RunManifest, MANIFEST_FILE, TRACE_FILE};
use simkit::telemetry::{
    CountingSink, FanoutSink, JsonlSink, MetricsRegistry, MetricsSink, Telemetry, TelemetrySink,
};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default trace-flush cadence (events per flush). Overridable with
/// `SIMKIT_FLUSH_EVERY` (`0` disables mid-run flushing); the default
/// keeps a tailing `tg-obs watch` at most a few hundred events stale
/// while costing one syscall per batch.
pub const DEFAULT_FLUSH_EVERY: u64 = 256;

/// The trace-flush cadence from `SIMKIT_FLUSH_EVERY`, defaulting to
/// [`DEFAULT_FLUSH_EVERY`].
fn flush_every_from_env() -> u64 {
    std::env::var("SIMKIT_FLUSH_EVERY")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_FLUSH_EVERY)
}

/// One run's telemetry outputs: a JSONL trace, an aggregated metrics
/// registry, and the bookkeeping needed to write a consistent manifest.
#[derive(Debug)]
pub struct TelemetryCtx {
    dir: PathBuf,
    /// JSONL + metrics fanout every event ends up in.
    shared: Arc<FanoutSink>,
    /// Counts run-level events (everything not attributed to a cell).
    run_counter: Arc<CountingSink>,
    registry: Arc<MetricsRegistry>,
    telemetry: Telemetry,
    /// In-process live aggregation (`--live`), when requested.
    live: Option<Arc<LiveSink>>,
    /// Next track id to hand out to a sweep cell. Track 0 is the
    /// run-level handle; cells get 1, 2, … so the profiler and the
    /// Chrome-trace export can keep concurrent cells on separate lanes.
    next_track: AtomicU64,
}

impl TelemetryCtx {
    /// Creates the output directory (and parents) and opens
    /// `trace.jsonl` inside it.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open failures.
    pub fn create(dir: impl Into<PathBuf>) -> io::Result<Self> {
        TelemetryCtx::create_with(dir, false)
    }

    /// [`TelemetryCtx::create`] with optional in-process live
    /// aggregation: a [`LiveSink`] joins the fanout, and
    /// [`TelemetryCtx::finish`] emits `telemetry.live.events` /
    /// `telemetry.live.overhead` counters reporting what it cost.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open failures.
    pub fn create_with(dir: impl Into<PathBuf>, live: bool) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let jsonl =
            Arc::new(JsonlSink::create(&dir.join(TRACE_FILE))?.flush_every(flush_every_from_env()));
        let registry = Arc::new(MetricsRegistry::new());
        let live_sink = live.then(|| Arc::new(LiveSink::new()));
        let mut sinks: Vec<Arc<dyn TelemetrySink>> = vec![
            jsonl as Arc<dyn TelemetrySink>,
            Arc::new(MetricsSink::new(Arc::clone(&registry))),
        ];
        if let Some(sink) = &live_sink {
            sinks.push(Arc::clone(sink) as Arc<dyn TelemetrySink>);
        }
        let shared = Arc::new(FanoutSink::new(sinks));
        let run_counter = Arc::new(CountingSink::new(
            Arc::clone(&shared) as Arc<dyn TelemetrySink>
        ));
        let telemetry = Telemetry::with_sink(Arc::clone(&run_counter) as Arc<dyn TelemetrySink>);
        Ok(TelemetryCtx {
            dir,
            shared,
            run_counter,
            registry,
            telemetry,
            live: live_sink,
            next_track: AtomicU64::new(1),
        })
    }

    /// Builds a context from `--telemetry=<dir>` / `SIMKIT_TELEMETRY`
    /// (with `--live` / `SIMKIT_LIVE` attaching the live aggregator).
    /// Returns `None` when telemetry is not requested; a requested
    /// directory that cannot be created is reported on stderr and also
    /// yields `None` (the simulation still runs, untraced).
    pub fn from_options(opts: &ExpOptions) -> Option<Self> {
        let dir = opts.telemetry.as_ref()?;
        match TelemetryCtx::create_with(dir, opts.live) {
            Ok(ctx) => Some(ctx),
            Err(e) => {
                eprintln!("warning: cannot open telemetry dir {}: {e}", dir.display());
                None
            }
        }
    }

    /// A snapshot of the in-process live aggregate (`None` unless the
    /// context was created with live aggregation).
    pub fn live_stats(&self) -> Option<LiveStats> {
        self.live.as_ref().map(|sink| sink.snapshot())
    }

    /// The output directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The run-level telemetry handle (events count toward
    /// `run_events` in the manifest).
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// A fresh handle for one sweep cell, with its own event counter
    /// (events count toward that cell's manifest entry, not
    /// `run_events`) and a unique track id (1, 2, …) stamped onto every
    /// event, so concurrent cells stay on separate timeline lanes.
    /// Sinks are shared, so the cell's events land in the same trace
    /// and registry.
    pub fn cell_handle(&self) -> (Telemetry, Arc<CountingSink>) {
        let counter = Arc::new(CountingSink::new(
            Arc::clone(&self.shared) as Arc<dyn TelemetrySink>
        ));
        let track = self.next_track.fetch_add(1, Ordering::Relaxed);
        let telemetry =
            Telemetry::with_sink_tracked(Arc::clone(&counter) as Arc<dyn TelemetrySink>, track);
        (telemetry, counter)
    }

    /// The aggregated counters/histograms of everything emitted so far
    /// (render with [`crate::report::metrics_report`]).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Events emitted through the run-level handle so far.
    pub fn run_events(&self) -> u64 {
        self.run_counter.count()
    }

    /// Stamps `manifest.run_events`, flushes the trace, and writes
    /// `manifest.json` into the directory. Cell entries must already be
    /// in `manifest.cells`; run-level events are counted here so the
    /// manifest's `events_total` equals the trace's line count.
    ///
    /// With live aggregation attached, the self-reported cost is
    /// emitted first — `telemetry.live.events` (events folded) and
    /// `telemetry.live.overhead` (whole µs inside the aggregator) —
    /// through the run-level handle, so the counters land in the trace
    /// *before* `run_events` is stamped and the totals still match.
    ///
    /// # Errors
    ///
    /// Propagates flush and write failures.
    pub fn finish(&self, manifest: &mut RunManifest) -> io::Result<PathBuf> {
        if let Some(live) = &self.live {
            self.telemetry
                .counter("telemetry.live.events", live.events());
            self.telemetry
                .counter("telemetry.live.overhead", live.overhead_us());
        }
        manifest.run_events = self.run_events();
        self.telemetry.flush()?;
        let path = self.dir.join(MANIFEST_FILE);
        manifest.write(&path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::telemetry::EventKind;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tg-telemetry-ctx-{tag}-{}", std::process::id()))
    }

    #[test]
    fn run_and_cell_events_are_counted_separately() {
        let dir = temp_dir("counts");
        let ctx = TelemetryCtx::create(&dir).unwrap();
        ctx.telemetry().counter("run.level", 1);
        let (cell_tel, cell_counter) = ctx.cell_handle();
        cell_tel.gauge("cell.level", 1.0);
        cell_tel.gauge("cell.level", 2.0);
        assert_eq!(ctx.run_events(), 1);
        assert_eq!(cell_counter.count(), 2);

        let mut manifest = RunManifest::new("test");
        manifest
            .cells
            .push(simkit::telemetry::manifest::CellManifest {
                label: "cell".into(),
                seconds: 0.0,
                events: cell_counter.count(),
                cached: false,
            });
        let path = ctx.finish(&mut manifest).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = RunManifest::from_json(text.trim()).unwrap();
        assert_eq!(back.total_events(), 3);

        // Trace line count matches the manifest total.
        let trace = std::fs::read_to_string(dir.join(TRACE_FILE)).unwrap();
        assert_eq!(trace.lines().count() as u64, back.total_events());
        // Both handles fed the one registry.
        assert_eq!(ctx.registry().counter("run.level"), 1);
        assert_eq!(ctx.registry().histogram("cell.level").unwrap().count, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_handles_get_distinct_track_ids() {
        let dir = temp_dir("tracks");
        let ctx = TelemetryCtx::create(&dir).unwrap();
        assert_eq!(ctx.telemetry().track(), 0);
        let (a, _) = ctx.cell_handle();
        let (b, _) = ctx.cell_handle();
        assert_eq!(a.track(), 1);
        assert_eq!(b.track(), 2);

        ctx.telemetry().counter("run.level", 1);
        a.counter("cell.level", 1);
        ctx.telemetry().flush().unwrap();
        let trace = std::fs::read_to_string(dir.join(TRACE_FILE)).unwrap();
        let mut lines = trace.lines();
        let run_line = lines.next().unwrap();
        let cell_line = lines.next().unwrap();
        // Track 0 stays off the wire; cells stamp theirs on every event.
        assert!(!run_line.contains("\"track\""));
        assert!(cell_line.contains("\"track\":1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_sink_reports_its_own_cost_in_the_trace() {
        let dir = temp_dir("live");
        let ctx = TelemetryCtx::create_with(&dir, true).unwrap();
        ctx.telemetry().counter("engine.decisions", 1);
        ctx.telemetry().gauge("thermal.max_c", 61.0);
        let stats = ctx.live_stats().expect("live aggregation attached");
        assert_eq!(stats.events, 2);
        assert_eq!(stats.counter("engine.decisions"), 1);

        let mut manifest = RunManifest::new("test");
        ctx.finish(&mut manifest).unwrap();
        // The two payload events plus the two self-report counters all
        // count toward run_events, so the manifest matches the trace.
        assert_eq!(manifest.run_events, 4);
        let trace = std::fs::read_to_string(dir.join(TRACE_FILE)).unwrap();
        assert_eq!(trace.lines().count(), 4);
        assert!(trace.contains("telemetry.live.events"));
        assert!(trace.contains("telemetry.live.overhead"));
        // Without the flag there is no aggregate and no self-report.
        let plain = TelemetryCtx::create(&dir).unwrap();
        assert!(plain.live_stats().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_options_respects_absence() {
        assert!(TelemetryCtx::from_options(&ExpOptions::tiny()).is_none());
        let dir = temp_dir("opts");
        let opts = ExpOptions::tiny().with_telemetry(&dir);
        let ctx = TelemetryCtx::from_options(&opts).expect("telemetry dir creatable");
        ctx.telemetry()
            .event(EventKind::Progress, "run.start")
            .emit();
        assert_eq!(ctx.run_events(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
