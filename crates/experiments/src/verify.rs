//! Physics-invariant and differential verification — the engine behind
//! the `tg-verify` bin.
//!
//! Three layers, all built on [`simkit::check`]:
//!
//! 1. **Physics/policy oracles** — properties that must hold for *every*
//!    configuration, not just the paper's figure setups: regulator
//!    sizing (`required_active` minimal + sufficient), Eqn-1 loss
//!    consistency, η ≤ η_peak with equality only at the peak-load point,
//!    policy active-set exactness, the VT policies' per-domain all-on
//!    emergency overlay, steady-state thermal energy balance
//!    (heat in ≈ heat out), PDN KCL residual bounds, PDN linearity, and
//!    the closed-loop governor control properties (setpoint tracking,
//!    bounded oscillation, anti-windup, gain-adaptation monotonicity)
//!    exercised against a first-order reference plant.
//! 2. **Differential checks** — CG vs Gauss–Seidel agreement on the same
//!    SPD system, direct LDLᵀ vs CG and multigrid-CG vs Jacobi-CG
//!    agreement on random SPD grids and on the real thermal / PDN
//!    matrices, and serial vs parallel sweep bit-equality (the cache is
//!    cleared between legs so both actually recompute).
//! 3. **Golden-run comparison** — a committed fixture of tiny-sweep
//!    records, compared field-by-field at relative tolerance; regenerate
//!    with `tg-verify --bless` after an intentional physics change.
//!
//! Failures carry a fully shrunk [`simkit::check::Counterexample`]
//! (base seed + shrunk input), so any red run reproduces offline.

use crate::context::ExpOptions;
use crate::sweep::{self, SweepRecord};
use floorplan::reference::power8_like;
use simkit::check::{self, CheckConfig, CheckOutcome, Checker};
use simkit::linalg::vec_ops;
use simkit::linalg::TripletBuilder;
use simkit::units::{Amps, Volts, Watts};
use std::path::{Path, PathBuf};
use thermal::{PowerMap, ThermalConfig, ThermalModel};
use thermogater::{
    actuation_level, adaptive_gain, select_gating, GovernorConfig, IntegralController,
    PolicyInputs, PolicyKind,
};
use vreg::{loss, EfficiencyCurve, GatingState, RegulatorBank, RegulatorDesign};
use workload::Benchmark;

/// Default corpus directory: `tests/corpus/` at the repository root.
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Default golden fixture: `crates/experiments/tests/fixtures/golden_tiny.csv`.
pub fn default_golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_tiny.csv")
}

/// Configuration of a `tg-verify` run.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Base seed for every property's per-case RNG streams.
    pub seed: u64,
    /// Random cases per cheap (vreg/policy) oracle; the solver-heavy
    /// oracles use a small fixed fraction of this.
    pub cases: usize,
    /// Reduced-depth mode for CI smoke runs.
    pub fast: bool,
    /// `.case` regression corpus replayed before every random phase.
    pub corpus: Option<PathBuf>,
    /// Where to persist newly shrunk counterexamples (`None` = print
    /// only).
    pub save_dir: Option<PathBuf>,
    /// Thread count of the parallel sweep leg (≥ 2).
    pub threads: usize,
    /// Golden fixture path.
    pub golden: PathBuf,
    /// Regenerate the golden fixture instead of comparing against it.
    pub bless: bool,
    /// Skip the (slow) sweep differential + golden comparison.
    pub skip_sweep: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            seed: 0x7467_2d76_6572_6966, // "tg-verif"
            cases: 48,
            fast: false,
            corpus: Some(default_corpus_dir()),
            save_dir: None,
            threads: 2,
            golden: default_golden_path(),
            bless: false,
            skip_sweep: false,
        }
    }
}

/// Outcome of one named check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Check name (`vreg.required_active`, `diff.golden`, …).
    pub name: String,
    /// Random cases evaluated (0 for non-property checks).
    pub cases: usize,
    /// Corpus cases replayed.
    pub corpus_cases: usize,
    /// `None` when the check passed; the rendered counterexample or
    /// mismatch description otherwise.
    pub failure: Option<String>,
    /// Informational note shown on passing checks (e.g. "blessed").
    pub note: Option<String>,
}

impl CheckReport {
    /// Whether the check passed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// A full verification run.
#[derive(Debug, Clone)]
pub struct VerifyRun {
    /// Per-check outcomes, in execution order.
    pub reports: Vec<CheckReport>,
}

impl VerifyRun {
    /// Whether every check passed.
    pub fn ok(&self) -> bool {
        self.reports.iter().all(CheckReport::passed)
    }

    /// Deterministic plain-text report (no timestamps, no paths that
    /// vary run-to-run) — two runs with the same options must render
    /// byte-identically.
    pub fn render(&self, opts: &VerifyOptions) -> String {
        let mut out = String::new();
        out.push_str("tg-verify report\n");
        out.push_str(&format!(
            "seed: {:#018x}  cases: {}  mode: {}  sweep: {}\n\n",
            opts.seed,
            opts.cases,
            if opts.fast { "fast" } else { "full" },
            if opts.skip_sweep { "skipped" } else { "on" },
        ));
        for r in &self.reports {
            match &r.failure {
                None => {
                    let note = r
                        .note
                        .as_deref()
                        .map(|n| format!("  [{n}]"))
                        .unwrap_or_default();
                    out.push_str(&format!(
                        "ok   {:<34} ({} cases + {} corpus){}\n",
                        r.name, r.cases, r.corpus_cases, note
                    ));
                }
                Some(detail) => {
                    out.push_str(&format!("FAIL {}\n", r.name));
                    for line in detail.lines() {
                        out.push_str(&format!("     {line}\n"));
                    }
                }
            }
        }
        let passed = self.reports.iter().filter(|r| r.passed()).count();
        out.push_str(&format!(
            "\nsummary: {passed}/{} checks passed\n",
            self.reports.len()
        ));
        out
    }
}

fn checker(opts: &VerifyOptions, cases: usize) -> Checker {
    Checker::new(CheckConfig {
        seed: opts.seed,
        cases,
        max_shrink_evals: 200,
        corpus: opts.corpus.clone(),
    })
}

fn to_report(name: &str, cases: usize, outcome: CheckOutcome, opts: &VerifyOptions) -> CheckReport {
    match outcome {
        CheckOutcome::Pass {
            cases,
            corpus_cases,
        } => CheckReport {
            name: name.to_string(),
            cases,
            corpus_cases,
            failure: None,
            note: None,
        },
        CheckOutcome::Fail(cex) => {
            let mut detail = cex.render();
            if let Some(dir) = &opts.save_dir {
                match cex.save_into(dir) {
                    Ok(path) => detail.push_str(&format!("\nsaved to {}", path.display())),
                    Err(e) => detail.push_str(&format!("\n(corpus save failed: {e})")),
                }
            }
            CheckReport {
                name: name.to_string(),
                cases,
                corpus_cases: 0,
                failure: Some(detail),
                note: None,
            }
        }
    }
}

fn err_str(e: simkit::Error) -> String {
    e.to_string()
}

// ---------------------------------------------------------------------------
// Physics / policy oracles
// ---------------------------------------------------------------------------

/// `required_active` is minimal and sufficient for the demand.
pub fn oracle_required_active(opts: &VerifyOptions) -> CheckReport {
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    let peak = bank.design().peak_current().get();
    let gen = check::f64_in(0.0, 20.0);
    let outcome = checker(opts, opts.cases).run("vreg.required_active", &gen, |&demand| {
        let n = bank.required_active(Amps::new(demand));
        check::ensure((1..=9).contains(&n), || format!("n = {n} outside 1..=9"))?;
        if demand > 0.0 && n < 9 {
            check::ensure(demand / n as f64 <= peak + 1e-12, || {
                format!(
                    "insufficient: {n} regulators carry {} A each",
                    demand / n as f64
                )
            })?;
        }
        if n > 1 {
            check::ensure(demand / (n as f64 - 1.0) > peak - 1e-12, || {
                format!("not minimal: {} regulators would already suffice", n - 1)
            })?;
        }
        Ok(())
    });
    to_report("vreg.required_active", opts.cases, outcome, opts)
}

/// Eqn 1 consistency: the bank's reported per-regulator and total losses
/// equal `P_out·(1/η − 1)` computed from its own reported efficiency.
pub fn oracle_loss_eqn1(opts: &VerifyOptions) -> CheckReport {
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    let vdd = Volts::new(1.0);
    let gen = (check::f64_in(1e-3, 25.0), check::usize_in(1, 9));
    let outcome = checker(opts, opts.cases).run("vreg.loss_eqn1", &gen, |&(demand, n_on)| {
        let share = bank
            .per_regulator_current(Amps::new(demand), n_on)
            .map_err(err_str)?;
        let eta = bank.efficiency(Amps::new(demand), n_on).map_err(err_str)?;
        let per = bank
            .per_regulator_loss(Amps::new(demand), n_on, vdd)
            .map_err(err_str)?;
        let total = bank
            .total_loss(Amps::new(demand), n_on, vdd)
            .map_err(err_str)?;
        let p_out = Watts::new(vdd.get() * share.get());
        let expect = loss::conversion_loss(p_out, eta);
        check::ensure(
            (per.get() - expect.get()).abs() <= 1e-9 * expect.get().max(1e-9),
            || format!("per-regulator loss {per:?} != Eqn-1 value {expect:?}"),
        )?;
        check::ensure(
            (total.get() - n_on as f64 * per.get()).abs() <= 1e-9 * total.get().max(1e-9),
            || format!("total loss {total:?} != n_on × per-regulator loss"),
        )?;
        let p_in = loss::input_power(p_out, eta);
        check::ensure(
            (p_in.get() * eta - p_out.get()).abs() <= 1e-9 * p_out.get().max(1e-9),
            || "P_in·η != P_out".to_string(),
        )
    });
    to_report("vreg.loss_eqn1", opts.cases, outcome, opts)
}

/// η never exceeds η_peak, with equality only at the peak-load point.
pub fn oracle_eta_peak(opts: &VerifyOptions) -> CheckReport {
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    let peak_eta = bank.design().peak_efficiency();
    let peak_i = bank.design().peak_current().get();
    let gen = (check::f64_in(1e-3, 25.0), check::usize_in(1, 9));
    let outcome = checker(opts, opts.cases).run("vreg.eta_peak", &gen, |&(demand, n_on)| {
        let share = bank
            .per_regulator_current(Amps::new(demand), n_on)
            .map_err(err_str)?;
        let eta = bank.efficiency(Amps::new(demand), n_on).map_err(err_str)?;
        check::ensure(eta <= peak_eta + 1e-12, || {
            format!("η = {eta} exceeds η_peak = {peak_eta}")
        })?;
        if eta > peak_eta - 1e-12 {
            check::ensure((share.get() - peak_i).abs() <= 1e-6, || {
                format!(
                    "η hit the peak at share {} A, but the peak-load point is {peak_i} A",
                    share.get()
                )
            })?;
        }
        Ok(())
    });
    to_report("vreg.eta_peak", opts.cases, outcome, opts)
}

/// The bank's efficiency agrees point-for-point with a reference curve.
///
/// Exposed with an explicit `bank`/`reference` so the fault-injection
/// test can demonstrate that a 1 %-perturbed efficiency curve is caught:
/// the reference is rebuilt from the *shape* the design claims
/// ([`EfficiencyCurve::scaled_reference`] through the design's peak), so
/// any deviation of the actual curve from that shape fails the oracle.
pub fn curve_consistency_outcome(
    bank: &RegulatorBank,
    reference: &EfficiencyCurve,
    checker: &Checker,
) -> CheckOutcome {
    let gen = (check::f64_in(1e-3, 25.0), check::usize_in(1, bank.total()));
    checker.run("vreg.curve_consistency", &gen, |&(demand, n_on)| {
        let share = bank
            .per_regulator_current(Amps::new(demand), n_on)
            .map_err(err_str)?;
        let eta = bank.efficiency(Amps::new(demand), n_on).map_err(err_str)?;
        let expected = reference.eval(share);
        check::ensure((eta - expected).abs() <= 1e-9 * expected.max(1e-3), || {
            format!(
                "η({} A) = {eta}, reference shape says {expected}",
                share.get()
            )
        })
    })
}

/// [`curve_consistency_outcome`] for the stock FIVR design.
pub fn oracle_curve_consistency(opts: &VerifyOptions) -> CheckReport {
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    let reference = EfficiencyCurve::scaled_reference(
        bank.design().peak_efficiency(),
        bank.design().peak_current(),
    )
    .expect("reference shape is valid");
    let outcome = curve_consistency_outcome(&bank, &reference, &checker(opts, opts.cases));
    to_report("vreg.curve_consistency", opts.cases, outcome, opts)
}

/// Gating policies activate exactly `n_on` regulators per domain
/// (clamped to the domain's VR count) absent emergencies.
pub fn oracle_policy_active_set(opts: &VerifyOptions) -> CheckReport {
    let chip = power8_like();
    let n_vrs = chip.vr_sites().len();
    let gen = (
        check::vec_of(check::f64_in(20.0, 120.0), n_vrs, n_vrs),
        check::usize_in(1, 9),
        check::usize_in(1, 3),
    );
    let outcome =
        checker(opts, opts.cases).run("policy.active_set", &gen, |(temps, n_on_core, n_on_l3)| {
            let n_on: Vec<usize> = chip
                .domains()
                .iter()
                .map(|d| {
                    if d.vr_count() == 9 {
                        *n_on_core
                    } else {
                        *n_on_l3
                    }
                })
                .collect();
            let noise = vec![0.0; n_vrs];
            let emergency = vec![false; chip.domains().len()];
            let inputs = PolicyInputs {
                chip: &chip,
                n_on: &n_on,
                vr_temp_rank: temps,
                vr_noise_score: &noise,
                emergency: &emergency,
            };
            for kind in [
                PolicyKind::Naive,
                PolicyKind::OracT,
                PolicyKind::OracV,
                PolicyKind::PracT,
            ] {
                let state = select_gating(kind, &inputs).map_err(err_str)?;
                let mut sum = 0;
                for domain in chip.domains() {
                    let want = n_on[domain.id().0].min(domain.vr_count());
                    let got = state.active_among(domain.vrs());
                    check::ensure(got == want, || {
                        format!(
                            "{kind:?}: domain D{} has {got} active, wanted {want}",
                            domain.id().0
                        )
                    })?;
                    sum += got;
                }
                check::ensure(state.active_count() == sum, || {
                    format!(
                        "{kind:?}: {} regulators on chip-wide, but domains account for {sum}",
                        state.active_count()
                    )
                })?;
            }
            Ok(())
        });
    to_report("policy.active_set", opts.cases, outcome, opts)
}

/// The VT policies force per-domain all-on exactly on flagged domains;
/// non-reactive policies ignore the flags.
pub fn oracle_policy_emergency(opts: &VerifyOptions) -> CheckReport {
    let chip = power8_like();
    let n_vrs = chip.vr_sites().len();
    let n_domains = chip.domains().len();
    let gen = (
        check::vec_of(check::f64_in(20.0, 120.0), n_vrs, n_vrs),
        check::vec_of(check::bool_any(), n_domains, n_domains),
        check::usize_in(1, 9),
    );
    let outcome = checker(opts, opts.cases).run(
        "policy.emergency_all_on",
        &gen,
        |(temps, flags, n_on_core)| {
            let n_on: Vec<usize> = chip
                .domains()
                .iter()
                .map(|d| (*n_on_core).min(d.vr_count()))
                .collect();
            let noise = vec![0.0; n_vrs];
            let inputs = PolicyInputs {
                chip: &chip,
                n_on: &n_on,
                vr_temp_rank: temps,
                vr_noise_score: &noise,
                emergency: flags,
            };
            for kind in [PolicyKind::OracVT, PolicyKind::PracVT] {
                let state = select_gating(kind, &inputs).map_err(err_str)?;
                for domain in chip.domains() {
                    let d = domain.id().0;
                    let got = state.active_among(domain.vrs());
                    let want = if flags[d] {
                        domain.vr_count()
                    } else {
                        n_on[d].min(domain.vr_count())
                    };
                    check::ensure(got == want, || {
                        format!(
                            "{kind:?}: domain D{d} (emergency={}) has {got} active, wanted {want}",
                            flags[d]
                        )
                    })?;
                }
            }
            // A non-reactive policy must ignore the flags entirely.
            let state = select_gating(PolicyKind::OracT, &inputs).map_err(err_str)?;
            for domain in chip.domains() {
                let d = domain.id().0;
                let got = state.active_among(domain.vrs());
                let want = n_on[d].min(domain.vr_count());
                check::ensure(got == want, || {
                    format!("OracT reacted to an emergency flag on domain D{d}")
                })?;
            }
            Ok(())
        },
    );
    to_report("policy.emergency_all_on", opts.cases, outcome, opts)
}

/// Steady-state energy balance: convective outflow equals total injected
/// power, and the temperature field solves the conductance system.
pub fn oracle_thermal_energy_balance(opts: &VerifyOptions) -> CheckReport {
    let cases = if opts.fast { 2 } else { 4 };
    let chip = power8_like();
    let model = ThermalModel::new(
        &chip,
        ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::coarse()
        },
    );
    let n_blocks = chip.blocks().len();
    let gen = check::vec_of(check::f64_in(0.0, 8.0), n_blocks, n_blocks);
    let outcome = checker(opts, cases).run("thermal.energy_balance", &gen, |powers| {
        let mut pm = PowerMap::new(&model);
        for (block, &p) in chip.blocks().iter().zip(powers) {
            pm.add_block(block.id(), Watts::new(p)).map_err(err_str)?;
        }
        let state = model.steady_state(&pm).map_err(err_str)?;
        let outflow = model.heat_outflow(&state).get();
        let total = pm.total().get();
        check::ensure((outflow - total).abs() <= 1e-5 * total.max(1e-3), || {
            format!("heat out {outflow} W vs heat in {total} W")
        })?;
        let residual = model.balance_residual(&pm, &state);
        check::ensure(residual <= 1e-6, || {
            format!("steady-state balance residual {residual:e} above 1e-6")
        })
    });
    to_report("thermal.energy_balance", cases, outcome, opts)
}

/// Every PDN domain solve satisfies KCL to solver tolerance.
pub fn oracle_pdn_kcl(opts: &VerifyOptions) -> CheckReport {
    use pdn::{PdnConfig, PdnModel};
    let cases = if opts.fast { 2 } else { 4 };
    let chip = power8_like();
    let model = PdnModel::new(&chip, PdnConfig::reference());
    let gating = GatingState::all_on(chip.vr_sites().len());
    let n_blocks = chip.blocks().len();
    let gen = check::vec_of(check::f64_in(0.0, 4.0), n_blocks, n_blocks);
    let outcome = checker(opts, cases).run("pdn.kcl", &gen, |powers| {
        let watts: Vec<Watts> = powers.iter().map(|&p| Watts::new(p)).collect();
        let residual = model.kcl_residual(&gating, &watts).map_err(err_str)?;
        check::ensure(residual <= 1e-6, || {
            format!("KCL residual {residual:e} above 1e-6")
        })
    });
    to_report("pdn.kcl", cases, outcome, opts)
}

/// The PDN is linear: scaling every load scales every domain's worst
/// drop by the same factor.
pub fn oracle_pdn_linearity(opts: &VerifyOptions) -> CheckReport {
    use pdn::{PdnConfig, PdnModel};
    let cases = if opts.fast { 2 } else { 3 };
    let chip = power8_like();
    let model = PdnModel::new(&chip, PdnConfig::reference());
    let gating = GatingState::all_on(chip.vr_sites().len());
    let n_blocks = chip.blocks().len();
    let gen = (
        check::vec_of(check::f64_in(0.0, 4.0), n_blocks, n_blocks),
        check::f64_in(0.25, 4.0),
    );
    let outcome = checker(opts, cases).run("pdn.linearity", &gen, |(powers, scale)| {
        let to_watts = |v: &[f64]| v.iter().map(|&p| Watts::new(p)).collect::<Vec<_>>();
        let scaled: Vec<f64> = powers.iter().map(|&p| p * scale).collect();
        let base = model.ir_drop(&gating, &to_watts(powers)).map_err(err_str)?;
        let big = model
            .ir_drop(&gating, &to_watts(&scaled))
            .map_err(err_str)?;
        for d in 0..chip.domains().len() {
            let id = floorplan::DomainId(d);
            let lhs = big.domain_volts(id);
            let rhs = base.domain_volts(id) * scale;
            check::ensure((lhs - rhs).abs() < 1e-6 * scale.max(1.0), || {
                format!("homogeneity broke on domain D{d}: {lhs} vs {rhs}")
            })?;
        }
        Ok(())
    });
    to_report("pdn.linearity", cases, outcome, opts)
}

// ---------------------------------------------------------------------------
// Closed-loop governor control oracles
// ---------------------------------------------------------------------------

/// A first-order reference plant for exercising the governor's control
/// law in isolation: `y ← y + lag·(ambient + sensitivity·u − y)`, with
/// the controller measuring `y` through a `delay`-step line.
///
/// This is the same plant family the engine's thermal/power loops
/// approximate at the decision granularity, so properties proven here
/// (tracking, bounded oscillation, anti-windup) carry the control-law
/// burden while the engine tests cover the actuation plumbing.
#[derive(Debug, Clone, Copy)]
pub struct PlantParams {
    /// Steady-state plant response per unit of control output.
    pub sensitivity: f64,
    /// Plant output at `u = 0`.
    pub ambient: f64,
    /// First-order response fraction per step, in `(0, 1]`.
    pub lag: f64,
    /// Measurement delay in steps (0 = the controller sees the current
    /// output).
    pub delay: usize,
}

/// One closed-loop simulation against the reference plant.
#[derive(Debug, Clone)]
pub struct PlantTrace {
    /// True plant output per step.
    pub outputs: Vec<f64>,
    /// Control error `setpoint − output` per step (true, not delayed).
    pub errors: Vec<f64>,
    /// Control output `u` per step.
    pub controls: Vec<f64>,
}

/// Runs an [`IntegralController`] against the reference plant for
/// `steps` steps and returns the closed-loop trace.
pub fn run_plant(
    cfg: &GovernorConfig,
    plant: &PlantParams,
    setpoint: f64,
    steps: usize,
) -> PlantTrace {
    let mut ctl = IntegralController::new(*cfg);
    let mut y = plant.ambient;
    let mut history: Vec<f64> = Vec::with_capacity(steps);
    let mut trace = PlantTrace {
        outputs: Vec::with_capacity(steps),
        errors: Vec::with_capacity(steps),
        controls: Vec::with_capacity(steps),
    };
    for k in 0..steps {
        let measured = if k > plant.delay {
            history[k - 1 - plant.delay]
        } else {
            plant.ambient
        };
        let u = ctl.step(setpoint, measured);
        y += plant.lag * (plant.ambient + plant.sensitivity * u - y);
        history.push(y);
        trace.outputs.push(y);
        trace.errors.push(setpoint - y);
        trace.controls.push(u);
    }
    trace
}

/// Steps after which the tracking/oscillation oracles treat the loop as
/// settled.
const PLANT_SETTLE_STEPS: usize = 450;

/// Total steps the tracking/oscillation oracles simulate.
const PLANT_TOTAL_STEPS: usize = 600;

/// Relative tracking tolerance after settling (fraction of sensitivity).
const PLANT_TRACK_FRACTION: f64 = 0.02;

fn plant_gen() -> impl check::Gen<Value = (f64, f64, f64)> {
    // (sensitivity, setpoint fraction of the reachable span, lag).
    // A fraction of 0 puts the setpoint exactly at ambient — a corpus
    // boundary — and 0.85 keeps it comfortably reachable (u* ≤ 0.85).
    (
        check::f64_in(2.0, 30.0),
        check::f64_in(0.0, 0.85),
        check::f64_in(0.3, 1.0),
    )
}

fn plant_tolerance(sensitivity: f64) -> f64 {
    PLANT_TRACK_FRACTION * sensitivity.max(1.0)
}

/// After settling, the governor holds the plant within tolerance of any
/// reachable setpoint.
pub fn oracle_govern_tracking(opts: &VerifyOptions) -> CheckReport {
    let gen = plant_gen();
    let outcome = checker(opts, opts.cases).run("govern.tracking", &gen, |&(sens, frac, lag)| {
        let plant = PlantParams {
            sensitivity: sens,
            ambient: 45.0,
            lag,
            delay: 0,
        };
        let setpoint = plant.ambient + frac * sens;
        let trace = run_plant(
            &GovernorConfig::standard(),
            &plant,
            setpoint,
            PLANT_TOTAL_STEPS,
        );
        let tol = plant_tolerance(sens);
        for (k, e) in trace.errors.iter().enumerate().skip(PLANT_SETTLE_STEPS) {
            check::ensure(e.is_finite(), || format!("non-finite error at step {k}"))?;
            check::ensure(e.abs() <= tol, || {
                format!("step {k}: |error| {} above tolerance {tol}", e.abs())
            })?;
        }
        Ok(())
    });
    to_report("govern.tracking", opts.cases, outcome, opts)
}

/// No sustained oscillation: once past the transient, the control error
/// crosses zero with significant amplitude only a bounded number of
/// times.
pub fn oracle_govern_no_oscillation(opts: &VerifyOptions) -> CheckReport {
    let gen = plant_gen();
    let outcome =
        checker(opts, opts.cases).run("govern.no_oscillation", &gen, |&(sens, frac, lag)| {
            let plant = PlantParams {
                sensitivity: sens,
                ambient: 45.0,
                lag,
                delay: 0,
            };
            let setpoint = plant.ambient + frac * sens;
            let trace = run_plant(
                &GovernorConfig::standard(),
                &plant,
                setpoint,
                PLANT_TOTAL_STEPS,
            );
            // Count sign changes of the error among post-transient steps
            // whose amplitude exceeds half the tracking band; a healthy
            // loop overshoots at most a few times, a limit cycle flips
            // every few steps.
            let band = 0.5 * plant_tolerance(sens);
            let mut flips = 0usize;
            let mut prev: Option<f64> = None;
            for &e in &trace.errors[PLANT_TOTAL_STEPS / 4..] {
                if e.abs() > band {
                    if let Some(p) = prev {
                        if (e > 0.0) != (p > 0.0) {
                            flips += 1;
                        }
                    }
                    prev = Some(e);
                }
            }
            check::ensure(flips <= 8, || {
                format!("{flips} significant error sign changes in steady state")
            })
        });
    to_report("govern.no_oscillation", opts.cases, outcome, opts)
}

/// Anti-windup: the integrator (which *is* the control output) never
/// leaves `[0, 1]` — even against unreachable setpoints in either
/// direction, with any gain — and the actuation it maps to stays within
/// the domain's regulator count.
pub fn oracle_govern_anti_windup(opts: &VerifyOptions) -> CheckReport {
    // (sensitivity, setpoint offset from ambient, base gain, domain VRs).
    // Offsets beyond ±sensitivity are unreachable; base gain 0 is the
    // frozen controller; 1 VR is the single-domain-chip boundary.
    let gen = (
        check::f64_in(0.0, 30.0),
        check::f64_in(-50.0, 50.0),
        check::f64_in(0.0, 0.2),
        check::usize_in(1, 12),
    );
    let outcome = checker(opts, opts.cases).run(
        "govern.anti_windup",
        &gen,
        |&(sens, offset, base_gain, total)| {
            let cfg = GovernorConfig {
                base_gain,
                ..GovernorConfig::standard()
            };
            let plant = PlantParams {
                sensitivity: sens,
                ambient: 45.0,
                lag: 0.5,
                delay: 0,
            };
            let trace = run_plant(&cfg, &plant, plant.ambient + offset, 300);
            let floor = 3.min(total);
            for (k, (&u, &y)) in trace.controls.iter().zip(&trace.outputs).enumerate() {
                check::ensure(u.is_finite() && (0.0..=1.0).contains(&u), || {
                    format!("step {k}: integrator wound up to u = {u}")
                })?;
                check::ensure(y.is_finite(), || {
                    format!("step {k}: non-finite plant output")
                })?;
                let level = actuation_level(u, floor, total);
                check::ensure(level >= 1 && level <= total, || {
                    format!("step {k}: actuation {level} outside 1..={total}")
                })?;
                if base_gain == 0.0 {
                    check::ensure(u == 0.0, || {
                        format!("step {k}: frozen controller moved to u = {u}")
                    })?;
                }
            }
            Ok(())
        },
    );
    to_report("govern.anti_windup", opts.cases, outcome, opts)
}

/// Gain-adaptation monotonicity for an arbitrary adaptation law.
///
/// Exposed with an explicit `adapt` closure so the fault-injection test
/// can demonstrate that a perturbed adaptation law (e.g. a 10 %
/// sensitivity-dependent wobble) is caught: for any `s` and `ds ≥ 0` the
/// gain at `s + ds` must not exceed the gain at `s` — a plant that
/// responds more strongly must never be driven harder.
pub fn gain_monotonicity_outcome<F: Fn(f64) -> f64>(adapt: F, checker: &Checker) -> CheckOutcome {
    let gen = (check::f64_in(0.0, 50.0), check::f64_in(0.0, 10.0));
    checker.run("govern.gain_monotone", &gen, |&(s, ds)| {
        let lo = adapt(s);
        let hi = adapt(s + ds);
        check::ensure(lo.is_finite() && lo >= 0.0, || {
            format!("gain({s}) = {lo} not a finite non-negative value")
        })?;
        check::ensure(hi.is_finite() && hi >= 0.0, || {
            format!("gain({}) = {hi} not a finite non-negative value", s + ds)
        })?;
        check::ensure(hi <= lo + 1e-12, || {
            format!(
                "gain rose with sensitivity: gain({s}) = {lo} < gain({}) = {hi}",
                s + ds
            )
        })
    })
}

/// [`gain_monotonicity_outcome`] for the stock adaptation law.
pub fn oracle_govern_gain_monotone(opts: &VerifyOptions) -> CheckReport {
    let cfg = GovernorConfig::standard();
    let outcome = gain_monotonicity_outcome(|s| adaptive_gain(&cfg, s), &checker(opts, opts.cases));
    to_report("govern.gain_monotone", opts.cases, outcome, opts)
}

// ---------------------------------------------------------------------------
// Differential checks
// ---------------------------------------------------------------------------

/// CG and Gauss–Seidel agree on the same SPD grid system.
pub fn diff_cg_vs_gs(opts: &VerifyOptions) -> CheckReport {
    let cases = if opts.fast { 2 } else { 4 };
    let n = 16usize; // 16×16 grid Laplacian, 256 unknowns
    let nn = n * n;
    let gen = (
        check::vec_of(check::f64_in(0.1, 2.0), nn, nn),
        check::vec_of(check::f64_in(0.0, 1.0), nn, nn),
    );
    let outcome = checker(opts, cases).run("diff.cg_vs_gs", &gen, |(loading, b)| {
        let mut builder = TripletBuilder::new(nn, nn);
        for j in 0..n {
            for i in 0..n {
                let cell = j * n + i;
                let mut degree = 0.0;
                for (di, dj) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                    let (ni, nj) = (i as i64 + di, j as i64 + dj);
                    if (0..n as i64).contains(&ni) && (0..n as i64).contains(&nj) {
                        builder.add(cell, (nj * n as i64 + ni) as usize, -1.0);
                        degree += 1.0;
                    }
                }
                // Positive diagonal loading keeps the system SPD.
                builder.add(cell, cell, degree + loading[cell]);
            }
        }
        let a = builder.build();
        let x_cg = a.solve_cg(b, None, 1e-11, 20 * nn).map_err(err_str)?;
        let mut x_gs = vec![0.0; nn];
        a.solve_gauss_seidel(b, &mut x_gs, 1.0, 1e-12, 50_000)
            .map_err(err_str)?;
        let diff = vec_ops::max_abs_diff(&x_cg, &x_gs);
        let scale = x_cg.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        check::ensure(diff <= 1e-6 * scale, || {
            format!("CG and Gauss–Seidel solutions differ by {diff:e}")
        })?;
        for (tag, x) in [("cg", &x_cg), ("gs", &x_gs)] {
            let r = a.relative_residual(b, x);
            check::ensure(r <= 1e-7, || format!("{tag} residual {r:e} above 1e-7"))?;
        }
        Ok(())
    });
    to_report("diff.cg_vs_gs", cases, outcome, opts)
}

/// Solves `A·x = b` with both the tightly-converged CG path and the
/// direct LDLᵀ factorization and demands max-abs agreement within
/// `1e-8 × scale`.
fn direct_matches_cg(tag: &str, a: &simkit::linalg::CsrMatrix, b: &[f64]) -> Result<(), String> {
    use simkit::linalg::{LdltFactor, LdltWorkspace};
    let n = a.rows();
    let x_cg = a
        .solve_cg(b, None, 1e-12, 40 * n.max(1))
        .map_err(|e| format!("{tag}: CG failed: {e}"))?;
    let factor = LdltFactor::new(a).map_err(|e| format!("{tag}: factorization failed: {e}"))?;
    let mut ws = LdltWorkspace::new();
    let mut x = vec![0.0; n];
    factor
        .solve_into(b, &mut x, &mut ws)
        .map_err(|e| format!("{tag}: direct solve failed: {e}"))?;
    let diff = vec_ops::max_abs_diff(&x_cg, &x);
    let scale = x_cg.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
    if diff > 1e-8 * scale {
        return Err(format!(
            "{tag}: direct and CG solutions differ by {diff:e} (scale {scale:e})"
        ));
    }
    Ok(())
}

/// The direct LDLᵀ backend agrees with CG on the *real* model matrices:
/// the thermal conductance system and every PDN domain grid under a
/// partially gated configuration.
fn direct_vs_cg_real_matrices() -> Result<(), String> {
    let chip = power8_like();
    let model = ThermalModel::new(
        &chip,
        ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::coarse()
        },
    );
    let n = model.node_count();
    // A deterministic, spatially varying heat load.
    let b: Vec<f64> = (0..n).map(|i| 0.25 + 0.5 * (i % 7) as f64).collect();
    direct_matches_cg("thermal conductance", model.conductance_matrix(), &b)?;

    let pdn_model = pdn::PdnModel::new(&chip, pdn::PdnConfig::reference());
    let mut gating = GatingState::all_on(chip.vr_sites().len());
    for &v in chip.domains()[0].vrs().iter().skip(3) {
        gating.set(v, false).map_err(err_str)?;
    }
    for domain in chip.domains() {
        let a = pdn_model
            .domain_system(domain.id(), &gating)
            .map_err(err_str)?;
        let b: Vec<f64> = (0..a.rows()).map(|i| 0.3 * (i % 5) as f64).collect();
        direct_matches_cg(&format!("pdn domain D{}", domain.id().0), &a, &b)?;
    }
    Ok(())
}

/// The direct LDLᵀ solver matches CG on random SPD grid systems and on
/// the real thermal / PDN matrices. The corpus pins the boundary shapes:
/// a 1×1 system, a singleton pure-diagonal domain, and a grid with a
/// disconnected node.
pub fn diff_direct_vs_cg(opts: &VerifyOptions) -> CheckReport {
    let cases = if opts.fast { 3 } else { 8 };
    if let Err(detail) = direct_vs_cg_real_matrices() {
        return CheckReport {
            name: "diff.direct_vs_cg".to_string(),
            cases: 0,
            corpus_cases: 0,
            failure: Some(detail),
            note: None,
        };
    }
    let gen = (
        check::usize_in(1, 12),
        check::vec_of(check::f64_in(0.05, 3.0), 1, 16),
        check::vec_of(check::f64_in(-1.0, 1.0), 1, 16),
        check::bool_any(),
    );
    let outcome = checker(opts, cases).run(
        "diff.direct_vs_cg",
        &gen,
        |(side, loading, rhs, disconnect)| {
            let side = *side;
            let n = side * side;
            // A side×side grid Laplacian with positive diagonal loading;
            // `disconnect` isolates the last node (pure diagonal, no
            // couplings) to exercise effectively-singleton structure.
            let isolated = if *disconnect && n > 1 {
                Some(n - 1)
            } else {
                None
            };
            let mut builder = TripletBuilder::new(n, n);
            for j in 0..side {
                for i in 0..side {
                    let cell = j * side + i;
                    let mut degree = 0.0;
                    if Some(cell) != isolated {
                        for (di, dj) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                            let (ni, nj) = (i as i64 + di, j as i64 + dj);
                            if (0..side as i64).contains(&ni) && (0..side as i64).contains(&nj) {
                                let other = (nj * side as i64 + ni) as usize;
                                if Some(other) != isolated {
                                    builder.add(cell, other, -1.0);
                                    degree += 1.0;
                                }
                            }
                        }
                    }
                    builder.add(cell, cell, degree + loading[cell % loading.len()]);
                }
            }
            let a = builder.build();
            let b: Vec<f64> = (0..n).map(|c| rhs[c % rhs.len()]).collect();
            direct_matches_cg("random grid", &a, &b)
        },
    );
    to_report("diff.direct_vs_cg", cases, outcome, opts)
}

/// Solves `A x = b` with multigrid-preconditioned CG and with plain
/// Jacobi-CG and insists the solutions agree to `1e-8` relative — a
/// wrong transfer operator or Galerkin product still converges
/// somewhere, just not to the same place.
fn mgcg_matches_cg(
    tag: &str,
    a: &simkit::linalg::CsrMatrix,
    geometry: simkit::linalg::multigrid::GridGeometry,
    b: &[f64],
) -> Result<(), String> {
    use simkit::linalg::{multigrid::MultigridPreconditioner, CgWorkspace, Preconditioner};
    let n = a.rows();
    let x_cg = a
        .solve_cg(b, None, 1e-12, 40 * n.max(1))
        .map_err(|e| format!("{tag}: CG failed: {e}"))?;
    let mg = MultigridPreconditioner::new(a, geometry)
        .map_err(|e| format!("{tag}: hierarchy setup failed: {e}"))?;
    debug_assert_eq!(mg.dim(), n);
    let mut x = vec![0.0; n];
    let mut ws = CgWorkspace::new();
    a.solve_cg_with(b, &mut x, &mg, &mut ws, 1e-12, 40 * n.max(1))
        .map_err(|e| format!("{tag}: mgcg solve failed: {e}"))?;
    let diff = vec_ops::max_abs_diff(&x_cg, &x);
    let scale = x_cg.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
    if diff > 1e-8 * scale {
        return Err(format!(
            "{tag}: mgcg and CG solutions differ by {diff:e} (scale {scale:e})"
        ));
    }
    Ok(())
}

/// Multigrid-CG agrees with Jacobi-CG on the *real* model matrices: the
/// two-layer-plus-sink thermal conductance system and every PDN domain
/// sheet under a partially gated configuration.
fn mgcg_vs_cg_real_matrices() -> Result<(), String> {
    use simkit::linalg::multigrid::GridGeometry;
    let chip = power8_like();
    let model = ThermalModel::new(
        &chip,
        ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::coarse()
        },
    );
    let n = model.node_count();
    let b: Vec<f64> = (0..n).map(|i| 0.25 + 0.5 * (i % 7) as f64).collect();
    mgcg_matches_cg(
        "thermal conductance",
        model.conductance_matrix(),
        model.grid_geometry(),
        &b,
    )?;

    let pdn_model = pdn::PdnModel::new(&chip, pdn::PdnConfig::reference());
    let mut gating = GatingState::all_on(chip.vr_sites().len());
    for &v in chip.domains()[0].vrs().iter().skip(3) {
        gating.set(v, false).map_err(err_str)?;
    }
    for domain in chip.domains() {
        let a = pdn_model
            .domain_system(domain.id(), &gating)
            .map_err(err_str)?;
        let (nx, ny) = pdn_model.domain_grid_size(domain.id());
        let b: Vec<f64> = (0..a.rows()).map(|i| 0.3 * (i % 5) as f64).collect();
        mgcg_matches_cg(
            &format!("pdn domain D{}", domain.id().0),
            &a,
            GridGeometry::new(nx, ny, 1, 0),
            &b,
        )?;
    }
    Ok(())
}

/// Multigrid-preconditioned CG matches Jacobi-CG on random SPD grid
/// Laplacians (with an optional sink-style extra node, exercising the
/// uncoarsened-extra path) and on the real thermal / PDN matrices.
pub fn diff_mgcg_vs_cg(opts: &VerifyOptions) -> CheckReport {
    use simkit::linalg::multigrid::GridGeometry;
    let cases = if opts.fast { 3 } else { 8 };
    if let Err(detail) = mgcg_vs_cg_real_matrices() {
        return CheckReport {
            name: "diff.mgcg_vs_cg".to_string(),
            cases: 0,
            corpus_cases: 0,
            failure: Some(detail),
            note: None,
        };
    }
    let gen = (
        check::usize_in(1, 12),
        check::vec_of(check::f64_in(0.05, 3.0), 1, 16),
        check::vec_of(check::f64_in(-1.0, 1.0), 1, 16),
        check::bool_any(),
    );
    let outcome = checker(opts, cases).run(
        "diff.mgcg_vs_cg",
        &gen,
        |(side, loading, rhs, with_sink)| {
            let side = *side;
            let cells = side * side;
            let extra = usize::from(*with_sink);
            let n = cells + extra;
            // A side×side grid Laplacian with positive diagonal loading;
            // `with_sink` appends one off-grid node coupled to every
            // cell — the shape of the thermal sink, which multigrid must
            // carry uncoarsened through every level.
            let mut builder = TripletBuilder::new(n, n);
            for j in 0..side {
                for i in 0..side {
                    let cell = j * side + i;
                    let mut degree = 0.0;
                    for (di, dj) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                        let (ni, nj) = (i as i64 + di, j as i64 + dj);
                        if (0..side as i64).contains(&ni) && (0..side as i64).contains(&nj) {
                            builder.add(cell, (nj * side as i64 + ni) as usize, -1.0);
                            degree += 1.0;
                        }
                    }
                    if extra == 1 {
                        builder.add(cell, cells, -0.25);
                        builder.add(cells, cell, -0.25);
                        degree += 0.25;
                    }
                    builder.add(cell, cell, degree + loading[cell % loading.len()]);
                }
            }
            if extra == 1 {
                builder.add(
                    cells,
                    cells,
                    0.25 * cells as f64 + loading[cells % loading.len()],
                );
            }
            let a = builder.build();
            let b: Vec<f64> = (0..n).map(|c| rhs[c % rhs.len()]).collect();
            mgcg_matches_cg(
                "random grid",
                &a,
                GridGeometry::new(side, side, 1, extra),
                &b,
            )
        },
    );
    to_report("diff.mgcg_vs_cg", cases, outcome, opts)
}

/// The benchmark × policy cells of the sweep differential / golden runs.
pub fn verify_grid() -> ([Benchmark; 2], [PolicyKind; 2]) {
    (
        [Benchmark::LuNcb, Benchmark::Fft],
        [PolicyKind::OracT, PolicyKind::AllOn],
    )
}

/// Serial vs parallel sweep equality. Both legs recompute from scratch
/// (the on-disk cell cache is cleared first), so this checks the
/// work-stealing executor, not the cache. Returns the serial records for
/// reuse by [`golden_check`].
pub fn diff_sweep_parallel(opts: &VerifyOptions) -> (CheckReport, Vec<SweepRecord>) {
    let (benches, policies) = verify_grid();
    let serial_opts = ExpOptions::tiny().with_threads(1).with_quiet();
    let parallel_opts = ExpOptions::tiny()
        .with_threads(opts.threads.max(2))
        .with_quiet();
    let _ = std::fs::remove_dir_all(sweep::cache_dir(&serial_opts));
    let serial = sweep::grid(&serial_opts, &benches, &policies);
    let _ = std::fs::remove_dir_all(sweep::cache_dir(&parallel_opts));
    let parallel = sweep::grid(&parallel_opts, &benches, &policies);
    let failure = if serial == parallel {
        None
    } else {
        let detail = serial
            .iter()
            .zip(&parallel)
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("first mismatch:\n  serial   {a:?}\n  parallel {b:?}"))
            .unwrap_or_else(|| {
                format!(
                    "record counts differ: {} serial vs {} parallel",
                    serial.len(),
                    parallel.len()
                )
            });
        Some(detail)
    };
    (
        CheckReport {
            name: "diff.sweep_serial_vs_parallel".to_string(),
            cases: serial.len(),
            corpus_cases: 0,
            failure,
            note: None,
        },
        serial,
    )
}

// ---------------------------------------------------------------------------
// Golden-run comparison
// ---------------------------------------------------------------------------

/// Names of the numeric fields of a golden row, in file order.
pub const GOLDEN_FIELDS: [&str; 8] = [
    "tmax_c",
    "gradient_c",
    "mean_efficiency",
    "mean_loss_w",
    "max_noise_pct",
    "emergency_fraction",
    "mean_active",
    "r_squared",
];

/// One row of the golden fixture: a sweep cell's identity plus its
/// numeric metrics (`None` = not applicable, stored as `-`).
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenRow {
    /// Benchmark label (`lu_ncb`, …).
    pub benchmark: String,
    /// Policy tag (`oract`, …).
    pub policy: String,
    /// The eight metrics, ordered as [`GOLDEN_FIELDS`].
    pub values: [Option<f64>; 8],
}

impl GoldenRow {
    /// Builds a row from a sweep record.
    pub fn from_record(r: &SweepRecord) -> Self {
        GoldenRow {
            benchmark: r.benchmark.label().to_string(),
            policy: sweep::policy_tag(r.policy).to_string(),
            values: [
                Some(r.tmax_c),
                Some(r.gradient_c),
                Some(r.mean_efficiency),
                Some(r.mean_loss_w),
                r.max_noise_pct,
                r.emergency_fraction,
                Some(r.mean_active),
                r.r_squared,
            ],
        }
    }

    /// Serialises the row as one CSV line (lossless `{:e}` floats, `-`
    /// for not-applicable).
    pub fn to_line(&self) -> String {
        let mut parts = vec![self.benchmark.clone(), self.policy.clone()];
        for v in &self.values {
            parts.push(match v {
                Some(x) => format!("{x:e}"),
                None => "-".to_string(),
            });
        }
        parts.join(",")
    }

    /// Parses one CSV line; `None` on malformed input.
    pub fn parse_line(line: &str) -> Option<Self> {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 10 {
            return None;
        }
        let mut values = [None; 8];
        for (slot, text) in values.iter_mut().zip(&parts[2..]) {
            *slot = match *text {
                "-" => None,
                s => Some(s.parse::<f64>().ok()?),
            };
        }
        Some(GoldenRow {
            benchmark: parts[0].to_string(),
            policy: parts[1].to_string(),
            values,
        })
    }
}

/// Parses a golden fixture body (`#` comments and blank lines skipped).
pub fn parse_golden(text: &str) -> Option<Vec<GoldenRow>> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(GoldenRow::parse_line)
        .collect()
}

/// Serialises golden rows with a header comment.
pub fn render_golden(rows: &[GoldenRow]) -> String {
    let mut out = String::from(
        "# tg-verify golden fixture: tiny-sweep records (regenerate with `tg-verify --bless`)\n# benchmark,policy,tmax_c,gradient_c,mean_efficiency,mean_loss_w,max_noise_pct,emergency_fraction,mean_active,r_squared\n",
    );
    for row in rows {
        out.push_str(&row.to_line());
        out.push('\n');
    }
    out
}

/// Compares actual rows against expected, field-by-field, at relative
/// tolerance `rel_tol`.
///
/// # Errors
///
/// Returns a description of the first mismatch (row, cell identity, and
/// field name).
pub fn compare_golden(
    actual: &[GoldenRow],
    expected: &[GoldenRow],
    rel_tol: f64,
) -> Result<(), String> {
    if actual.len() != expected.len() {
        return Err(format!(
            "row counts differ: {} actual vs {} expected",
            actual.len(),
            expected.len()
        ));
    }
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        if a.benchmark != e.benchmark || a.policy != e.policy {
            return Err(format!(
                "row {i}: cell identity {}/{} vs expected {}/{}",
                a.benchmark, a.policy, e.benchmark, e.policy
            ));
        }
        for (field, (av, ev)) in GOLDEN_FIELDS.iter().zip(a.values.iter().zip(&e.values)) {
            match (av, ev) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    let tol = rel_tol * x.abs().max(y.abs()).max(1.0);
                    if (x - y).abs() > tol {
                        return Err(format!(
                            "row {i} ({}/{}): field {field}: got {x:e}, golden {y:e} (tol {tol:e})",
                            a.benchmark, a.policy
                        ));
                    }
                }
                _ => {
                    return Err(format!(
                        "row {i} ({}/{}): field {field}: applicability differs ({av:?} vs {ev:?})",
                        a.benchmark, a.policy
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Golden comparison of freshly computed records against the committed
/// fixture — or, with `opts.bless`, regeneration of the fixture.
pub fn golden_check(records: &[SweepRecord], opts: &VerifyOptions) -> CheckReport {
    let rows: Vec<GoldenRow> = records.iter().map(GoldenRow::from_record).collect();
    let mut report = CheckReport {
        name: "diff.golden".to_string(),
        cases: rows.len(),
        corpus_cases: 0,
        failure: None,
        note: None,
    };
    if opts.bless {
        if let Some(parent) = opts.golden.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&opts.golden, render_golden(&rows)) {
            Ok(()) => report.note = Some(format!("blessed {} rows", rows.len())),
            Err(e) => report.failure = Some(format!("could not write golden fixture: {e}")),
        }
        return report;
    }
    let text = match std::fs::read_to_string(&opts.golden) {
        Ok(t) => t,
        Err(e) => {
            report.failure = Some(format!(
                "golden fixture {} unreadable ({e}); run `tg-verify --bless` to create it",
                opts.golden.display()
            ));
            return report;
        }
    };
    let Some(expected) = parse_golden(&text) else {
        report.failure = Some(format!(
            "golden fixture {} is malformed",
            opts.golden.display()
        ));
        return report;
    };
    if let Err(detail) = compare_golden(&rows, &expected, 1e-6) {
        report.failure = Some(detail);
    }
    report
}

// ---------------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------------

/// Runs every oracle and differential, in a fixed deterministic order.
pub fn run_all(opts: &VerifyOptions) -> VerifyRun {
    let mut reports = vec![
        oracle_required_active(opts),
        oracle_loss_eqn1(opts),
        oracle_eta_peak(opts),
        oracle_curve_consistency(opts),
        oracle_policy_active_set(opts),
        oracle_policy_emergency(opts),
        oracle_thermal_energy_balance(opts),
        oracle_pdn_kcl(opts),
        oracle_pdn_linearity(opts),
        oracle_govern_tracking(opts),
        oracle_govern_no_oscillation(opts),
        oracle_govern_anti_windup(opts),
        oracle_govern_gain_monotone(opts),
        diff_cg_vs_gs(opts),
        diff_direct_vs_cg(opts),
        diff_mgcg_vs_cg(opts),
    ];
    if !opts.skip_sweep {
        let (sweep_report, records) = diff_sweep_parallel(opts);
        reports.push(sweep_report);
        reports.push(golden_check(&records, opts));
    }
    VerifyRun { reports }
}
