//! Performance snapshots (`BENCH_<label>.json`, schema
//! `thermogater.bench/v1`).
//!
//! A snapshot pins the repository's performance at one point in time:
//! for each policy it runs the pinned fast-configuration workload
//! (`lu_ncb` under [`EngineConfig::fast`]) once and records throughput
//! (thermal steps per second), the per-phase wall-time breakdown, and
//! solver iteration percentiles recovered from the run's own telemetry
//! stream. `tg-obs bench-snapshot` writes one; `tg-obs diff` compares
//! two and fails CI on a regression, so the `BENCH_*.json` trajectory
//! accumulates a machine-checkable perf history instead of prose.
//!
//! Wall-clock numbers are env-sensitive, so snapshot comparisons use
//! loose, directional tolerances (see [`crate::obs`]); solver iteration
//! counts are deterministic and gate tightly.

use simkit::linalg::SolverBackend;
use simkit::telemetry::analyze::{ParsedEvent, TraceAnalysis};
use simkit::telemetry::json::{self, JsonValue};
use simkit::telemetry::Telemetry;
use simkit::units::Watts;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Instant;
use thermal::{PowerMap, SteadyScratch, ThermalConfig, ThermalModel};
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

/// Schema identifier stamped into (and required of) every snapshot.
pub const SNAPSHOT_SCHEMA: &str = "thermogater.bench/v1";

/// The pinned benchmark every snapshot entry runs.
pub const SNAPSHOT_BENCH: Benchmark = Benchmark::LuNcb;

/// Solver iteration/residual percentiles for one solve site of one
/// entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverSnapshot {
    /// Solve site, e.g. `"thermal.gs"`.
    pub site: String,
    /// Number of solves recorded.
    pub solves: u64,
    /// Mean iterations per solve.
    pub iters_mean: f64,
    /// Median iterations per solve.
    pub iters_p50: f64,
    /// 95th-percentile iterations per solve.
    pub iters_p95: f64,
    /// Worst final relative residual.
    pub residual_max: f64,
}

/// One policy's measurement within a [`BenchSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEntry {
    /// Policy tag, e.g. `"oracvt"`.
    pub policy: String,
    /// Thermal grid edge (`nx`) the run solved on (0 in snapshots
    /// written before the grid-scaling axis existed).
    pub grid_n: u64,
    /// Wall-clock seconds for the run.
    pub wall_s: f64,
    /// Thermal steps simulated.
    pub steps: u64,
    /// Throughput: `steps / wall_s`.
    pub steps_per_sec: f64,
    /// Per-phase wall seconds, in first-recorded order.
    pub phases: Vec<(String, f64)>,
    /// Per-site solver percentiles.
    pub solver: Vec<SolverSnapshot>,
}

/// One (grid, backend) cell of the steady-solve grid-scaling axis: the
/// cost of cold-starting the backend's cache (factor / hierarchy) and
/// the amortised cost and iteration count of repeated cold-state solves
/// against it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingEntry {
    /// Grid edge: the thermal model ran `grid × grid` cells.
    pub grid: u64,
    /// Total solver unknowns (`2·grid² + 1` for the two-layer stack).
    pub nodes: u64,
    /// Backend tag: `"cg"`, `"mgcg"`, or `"direct"`.
    pub backend: String,
    /// Number of measured (cache-warm) solves behind the means.
    pub solves: u64,
    /// Mean solver iterations per measured solve.
    pub iters_mean: f64,
    /// Wall-clock of the first solve, which builds the backend's cached
    /// factor / multigrid hierarchy, seconds.
    pub setup_s: f64,
    /// Total wall-clock of the measured solves (setup excluded), seconds.
    pub wall_s: f64,
}

/// The telemetry/frame-recorder overhead axis: one pinned fast-config
/// run with the spatial frame recorder on, against one with telemetry
/// on but frames off.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryOverhead {
    /// Frames the recorder captured (deterministic for the pinned
    /// config and sampling period).
    pub frames: u64,
    /// Recorder self-reported capture + serialisation time, whole µs
    /// (the run's `telemetry.overhead` counter).
    pub overhead_us: u64,
    /// Wall seconds of the frames-on run.
    pub frames_wall_s: f64,
    /// Wall seconds of the frames-off (telemetry still on) run.
    pub base_wall_s: f64,
}

impl TelemetryOverhead {
    /// Recorder overhead as a share of the frames-on run's wall time.
    pub fn overhead_share(&self) -> f64 {
        (self.overhead_us as f64 / 1e6) / self.frames_wall_s.max(f64::MIN_POSITIVE)
    }
}

/// The live-aggregation overhead axis: one pinned fast-config run with
/// the in-process streaming aggregator ([`simkit::telemetry::live::LiveSink`])
/// fanned in next to the recorder sink, against one with the recorder
/// alone.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveOverhead {
    /// Events the live sink folded (deterministic for the pinned
    /// config; the run's `telemetry.live.events` counter).
    pub events: u64,
    /// Sink self-reported fold time, whole µs (the run's
    /// `telemetry.live.overhead` counter).
    pub overhead_us: u64,
    /// Wall seconds of the live-sink run.
    pub live_wall_s: f64,
    /// Wall seconds of the recorder-only run.
    pub base_wall_s: f64,
}

impl LiveOverhead {
    /// Fold overhead as a share of the live run's wall time.
    pub fn overhead_share(&self) -> f64 {
        (self.overhead_us as f64 / 1e6) / self.live_wall_s.max(f64::MIN_POSITIVE)
    }
}

/// The scenario-service cache-hit-throughput axis: one repeated tiny
/// batch pushed through [`crate::service::run_batch`] twice against a
/// fresh cache — the cold pass simulates each unique hash once
/// (duplicates coalesce or hit), the warm pass must answer every
/// scenario from cache. The counters are deterministic and gate
/// exactly; the walls (and the derived throughput) are env-sensitive
/// and informational.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeThroughput {
    /// Scenarios per pass (`unique × repeats`).
    pub scenarios: u64,
    /// Distinct scenario hashes in the batch.
    pub unique: u64,
    /// Engine executions in the cold pass (must equal `unique`).
    pub cold_misses: u64,
    /// Cold-pass answers that avoided the engine (cache hits of
    /// already-stored duplicates plus coalesced waiters —
    /// `scenarios − unique`; the hit/coalesce split depends on timing).
    pub cold_served: u64,
    /// Warm-pass cache hits (must equal `scenarios`: zero engine runs).
    pub warm_hits: u64,
    /// Wall seconds of the cold pass.
    pub cold_wall_s: f64,
    /// Wall seconds of the warm pass.
    pub warm_wall_s: f64,
}

impl ServeThroughput {
    /// Warm-pass cache-hit throughput, answers per second.
    pub fn warm_per_sec(&self) -> f64 {
        self.scenarios as f64 / self.warm_wall_s.max(f64::MIN_POSITIVE)
    }
}

/// A schema-tagged performance snapshot (one `BENCH_<label>.json`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchSnapshot {
    /// Snapshot label (`ci`, a date stamp, …) — names the output file.
    pub label: String,
    /// Engine-configuration tag the entries ran under.
    pub config: String,
    /// Benchmark label the entries ran.
    pub bench: String,
    /// Peak resident set size, when the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
    /// Frame-recorder overhead axis (`None` in snapshots written
    /// before it existed or captured without it).
    pub telemetry: Option<TelemetryOverhead>,
    /// Live-aggregation overhead axis (`None` in snapshots written
    /// before it existed or captured without it).
    pub live: Option<LiveOverhead>,
    /// Scenario-service cache-hit-throughput axis (`None` in snapshots
    /// written before it existed or captured without `--serve`).
    pub serve: Option<ServeThroughput>,
    /// One entry per measured policy.
    pub entries: Vec<PolicyEntry>,
    /// Steady-solve grid-scaling axis (empty when not captured).
    pub scaling: Vec<ScalingEntry>,
}

/// Peak resident set size of this process (`VmHWM` from
/// `/proc/self/status`); `None` where unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Measures one policy under the pinned fast configuration.
///
/// The run is traced into an in-memory sink so solver iteration
/// *distributions* (not just the mean/max the engine aggregates) can be
/// rolled up through [`TraceAnalysis`].
///
/// # Errors
///
/// Propagates engine failures as a rendered message.
pub fn measure_policy(policy: PolicyKind) -> Result<PolicyEntry, String> {
    let chip = floorplan::reference::power8_like();
    let config = EngineConfig::fast();
    let steps = (config.duration.get() / config.thermal_step.get()).round() as u64;
    let grid_n = config.thermal.nx as u64;
    let mut engine = SimulationEngine::new(&chip, config);
    let (telemetry, sink) = Telemetry::recorder();
    engine.set_telemetry(telemetry);

    let started = Instant::now();
    let result = engine
        .run(SNAPSHOT_BENCH, policy)
        .map_err(|e| format!("{policy:?} run failed: {e}"))?;
    let wall_s = started.elapsed().as_secs_f64();

    let mut analysis = TraceAnalysis::new();
    for event in sink.events() {
        if let Ok(parsed) = ParsedEvent::from_line(&event.to_json()) {
            analysis.observe(&parsed);
        }
    }
    let solver = analysis
        .solvers
        .iter()
        .map(|(site, rollup)| SolverSnapshot {
            site: site.clone(),
            solves: rollup.solves(),
            iters_mean: rollup.iters.mean().unwrap_or(0.0),
            iters_p50: rollup.iters.percentile(50.0).unwrap_or(0.0),
            iters_p95: rollup.iters.percentile(95.0).unwrap_or(0.0),
            residual_max: rollup.residuals.max().unwrap_or(0.0),
        })
        .collect();
    Ok(PolicyEntry {
        policy: crate::sweep::policy_tag(policy).to_string(),
        grid_n,
        wall_s,
        steps,
        steps_per_sec: steps as f64 / wall_s.max(f64::MIN_POSITIVE),
        phases: result
            .phase_times()
            .iter()
            .map(|(name, seconds, _)| (name.to_string(), seconds))
            .collect(),
        solver,
    })
}

/// Frame-recorder sampling period (thermal steps) for the pinned
/// overhead measurement — ~6 frames over the fast config's 300 steps.
pub const SNAPSHOT_FRAME_EVERY: usize = 50;

/// Measures the frame-recorder overhead axis: the pinned fast-config
/// workload once with the spatial frame recorder sampling every
/// [`SNAPSHOT_FRAME_EVERY`] steps, once with telemetry on but frames
/// off. The frames-on run's `telemetry.frames` / `telemetry.overhead`
/// counters provide the deterministic frame count and the recorder's
/// self-reported cost.
///
/// # Errors
///
/// Propagates engine failures as a rendered message.
pub fn measure_telemetry_overhead() -> Result<TelemetryOverhead, String> {
    let chip = floorplan::reference::power8_like();
    let run = |frame_every: usize| -> Result<(f64, TraceAnalysis), String> {
        let config = EngineConfig {
            frame_every,
            ..EngineConfig::fast()
        };
        let mut engine = SimulationEngine::new(&chip, config);
        let (telemetry, sink) = Telemetry::recorder();
        engine.set_telemetry(telemetry);
        let started = Instant::now();
        engine
            .run(SNAPSHOT_BENCH, PolicyKind::PracVT)
            .map_err(|e| format!("overhead run failed: {e}"))?;
        let wall_s = started.elapsed().as_secs_f64();
        let mut analysis = TraceAnalysis::new();
        for event in sink.events() {
            if let Ok(parsed) = ParsedEvent::from_line(&event.to_json()) {
                analysis.observe(&parsed);
            }
        }
        Ok((wall_s, analysis))
    };
    let (frames_wall_s, analysis) = run(SNAPSHOT_FRAME_EVERY)?;
    let (base_wall_s, _) = run(0)?;
    Ok(TelemetryOverhead {
        frames: analysis.counter("telemetry.frames"),
        overhead_us: analysis.counter("telemetry.overhead"),
        frames_wall_s,
        base_wall_s,
    })
}

/// Measures the live-aggregation overhead axis: the pinned fast-config
/// workload once with a [`LiveSink`] fanned in next to the recorder
/// sink, once with the recorder alone. The live run's sink provides
/// the deterministic folded-event count and its self-timed fold cost —
/// the same numbers a `--live` run writes into its trace as
/// `telemetry.live.events` / `telemetry.live.overhead`.
///
/// # Errors
///
/// Propagates engine failures as a rendered message.
pub fn measure_live_overhead() -> Result<LiveOverhead, String> {
    use simkit::telemetry::live::LiveSink;
    use simkit::telemetry::{FanoutSink, MemorySink, TelemetrySink};
    use std::sync::Arc;

    let chip = floorplan::reference::power8_like();
    let run = |live: Option<Arc<LiveSink>>| -> Result<f64, String> {
        let mut engine = SimulationEngine::new(&chip, EngineConfig::fast());
        let recorder: Arc<dyn TelemetrySink> = Arc::new(MemorySink::default());
        let sink: Arc<dyn TelemetrySink> = match live {
            Some(live) => Arc::new(FanoutSink::new(vec![recorder, live])),
            None => recorder,
        };
        engine.set_telemetry(Telemetry::with_sink(sink));
        let started = Instant::now();
        engine
            .run(SNAPSHOT_BENCH, PolicyKind::PracVT)
            .map_err(|e| format!("live overhead run failed: {e}"))?;
        Ok(started.elapsed().as_secs_f64())
    };
    let live = Arc::new(simkit::telemetry::live::LiveSink::new());
    let live_wall_s = run(Some(live.clone()))?;
    let base_wall_s = run(None)?;
    Ok(LiveOverhead {
        events: live.events(),
        overhead_us: live.overhead_us(),
        live_wall_s,
        base_wall_s,
    })
}

/// Benchmarks of the serve-throughput batch (small but not singular,
/// so the batch exercises distinct hashes).
pub const SERVE_BENCHMARKS: [Benchmark; 4] = [
    Benchmark::LuNcb,
    Benchmark::Fft,
    Benchmark::Barnes,
    Benchmark::Radix,
];

/// Policies of the serve-throughput batch.
pub const SERVE_POLICIES: [PolicyKind; 3] =
    [PolicyKind::AllOn, PolicyKind::OracT, PolicyKind::PracVT];

/// Repeats of the unique-cell block in the serve-throughput batch —
/// every unique scenario appears this many times, so the cold pass
/// must serve `repeats − 1` of each without touching the engine.
pub const SERVE_REPEATS: usize = 25;

/// Measures the scenario-service axis: a batch of
/// `|SERVE_BENCHMARKS| × |SERVE_POLICIES| × SERVE_REPEATS` tiny-config
/// scenarios streamed through the batch executor against a fresh
/// temporary cache (cold), then again (warm). The cold pass may answer
/// a duplicate either from the just-written cache or by coalescing
/// onto the in-flight simulation — both bypass the engine, so
/// `cold_misses` (= unique hashes) and `cold_served` (= the rest) are
/// deterministic even though the split is not. The warm pass must be
/// all hits.
///
/// # Errors
///
/// Reports counter inconsistencies (an engine run where none was
/// allowed) as a rendered message.
pub fn measure_serve_throughput() -> Result<ServeThroughput, String> {
    use crate::service::{run_batch, BatchOptions, ScenarioCache, ScenarioSpec, ServeCounters};
    use std::sync::atomic::Ordering;

    let dir = std::env::temp_dir().join(format!("tg-serve-bench-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let cache = ScenarioCache::new(&dir);
    let config = crate::context::ExpOptions::tiny().engine_config();
    let block: Vec<ScenarioSpec> = SERVE_BENCHMARKS
        .iter()
        .flat_map(|&b| SERVE_POLICIES.iter().map(move |&p| (b, p)))
        .map(|(b, p)| ScenarioSpec::new(b, p, config.clone()))
        .collect();
    let unique = block.len() as u64;
    let scenarios = unique * SERVE_REPEATS as u64;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
    let batch = BatchOptions {
        quiet: true,
        ..BatchOptions::for_threads(threads)
    };
    let pass = |counters: &ServeCounters| -> (u64, f64) {
        let specs = (0..SERVE_REPEATS).flat_map(|_| block.iter().cloned());
        let started = Instant::now();
        let answered = run_batch(&cache, specs, &batch, None, counters, |_| {});
        (answered as u64, started.elapsed().as_secs_f64())
    };

    let cold = ServeCounters::default();
    let (cold_answered, cold_wall_s) = pass(&cold);
    let warm = ServeCounters::default();
    let (warm_answered, warm_wall_s) = pass(&warm);
    let _ = fs::remove_dir_all(&dir);

    let cold_misses = cold.misses.load(Ordering::Relaxed);
    let cold_served = cold.hits.load(Ordering::Relaxed) + cold.coalesced.load(Ordering::Relaxed);
    let warm_hits = warm.hits.load(Ordering::Relaxed);
    if cold_answered != scenarios || warm_answered != scenarios {
        return Err(format!(
            "serve axis answered {cold_answered}/{warm_answered} of {scenarios} scenarios"
        ));
    }
    if cold_misses != unique {
        return Err(format!(
            "cold pass simulated {cold_misses} scenarios, expected the {unique} unique hashes"
        ));
    }
    if warm.misses.load(Ordering::Relaxed) != 0 || warm_hits != scenarios {
        return Err(format!(
            "warm pass was not pure cache hits: {}",
            warm.summary()
        ));
    }
    Ok(ServeThroughput {
        scenarios,
        unique,
        cold_misses,
        cold_served,
        warm_hits,
        cold_wall_s,
        warm_wall_s,
    })
}

/// Captures a full snapshot: one [`measure_policy`] run per `policies`
/// entry, the frame-recorder and live-aggregation overhead axes, plus
/// the process peak RSS.
///
/// # Errors
///
/// Propagates the first failing policy run.
pub fn capture(label: &str, policies: &[PolicyKind]) -> Result<BenchSnapshot, String> {
    let entries = policies
        .iter()
        .map(|&p| measure_policy(p))
        .collect::<Result<Vec<_>, _>>()?;
    let telemetry = Some(measure_telemetry_overhead()?);
    let live = Some(measure_live_overhead()?);
    Ok(BenchSnapshot {
        label: label.to_string(),
        config: "fast".to_string(),
        bench: SNAPSHOT_BENCH.label().to_string(),
        peak_rss_bytes: peak_rss_bytes(),
        telemetry,
        live,
        serve: None,
        entries,
        scaling: Vec::new(),
    })
}

/// Backends the grid-scaling axis measures. Gauss–Seidel is absent
/// because the steady path has no distinct GS solver: a pinned
/// `GaussSeidel` backend routes steady solves through Jacobi-CG (GS is a
/// transient-stepper backend — see `thermal::model`).
pub const SCALING_BACKENDS: [SolverBackend; 3] = [
    SolverBackend::Cg,
    SolverBackend::Mgcg,
    SolverBackend::Direct,
];

/// Measures the steady-solve grid-scaling axis: for each `grid` edge and
/// each backend in [`SCALING_BACKENDS`], one cold solve (which builds
/// the backend's cached factor / multigrid hierarchy — its wall-clock is
/// `setup_s`) followed by `warm_solves` solves from a freshly reset
/// ambient state against the warm cache. Resetting the state each solve
/// keeps every measured solve doing full work (a warm-started repeat of
/// an identical system would converge instantly and measure nothing).
///
/// # Errors
///
/// Propagates solver failures as a rendered message.
pub fn capture_scaling(grids: &[usize], warm_solves: usize) -> Result<Vec<ScalingEntry>, String> {
    let chip = floorplan::reference::power8_like();
    let mut out = Vec::new();
    for &grid in grids {
        for backend in SCALING_BACKENDS {
            let config = ThermalConfig {
                nx: grid,
                ny: grid,
                solver: backend,
                ..ThermalConfig::standard()
            };
            let model = ThermalModel::new(&chip, config);
            let mut pm = PowerMap::new(&model);
            for block in chip.blocks() {
                pm.add_block(block.id(), Watts::new(2.0))
                    .map_err(|e| format!("power map: {e}"))?;
            }
            let mut scratch = SteadyScratch::new();
            let mut state = model.ambient_state();
            let err = |e| format!("steady {grid}x{grid} {}: {e}", backend.name());
            let started = Instant::now();
            model
                .steady_state_with_scratch(&pm, &mut state, &mut scratch)
                .map_err(err)?;
            let setup_s = started.elapsed().as_secs_f64();
            let mut iters = 0u64;
            let started = Instant::now();
            for _ in 0..warm_solves {
                state = model.ambient_state();
                let stats = model
                    .steady_state_with_scratch(&pm, &mut state, &mut scratch)
                    .map_err(err)?;
                iters += stats.iterations as u64;
            }
            out.push(ScalingEntry {
                grid: grid as u64,
                nodes: model.node_count() as u64,
                backend: backend.name().to_string(),
                solves: warm_solves as u64,
                iters_mean: iters as f64 / (warm_solves.max(1)) as f64,
                setup_s,
                wall_s: started.elapsed().as_secs_f64(),
            });
        }
    }
    Ok(out)
}

impl BenchSnapshot {
    /// The conventional file name, `BENCH_<label>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.label)
    }

    /// Serialises the snapshot as one JSON document (trailing newline
    /// included, for clean committed artifacts).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\":");
        json::write_str(&mut out, SNAPSHOT_SCHEMA);
        out.push_str(",\"label\":");
        json::write_str(&mut out, &self.label);
        out.push_str(",\"config\":");
        json::write_str(&mut out, &self.config);
        out.push_str(",\"bench\":");
        json::write_str(&mut out, &self.bench);
        match self.peak_rss_bytes {
            Some(rss) => {
                let _ = write!(out, ",\"peak_rss_bytes\":{rss}");
            }
            None => out.push_str(",\"peak_rss_bytes\":null"),
        }
        match &self.telemetry {
            Some(t) => {
                let _ = write!(
                    out,
                    ",\"telemetry\":{{\"frames\":{},\"overhead_us\":{}",
                    t.frames, t.overhead_us
                );
                out.push_str(",\"frames_wall_s\":");
                json::write_f64(&mut out, t.frames_wall_s);
                out.push_str(",\"base_wall_s\":");
                json::write_f64(&mut out, t.base_wall_s);
                out.push('}');
            }
            None => out.push_str(",\"telemetry\":null"),
        }
        match &self.live {
            Some(l) => {
                let _ = write!(
                    out,
                    ",\"live\":{{\"events\":{},\"overhead_us\":{}",
                    l.events, l.overhead_us
                );
                out.push_str(",\"live_wall_s\":");
                json::write_f64(&mut out, l.live_wall_s);
                out.push_str(",\"base_wall_s\":");
                json::write_f64(&mut out, l.base_wall_s);
                out.push('}');
            }
            None => out.push_str(",\"live\":null"),
        }
        match &self.serve {
            Some(s) => {
                let _ = write!(
                    out,
                    ",\"serve\":{{\"scenarios\":{},\"unique\":{},\"cold_misses\":{},\"cold_served\":{},\"warm_hits\":{}",
                    s.scenarios, s.unique, s.cold_misses, s.cold_served, s.warm_hits
                );
                out.push_str(",\"cold_wall_s\":");
                json::write_f64(&mut out, s.cold_wall_s);
                out.push_str(",\"warm_wall_s\":");
                json::write_f64(&mut out, s.warm_wall_s);
                out.push('}');
            }
            None => out.push_str(",\"serve\":null"),
        }
        out.push_str(",\"entries\":[");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"policy\":");
            json::write_str(&mut out, &entry.policy);
            let _ = write!(out, ",\"grid_n\":{}", entry.grid_n);
            out.push_str(",\"wall_s\":");
            json::write_f64(&mut out, entry.wall_s);
            let _ = write!(out, ",\"steps\":{}", entry.steps);
            out.push_str(",\"steps_per_sec\":");
            json::write_f64(&mut out, entry.steps_per_sec);
            out.push_str(",\"phases\":{");
            for (j, (name, seconds)) in entry.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_str(&mut out, name);
                out.push(':');
                json::write_f64(&mut out, *seconds);
            }
            out.push_str("},\"solver\":[");
            for (j, s) in entry.solver.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"site\":");
                json::write_str(&mut out, &s.site);
                let _ = write!(out, ",\"solves\":{}", s.solves);
                out.push_str(",\"iters_mean\":");
                json::write_f64(&mut out, s.iters_mean);
                out.push_str(",\"iters_p50\":");
                json::write_f64(&mut out, s.iters_p50);
                out.push_str(",\"iters_p95\":");
                json::write_f64(&mut out, s.iters_p95);
                out.push_str(",\"residual_max\":");
                json::write_f64(&mut out, s.residual_max);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("\n],\"scaling\":[");
        for (i, s) in self.scaling.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  {{\"grid\":{},\"nodes\":{}", s.grid, s.nodes);
            out.push_str(",\"backend\":");
            json::write_str(&mut out, &s.backend);
            let _ = write!(out, ",\"solves\":{}", s.solves);
            out.push_str(",\"iters_mean\":");
            json::write_f64(&mut out, s.iters_mean);
            out.push_str(",\"setup_s\":");
            json::write_f64(&mut out, s.setup_s);
            out.push_str(",\"wall_s\":");
            json::write_f64(&mut out, s.wall_s);
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes `BENCH_<label>.json` into `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn write(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        let path = dir.join(self.file_name());
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Parses and validates a snapshot document.
    ///
    /// # Errors
    ///
    /// Describes the first structural problem: malformed JSON, a wrong
    /// or missing schema tag, or missing required members.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text.trim())?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("snapshot missing \"schema\"")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SNAPSHOT_SCHEMA:?})"
            ));
        }
        let str_member = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("snapshot missing \"{key}\""))
        };
        let peak_rss_bytes = match doc.get("peak_rss_bytes") {
            None => return Err("snapshot missing \"peak_rss_bytes\"".into()),
            Some(JsonValue::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .filter(|r| *r >= 0.0)
                    .ok_or("\"peak_rss_bytes\" is not a number")? as u64,
            ),
        };
        // Absent in snapshots written before the overhead axis existed;
        // tolerate so committed perf history stays diffable.
        let telemetry = match doc.get("telemetry") {
            None | Some(JsonValue::Null) => None,
            Some(t) => {
                let num = |key: &str| {
                    t.get(key)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("\"telemetry\" missing number \"{key}\""))
                };
                Some(TelemetryOverhead {
                    frames: num("frames")? as u64,
                    overhead_us: num("overhead_us")? as u64,
                    frames_wall_s: num("frames_wall_s")?,
                    base_wall_s: num("base_wall_s")?,
                })
            }
        };
        // Same tolerance for the younger serve-throughput axis.
        let serve = match doc.get("serve") {
            None | Some(JsonValue::Null) => None,
            Some(s) => {
                let num = |key: &str| {
                    s.get(key)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("\"serve\" missing number \"{key}\""))
                };
                Some(ServeThroughput {
                    scenarios: num("scenarios")? as u64,
                    unique: num("unique")? as u64,
                    cold_misses: num("cold_misses")? as u64,
                    cold_served: num("cold_served")? as u64,
                    warm_hits: num("warm_hits")? as u64,
                    cold_wall_s: num("cold_wall_s")?,
                    warm_wall_s: num("warm_wall_s")?,
                })
            }
        };
        // Same tolerance for the younger live-aggregation axis.
        let live = match doc.get("live") {
            None | Some(JsonValue::Null) => None,
            Some(l) => {
                let num = |key: &str| {
                    l.get(key)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("\"live\" missing number \"{key}\""))
                };
                Some(LiveOverhead {
                    events: num("events")? as u64,
                    overhead_us: num("overhead_us")? as u64,
                    live_wall_s: num("live_wall_s")?,
                    base_wall_s: num("base_wall_s")?,
                })
            }
        };
        let mut entries = Vec::new();
        for (index, entry) in doc
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("snapshot missing \"entries\"")?
            .iter()
            .enumerate()
        {
            let num = |key: &str| {
                entry
                    .get(key)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("entry {index} missing number \"{key}\""))
            };
            let phases = entry
                .get("phases")
                .and_then(JsonValue::as_object)
                .ok_or_else(|| format!("entry {index} missing \"phases\""))?
                .iter()
                .map(|(name, v)| {
                    v.as_f64()
                        .map(|s| (name.clone(), s))
                        .ok_or_else(|| format!("entry {index} phase {name:?} is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let mut solver = Vec::new();
            for (j, site) in entry
                .get("solver")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("entry {index} missing \"solver\""))?
                .iter()
                .enumerate()
            {
                let snum = |key: &str| {
                    site.get(key)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("entry {index} solver {j} missing \"{key}\""))
                };
                solver.push(SolverSnapshot {
                    site: site
                        .get("site")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("entry {index} solver {j} missing \"site\""))?
                        .to_string(),
                    solves: snum("solves")? as u64,
                    iters_mean: snum("iters_mean")?,
                    iters_p50: snum("iters_p50")?,
                    iters_p95: snum("iters_p95")?,
                    residual_max: snum("residual_max")?,
                });
            }
            entries.push(PolicyEntry {
                policy: entry
                    .get("policy")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("entry {index} missing \"policy\""))?
                    .to_string(),
                // Absent in snapshots written before the grid-scaling
                // axis; tolerate so perf history stays diffable.
                grid_n: entry
                    .get("grid_n")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0) as u64,
                wall_s: num("wall_s")?,
                steps: num("steps")? as u64,
                steps_per_sec: num("steps_per_sec")?,
                phases,
                solver,
            });
        }
        // Also optional for pre-axis snapshots: missing ⇒ empty.
        let mut scaling = Vec::new();
        if let Some(rows) = doc.get("scaling").and_then(JsonValue::as_array) {
            for (index, row) in rows.iter().enumerate() {
                let num = |key: &str| {
                    row.get(key)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("scaling {index} missing number \"{key}\""))
                };
                scaling.push(ScalingEntry {
                    grid: num("grid")? as u64,
                    nodes: num("nodes")? as u64,
                    backend: row
                        .get("backend")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("scaling {index} missing \"backend\""))?
                        .to_string(),
                    solves: num("solves")? as u64,
                    iters_mean: num("iters_mean")?,
                    setup_s: num("setup_s")?,
                    wall_s: num("wall_s")?,
                });
            }
        }
        Ok(BenchSnapshot {
            label: str_member("label")?,
            config: str_member("config")?,
            bench: str_member("bench")?,
            peak_rss_bytes,
            telemetry,
            live,
            serve,
            entries,
            scaling,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A small hand-built snapshot (no engine run — fast).
    pub(crate) fn sample(label: &str, iters_p95: f64) -> BenchSnapshot {
        BenchSnapshot {
            label: label.to_string(),
            config: "fast".to_string(),
            bench: "lu_ncb".to_string(),
            peak_rss_bytes: Some(64 * 1024 * 1024),
            telemetry: Some(TelemetryOverhead {
                frames: 6,
                overhead_us: 800,
                frames_wall_s: 0.5,
                base_wall_s: 0.49,
            }),
            live: Some(LiveOverhead {
                events: 1800,
                overhead_us: 300,
                live_wall_s: 0.5,
                base_wall_s: 0.49,
            }),
            serve: Some(ServeThroughput {
                scenarios: 300,
                unique: 12,
                cold_misses: 12,
                cold_served: 288,
                warm_hits: 300,
                cold_wall_s: 2.0,
                warm_wall_s: 0.02,
            }),
            entries: vec![PolicyEntry {
                policy: "oract".to_string(),
                grid_n: 32,
                wall_s: 0.5,
                steps: 300,
                steps_per_sec: 600.0,
                phases: vec![("trace".into(), 0.01), ("transient".into(), 0.4)],
                solver: vec![SolverSnapshot {
                    site: "transient".to_string(),
                    solves: 300,
                    iters_mean: 3.1,
                    iters_p50: 3.0,
                    iters_p95,
                    residual_max: 1e-9,
                }],
            }],
            scaling: vec![
                ScalingEntry {
                    grid: 64,
                    nodes: 8193,
                    backend: "cg".to_string(),
                    solves: 3,
                    iters_mean: 210.0,
                    setup_s: 0.0,
                    wall_s: 0.09,
                },
                ScalingEntry {
                    grid: 64,
                    nodes: 8193,
                    backend: "mgcg".to_string(),
                    solves: 3,
                    iters_mean: 14.0,
                    setup_s: 0.01,
                    wall_s: 0.03,
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let snap = sample("test", 4.0);
        let back = BenchSnapshot::from_json(&snap.to_json()).expect("round trip");
        assert_eq!(back, snap);
        assert_eq!(back.file_name(), "BENCH_test.json");
    }

    #[test]
    fn null_rss_round_trips() {
        let mut snap = sample("test", 4.0);
        snap.peak_rss_bytes = None;
        let back = BenchSnapshot::from_json(&snap.to_json()).expect("round trip");
        assert_eq!(back.peak_rss_bytes, None);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(BenchSnapshot::from_json("not json").is_err());
        assert!(BenchSnapshot::from_json("{}").is_err());
        let wrong_schema = sample("x", 4.0).to_json().replace(SNAPSHOT_SCHEMA, "v0");
        assert!(BenchSnapshot::from_json(&wrong_schema).is_err());
        let no_entries = sample("x", 4.0)
            .to_json()
            .replace("\"entries\"", "\"cells\"");
        assert!(BenchSnapshot::from_json(&no_entries).is_err());
    }

    #[test]
    fn measure_policy_records_throughput_and_solvers() {
        let entry = measure_policy(thermogater::PolicyKind::AllOn).expect("run succeeds");
        assert_eq!(entry.policy, "allon");
        assert!(entry.steps > 0);
        assert!(entry.steps_per_sec > 0.0);
        assert!(!entry.phases.is_empty());
        // The transient stepper always solves; its site must be rolled up.
        assert!(entry.solver.iter().any(|s| s.solves > 0));
    }

    #[test]
    fn pre_telemetry_documents_still_parse() {
        // Snapshots written before the overhead axis existed must keep
        // loading, with the axis simply absent.
        let snap = sample("old", 4.0);
        let mut text = snap.to_json();
        let start = text.find(",\"telemetry\"").expect("telemetry member");
        let end = text[start + 1..].find(",\"entries\"").expect("entries") + start + 1;
        text.replace_range(start..end, "");
        let back = BenchSnapshot::from_json(&text).expect("old document parses");
        assert_eq!(back.telemetry, None);
        // Explicit null also maps to absent.
        let null = snap
            .to_json()
            .replace(&snap.to_json()[start..end], ",\"telemetry\":null");
        assert_eq!(BenchSnapshot::from_json(&null).unwrap().telemetry, None);
    }

    #[test]
    fn overhead_share_is_well_defined() {
        let t = TelemetryOverhead {
            frames: 6,
            overhead_us: 1000,
            frames_wall_s: 0.1,
            base_wall_s: 0.1,
        };
        assert!((t.overhead_share() - 0.01).abs() < 1e-12);
        let zero_wall = TelemetryOverhead {
            frames_wall_s: 0.0,
            ..t
        };
        assert!(zero_wall.overhead_share().is_finite());
    }

    #[test]
    fn measure_telemetry_overhead_counts_frames() {
        let t = measure_telemetry_overhead().expect("overhead runs succeed");
        // 300 fast-config steps sampled every 50 (step 0 included).
        assert!(t.frames >= 5, "too few frames: {}", t.frames);
        assert!(t.frames_wall_s > 0.0 && t.base_wall_s > 0.0);
    }

    #[test]
    fn pre_live_documents_still_parse() {
        // Snapshots written before the live-aggregation axis existed
        // must keep loading, with the axis simply absent.
        let snap = sample("old", 4.0);
        let text = snap.to_json();
        let start = text.find(",\"live\"").expect("live member");
        let end = text[start + 1..].find(",\"entries\"").expect("entries") + start + 1;
        let mut cut = text.clone();
        cut.replace_range(start..end, "");
        let back = BenchSnapshot::from_json(&cut).expect("old document parses");
        assert_eq!(back.live, None);
        assert_eq!(back.telemetry, snap.telemetry, "sibling axis untouched");
        // Explicit null also maps to absent.
        let mut null = text.clone();
        null.replace_range(start..end, ",\"live\":null");
        assert_eq!(BenchSnapshot::from_json(&null).unwrap().live, None);
        // And the full document round-trips the axis intact.
        let back = BenchSnapshot::from_json(&text).expect("round trip");
        assert_eq!(back.live, snap.live);
    }

    #[test]
    fn pre_serve_documents_still_parse() {
        // Snapshots written before the serve axis existed must keep
        // loading, with the axis simply absent.
        let snap = sample("old", 4.0);
        let text = snap.to_json();
        let start = text.find(",\"serve\"").expect("serve member");
        let end = text[start + 1..].find(",\"entries\"").expect("entries") + start + 1;
        let mut cut = text.clone();
        cut.replace_range(start..end, "");
        let back = BenchSnapshot::from_json(&cut).expect("old document parses");
        assert_eq!(back.serve, None);
        assert_eq!(back.live, snap.live, "sibling axis untouched");
        // Explicit null also maps to absent.
        let mut null = text.clone();
        null.replace_range(start..end, ",\"serve\":null");
        assert_eq!(BenchSnapshot::from_json(&null).unwrap().serve, None);
        // And the full document round-trips the axis intact.
        let back = BenchSnapshot::from_json(&text).expect("round trip");
        assert_eq!(back.serve, snap.serve);
    }

    #[test]
    fn warm_per_sec_is_well_defined() {
        let s = sample("x", 4.0).serve.unwrap();
        assert!((s.warm_per_sec() - 300.0 / 0.02).abs() < 1e-9);
        // A degenerate zero wall must not poison the report with NaN
        // (an infinite throughput prints as `inf`, which is honest).
        let zero_wall = ServeThroughput {
            warm_wall_s: 0.0,
            ..s
        };
        assert!(!zero_wall.warm_per_sec().is_nan());
    }

    #[test]
    fn live_overhead_share_is_well_defined() {
        let l = LiveOverhead {
            events: 1800,
            overhead_us: 1000,
            live_wall_s: 0.1,
            base_wall_s: 0.1,
        };
        assert!((l.overhead_share() - 0.01).abs() < 1e-12);
        let zero_wall = LiveOverhead {
            live_wall_s: 0.0,
            ..l
        };
        assert!(zero_wall.overhead_share().is_finite());
    }

    #[test]
    fn measure_live_overhead_folds_every_engine_event() {
        let l = measure_live_overhead().expect("overhead runs succeed");
        // The fast config emits at minimum gating + emergency + solve
        // events per decision window; the live sink must have folded a
        // substantial stream, not a handful.
        assert!(l.events > 100, "too few folded events: {}", l.events);
        assert!(l.live_wall_s > 0.0 && l.base_wall_s > 0.0);
    }

    #[test]
    fn pre_scaling_documents_still_parse() {
        // Snapshots written before grid_n / scaling existed must keep
        // loading so committed perf history stays diffable.
        let snap = sample("old", 4.0);
        let mut text = snap.to_json();
        let cut = text.find(",\"scaling\"").expect("scaling member present");
        text.truncate(cut);
        text.push_str("}\n");
        let text = text.replace(",\"grid_n\":32", "");
        let back = BenchSnapshot::from_json(&text).expect("old document parses");
        assert!(back.scaling.is_empty());
        assert_eq!(back.entries[0].grid_n, 0);
    }

    #[test]
    fn capture_scaling_measures_each_grid_and_backend() {
        let rows = capture_scaling(&[12], 2).expect("tiny scaling run");
        assert_eq!(rows.len(), SCALING_BACKENDS.len());
        for row in &rows {
            assert_eq!(row.grid, 12);
            assert_eq!(row.nodes, 2 * 12 * 12 + 1);
            assert_eq!(row.solves, 2);
            assert!(row.iters_mean >= 1.0, "{} did no work", row.backend);
            assert!(row.wall_s > 0.0);
        }
        // Same system, same tolerance: multigrid must not need more
        // iterations than Jacobi-CG even on a tiny grid.
        let by = |tag: &str| rows.iter().find(|r| r.backend == tag).unwrap();
        assert!(by("mgcg").iters_mean <= by("cg").iters_mean);
        assert_eq!(by("direct").iters_mean, 1.0);
    }

    #[test]
    fn peak_rss_is_plausible_when_present() {
        if let Some(rss) = peak_rss_bytes() {
            // More than a page, less than a terabyte.
            assert!(rss > 4096 && rss < 1 << 40, "implausible RSS {rss}");
        }
    }
}
