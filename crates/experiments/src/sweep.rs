//! Cached benchmark × policy sweeps with a parallel executor.
//!
//! The headline figures (9, 10, 11) and Table 2 all read the same
//! 14-benchmark × 8-policy grid; on a single core that sweep takes tens
//! of minutes at the paper-faithful configuration, so each
//! (benchmark, policy) cell is cached on disk after its first run. The
//! cache lives under `target/experiments/<tag>/` and is keyed by the
//! configuration tag (`full`/`quick`/`tiny`); delete the directory to
//! force re-runs.
//!
//! [`grid`] distributes uncached cells over worker threads: each cell
//! is an independent simulation (its engine, thermal model, and PDN are
//! built thread-locally), so workers claim cells from a shared atomic
//! counter and the grid completes in roughly
//! `cells / min(threads, cells)` serial-cell times. The worker count
//! comes from [`ExpOptions::resolved_threads`] (`--threads=N`, then
//! `SIMKIT_THREADS`, then the machine's parallelism); the produced
//! records — and the per-cell CSV cache files — are byte-identical to a
//! serial run regardless of thread count.

use crate::context::ExpOptions;
use crate::telemetry::TelemetryCtx;
use floorplan::reference::power8_like;
use simkit::telemetry::manifest::{CellManifest, RunManifest};
use simkit::telemetry::EventKind;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;
use thermogater::{PolicyKind, SimulationEngine, SimulationResult};
use workload::Benchmark;

/// The scalar metrics of one benchmark × policy run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Benchmark simulated.
    pub benchmark: Benchmark,
    /// Policy applied.
    pub policy: PolicyKind,
    /// Temporal maximum of the chip-wide maximum temperature, °C.
    pub tmax_c: f64,
    /// Temporal maximum of the spatial thermal gradient, °C.
    pub gradient_c: f64,
    /// Time-averaged effective conversion efficiency.
    pub mean_efficiency: f64,
    /// Time-averaged total regulator conversion loss, W.
    pub mean_loss_w: f64,
    /// Maximum voltage noise, percent of Vdd (`None` for off-chip).
    pub max_noise_pct: Option<f64>,
    /// Fraction of analyzed cycles in voltage emergencies.
    pub emergency_fraction: Option<f64>,
    /// Mean number of active regulators.
    pub mean_active: f64,
    /// Thermal-predictor R² (practical policies).
    pub r_squared: Option<f64>,
}

impl SweepRecord {
    /// Extracts the scalar metrics from a full simulation result.
    pub fn from_result(result: &SimulationResult) -> Self {
        SweepRecord {
            benchmark: result.benchmark(),
            policy: result.policy(),
            tmax_c: result.max_temperature().get(),
            gradient_c: result.max_gradient(),
            mean_efficiency: result.mean_efficiency(),
            mean_loss_w: result.mean_total_vr_loss().get(),
            max_noise_pct: result.max_noise_percent(),
            emergency_fraction: result.emergency_cycle_fraction(),
            mean_active: result.mean_active_count(),
            r_squared: result.predictor_r_squared(),
        }
    }

    // `{:e}` prints the shortest representation that parses back to the
    // exact same f64, so a cache round-trip is lossless and a cache-read
    // record equals the freshly computed one bit for bit.
    fn to_csv(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map_or("-".into(), |x| format!("{x:e}"))
        }
        format!(
            "{},{},{:e},{:e},{:e},{:e},{},{},{:e},{}",
            self.benchmark.label(),
            policy_tag(self.policy),
            self.tmax_c,
            self.gradient_c,
            self.mean_efficiency,
            self.mean_loss_w,
            opt(self.max_noise_pct),
            opt(self.emergency_fraction),
            self.mean_active,
            opt(self.r_squared),
        )
    }

    fn from_csv(line: &str) -> Option<Self> {
        let parts: Vec<&str> = line.trim().split(',').collect();
        if parts.len() != 10 {
            return None;
        }
        fn opt(s: &str) -> Option<f64> {
            if s == "-" {
                None
            } else {
                s.parse().ok()
            }
        }
        Some(SweepRecord {
            benchmark: benchmark_from_label(parts[0])?,
            policy: policy_from_tag(parts[1])?,
            tmax_c: parts[2].parse().ok()?,
            gradient_c: parts[3].parse().ok()?,
            mean_efficiency: parts[4].parse().ok()?,
            mean_loss_w: parts[5].parse().ok()?,
            max_noise_pct: opt(parts[6]),
            emergency_fraction: opt(parts[7]),
            mean_active: parts[8].parse().ok()?,
            r_squared: opt(parts[9]),
        })
    }
}

/// ASCII cache tag of a policy (labels contain non-filename characters).
pub fn policy_tag(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::AllOn => "allon",
        PolicyKind::OffChip => "offchip",
        PolicyKind::Naive => "naive",
        PolicyKind::OracT => "oract",
        PolicyKind::OracV => "oracv",
        PolicyKind::OracVT => "oracvt",
        PolicyKind::PracT => "pract",
        PolicyKind::PracVT => "pracvt",
        PolicyKind::IntegralT => "integralt",
        PolicyKind::IntegralP => "integralp",
        _ => "unknown",
    }
}

/// The inverse of [`policy_tag`] (used by `tg-obs bench-snapshot
/// --policies`).
pub fn policy_from_tag(tag: &str) -> Option<PolicyKind> {
    PolicyKind::EXTENDED
        .into_iter()
        .find(|&p| policy_tag(p) == tag)
}

fn benchmark_from_label(label: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.label() == label)
}

/// The on-disk cache directory of a configuration
/// (`target/experiments/<tag>/`). Delete it to force re-runs.
pub fn cache_dir(opts: &ExpOptions) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments")
        .join(opts.tag())
}

fn cache_path(opts: &ExpOptions, benchmark: Benchmark, policy: PolicyKind) -> PathBuf {
    cache_dir(opts).join(format!("{}-{}.csv", benchmark.label(), policy_tag(policy)))
}

/// Returns the cached record for one cell, running the simulation when
/// no cache entry exists.
///
/// # Panics
///
/// Panics when the simulation itself fails (physical configurations do
/// not) or the cache directory cannot be created.
pub fn record_for(opts: &ExpOptions, benchmark: Benchmark, policy: PolicyKind) -> SweepRecord {
    record_for_cell(opts, benchmark, policy, None).0
}

/// [`record_for`] plus the cell's manifest entry when a telemetry
/// context is active: the simulation runs with a per-cell counted
/// telemetry handle, and a `sweep.cell` progress event marks its
/// completion (cache hits report zero cell events).
fn record_for_cell(
    opts: &ExpOptions,
    benchmark: Benchmark,
    policy: PolicyKind,
    ctx: Option<&TelemetryCtx>,
) -> (SweepRecord, Option<CellManifest>) {
    let label = format!("{}-{}", benchmark.label(), policy_tag(policy));
    let started = Instant::now();
    let progress = |cached: bool, events: u64| {
        if let Some(ctx) = ctx {
            let seconds = started.elapsed().as_secs_f64();
            ctx.telemetry()
                .event(EventKind::Progress, "sweep.cell")
                .field_str("cell", label.clone())
                .field_bool("cached", cached)
                .field_f64("seconds", seconds)
                .emit();
            Some(CellManifest {
                label: label.clone(),
                seconds,
                events,
                cached,
            })
        } else {
            None
        }
    };

    let path = cache_path(opts, benchmark, policy);
    if let Ok(text) = fs::read_to_string(&path) {
        if let Some(record) = SweepRecord::from_csv(&text) {
            let cell = progress(true, 0);
            return (record, cell);
        }
    }
    if !opts.quiet {
        eprintln!(
            "[sweep] running {} × {} …",
            benchmark.label(),
            policy.label()
        );
    }
    let chip = power8_like();
    let mut engine = SimulationEngine::new(&chip, opts.engine_config());
    let cell_counter = ctx.map(|ctx| {
        let (telemetry, counter) = ctx.cell_handle();
        engine.set_telemetry(telemetry);
        counter
    });
    let result = engine
        .run(benchmark, policy)
        .expect("simulation of a physical configuration succeeds");
    if !opts.quiet {
        eprintln!(
            "[sweep] {} × {} phase times:\n{}",
            benchmark.label(),
            policy.label(),
            crate::report::phase_report(result.phase_times()),
        );
    }
    let record = SweepRecord::from_result(&result);
    fs::create_dir_all(cache_dir(opts)).expect("create cache directory");
    fs::write(&path, record.to_csv()).expect("write cache entry");
    let cell = progress(false, cell_counter.map_or(0, |c| c.count()));
    (record, cell)
}

/// Emits a `sweep.heartbeat` progress event (`done` of `total` cells)
/// through the run-level handle. Fields are pure functions of the
/// completion count, so heartbeats stay deterministic.
fn heartbeat(ctx: Option<&TelemetryCtx>, done: usize, total: usize) {
    if let Some(ctx) = ctx {
        ctx.telemetry()
            .event(EventKind::Progress, "sweep.heartbeat")
            .field_u64("done", done as u64)
            .field_u64("total", total as u64)
            .field_f64("frac", done as f64 / total.max(1) as f64)
            .emit();
    }
}

/// All records of a benchmark × policy grid (cached per cell), in
/// benchmark-major order.
///
/// Cells run on [`ExpOptions::resolved_threads`] workers; every cell is
/// simulated by exactly one worker and cached under its own file, so
/// the output is independent of the thread count.
///
/// # Panics
///
/// Panics when any cell's simulation fails (physical configurations do
/// not) or the cache directory cannot be created.
pub fn grid(
    opts: &ExpOptions,
    benchmarks: &[Benchmark],
    policies: &[PolicyKind],
) -> Vec<SweepRecord> {
    let ctx = TelemetryCtx::from_options(opts);
    let cells: Vec<(Benchmark, PolicyKind)> = benchmarks
        .iter()
        .flat_map(|&b| policies.iter().map(move |&p| (b, p)))
        .collect();
    let threads = opts.resolved_threads().min(cells.len().max(1));
    let mut cell_manifests: Vec<Option<CellManifest>> = vec![None; cells.len()];
    let records: Vec<SweepRecord> = if threads <= 1 || cells.len() <= 1 {
        cells
            .iter()
            .enumerate()
            .map(|(i, &(b, p))| {
                let (record, cell) = record_for_cell(opts, b, p, ctx.as_ref());
                cell_manifests[i] = cell;
                heartbeat(ctx.as_ref(), i + 1, cells.len());
                record
            })
            .collect()
    } else {
        // Work stealing over an atomic claim counter: cells vary widely
        // in cost (policy and cache state), so static partitioning would
        // leave workers idle behind the slowest stripe.
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, SweepRecord, Option<CellManifest>)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let cells = &cells;
                let ctx = ctx.as_ref();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let (benchmark, policy) = cells[i];
                    let (record, cell) = record_for_cell(opts, benchmark, policy, ctx);
                    if tx.send((i, record, cell)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Drain results on the main thread while workers run, so
            // the `sweep.heartbeat` progress events land in the trace
            // as cells complete — a tailing watcher sees the sweep
            // advance instead of a burst at the end.
            let mut out: Vec<Option<SweepRecord>> = vec![None; cells.len()];
            let mut done = 0usize;
            for (i, record, cell) in rx {
                out[i] = Some(record);
                cell_manifests[i] = cell;
                done += 1;
                heartbeat(ctx.as_ref(), done, cells.len());
            }
            out.into_iter()
                .map(|r| r.expect("every claimed cell sends exactly one record"))
                .collect()
        })
    };

    if let Some(ctx) = &ctx {
        let mut manifest = RunManifest::new("sweep");
        manifest.push_config("tag", opts.tag());
        let bench_list: Vec<&str> = benchmarks.iter().map(|b| b.label()).collect();
        let policy_list: Vec<&str> = policies.iter().copied().map(policy_tag).collect();
        manifest.push_config("benchmarks", bench_list.join(","));
        manifest.push_config("policies", policy_list.join(","));
        manifest.threads = threads;
        manifest.cells = cell_manifests
            .into_iter()
            .map(|c| c.expect("telemetry-enabled cells report a manifest entry"))
            .collect();
        if let Err(e) = ctx.finish(&mut manifest) {
            eprintln!(
                "warning: cannot write sweep manifest into {}: {e}",
                ctx.dir().display()
            );
        }
    }
    records
}

/// Looks up one cell in a grid produced by [`grid`].
///
/// # Panics
///
/// Panics when the cell is missing.
pub fn cell(records: &[SweepRecord], benchmark: Benchmark, policy: PolicyKind) -> &SweepRecord {
    records
        .iter()
        .find(|r| r.benchmark == benchmark && r.policy == policy)
        .expect("cell present in sweep grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepRecord {
        SweepRecord {
            benchmark: Benchmark::Fft,
            policy: PolicyKind::OracVT,
            tmax_c: 66.25,
            gradient_c: 10.5,
            mean_efficiency: 0.89,
            mean_loss_w: 9.1,
            max_noise_pct: Some(22.6),
            emergency_fraction: Some(0.0041),
            mean_active: 71.5,
            r_squared: None,
        }
    }

    #[test]
    fn csv_roundtrip() {
        let r = sample();
        let line = r.to_csv();
        let back = SweepRecord::from_csv(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn csv_roundtrip_with_none_fields() {
        let mut r = sample();
        r.max_noise_pct = None;
        r.emergency_fraction = None;
        r.r_squared = Some(0.99);
        let back = SweepRecord::from_csv(&r.to_csv()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_csv_is_rejected() {
        assert!(SweepRecord::from_csv("not,a,record").is_none());
        assert!(SweepRecord::from_csv("").is_none());
    }

    #[test]
    fn policy_tags_are_unique_and_reversible() {
        let mut seen = std::collections::HashSet::new();
        for p in PolicyKind::EXTENDED {
            let tag = policy_tag(p);
            assert_ne!(tag, "unknown", "{p}");
            assert!(seen.insert(tag), "duplicate tag {tag}");
            assert_eq!(policy_from_tag(tag), Some(p));
        }
    }

    #[test]
    fn benchmark_labels_reversible() {
        for b in Benchmark::ALL {
            assert_eq!(benchmark_from_label(b.label()), Some(b));
        }
        assert_eq!(benchmark_from_label("nope"), None);
    }
}
