//! Cached benchmark × policy sweeps over the scenario service.
//!
//! The headline figures (9, 10, 11) and Table 2 all read the same
//! 14-benchmark × 8-policy grid; on a single core that sweep takes tens
//! of minutes at the paper-faithful configuration, so each
//! (benchmark, policy) cell is cached on disk after its first run. The
//! cache lives under `target/experiments/<tag>/` and is
//! content-addressed: every entry is keyed by the scenario's FNV hash
//! over the *full* [`EngineConfig`](thermogater::EngineConfig) (see
//! [`crate::service::ScenarioSpec`]), so changing any configuration
//! field — solver backend, governor gains, frame recording — forces a
//! re-run instead of silently serving stale records. Delete the
//! directory to force re-runs wholesale.
//!
//! [`grid`] streams the cells through the
//! [`service`](crate::service) batch executor: each cell is an
//! independent simulation (its engine, thermal model, and PDN are built
//! thread-locally), workers steal from a bounded queue, and the grid
//! completes in roughly `cells / min(threads, cells)` serial-cell
//! times. The worker count comes from
//! [`ExpOptions::resolved_threads`] (`--threads=N`, then
//! `SIMKIT_THREADS`, then the machine's parallelism); the produced
//! records — and the per-cell cache files — are byte-identical to a
//! serial run regardless of thread count.

use crate::context::ExpOptions;
use crate::service::{self, BatchOptions, ScenarioCache, ScenarioSpec, ServeCounters};
use crate::telemetry::TelemetryCtx;
use simkit::telemetry::manifest::{CellManifest, RunManifest};
use simkit::telemetry::EventKind;
use std::path::PathBuf;
use thermogater::{PolicyKind, SimulationResult};
use workload::Benchmark;

/// The scalar metrics of one benchmark × policy run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Benchmark simulated.
    pub benchmark: Benchmark,
    /// Policy applied.
    pub policy: PolicyKind,
    /// Temporal maximum of the chip-wide maximum temperature, °C.
    pub tmax_c: f64,
    /// Temporal maximum of the spatial thermal gradient, °C.
    pub gradient_c: f64,
    /// Time-averaged effective conversion efficiency.
    pub mean_efficiency: f64,
    /// Time-averaged total regulator conversion loss, W.
    pub mean_loss_w: f64,
    /// Maximum voltage noise, percent of Vdd (`None` for off-chip).
    pub max_noise_pct: Option<f64>,
    /// Fraction of analyzed cycles in voltage emergencies.
    pub emergency_fraction: Option<f64>,
    /// Mean number of active regulators.
    pub mean_active: f64,
    /// Thermal-predictor R² (practical policies).
    pub r_squared: Option<f64>,
}

impl SweepRecord {
    /// Extracts the scalar metrics from a full simulation result.
    pub fn from_result(result: &SimulationResult) -> Self {
        SweepRecord {
            benchmark: result.benchmark(),
            policy: result.policy(),
            tmax_c: result.max_temperature().get(),
            gradient_c: result.max_gradient(),
            mean_efficiency: result.mean_efficiency(),
            mean_loss_w: result.mean_total_vr_loss().get(),
            max_noise_pct: result.max_noise_percent(),
            emergency_fraction: result.emergency_cycle_fraction(),
            mean_active: result.mean_active_count(),
            r_squared: result.predictor_r_squared(),
        }
    }

    /// Lossless one-line CSV encoding: `{:e}` prints the shortest
    /// representation that parses back to the exact same f64, so a
    /// cache round-trip is lossless and a cache-read record equals the
    /// freshly computed one bit for bit.
    pub fn to_csv(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map_or("-".into(), |x| format!("{x:e}"))
        }
        format!(
            "{},{},{:e},{:e},{:e},{:e},{},{},{:e},{}",
            self.benchmark.label(),
            policy_tag(self.policy),
            self.tmax_c,
            self.gradient_c,
            self.mean_efficiency,
            self.mean_loss_w,
            opt(self.max_noise_pct),
            opt(self.emergency_fraction),
            self.mean_active,
            opt(self.r_squared),
        )
    }

    /// Parses one [`SweepRecord::to_csv`] line (`None` when malformed).
    pub fn from_csv(line: &str) -> Option<Self> {
        let parts: Vec<&str> = line.trim().split(',').collect();
        if parts.len() != 10 {
            return None;
        }
        fn opt(s: &str) -> Option<f64> {
            if s == "-" {
                None
            } else {
                s.parse().ok()
            }
        }
        Some(SweepRecord {
            benchmark: benchmark_from_label(parts[0])?,
            policy: policy_from_tag(parts[1])?,
            tmax_c: parts[2].parse().ok()?,
            gradient_c: parts[3].parse().ok()?,
            mean_efficiency: parts[4].parse().ok()?,
            mean_loss_w: parts[5].parse().ok()?,
            max_noise_pct: opt(parts[6]),
            emergency_fraction: opt(parts[7]),
            mean_active: parts[8].parse().ok()?,
            r_squared: opt(parts[9]),
        })
    }
}

/// ASCII cache tag of a policy (labels contain non-filename
/// characters). The match is exhaustive on purpose: adding a
/// `PolicyKind` variant without a unique tag is a compile error, never
/// a silent cache-file collision.
pub fn policy_tag(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::AllOn => "allon",
        PolicyKind::OffChip => "offchip",
        PolicyKind::Naive => "naive",
        PolicyKind::OracT => "oract",
        PolicyKind::OracV => "oracv",
        PolicyKind::OracVT => "oracvt",
        PolicyKind::PracT => "pract",
        PolicyKind::PracVT => "pracvt",
        PolicyKind::IntegralT => "integralt",
        PolicyKind::IntegralP => "integralp",
    }
}

/// The inverse of [`policy_tag`] (used by `tg-obs bench-snapshot
/// --policies`).
pub fn policy_from_tag(tag: &str) -> Option<PolicyKind> {
    PolicyKind::EXTENDED
        .into_iter()
        .find(|&p| policy_tag(p) == tag)
}

/// Resolves a benchmark from its [`Benchmark::label`] (used by the
/// record codec and the `tg-serve` request parser).
pub fn benchmark_from_label(label: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.label() == label)
}

/// The on-disk cache directory of a configuration
/// (`target/experiments/<tag>/`). Delete it to force re-runs.
pub fn cache_dir(opts: &ExpOptions) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments")
        .join(opts.tag())
}

/// The content-addressed cache of a configuration: the directory above,
/// entries keyed by scenario hash (see [`crate::service::ScenarioCache`]).
pub fn cache(opts: &ExpOptions) -> ScenarioCache {
    ScenarioCache::new(cache_dir(opts))
}

/// The scenario of one sweep cell under `opts`' engine configuration.
pub fn scenario(opts: &ExpOptions, benchmark: Benchmark, policy: PolicyKind) -> ScenarioSpec {
    ScenarioSpec::new(benchmark, policy, opts.engine_config())
}

/// The cache-entry path of one cell (tests and tooling use this to
/// inspect or delete individual entries).
pub fn cache_path(opts: &ExpOptions, benchmark: Benchmark, policy: PolicyKind) -> PathBuf {
    cache(opts).path(&scenario(opts, benchmark, policy))
}

/// Returns the cached record for one cell, running the simulation when
/// no cache entry exists (or loudly re-running when the entry is
/// invalid).
///
/// # Panics
///
/// Panics when the simulation itself fails (physical configurations do
/// not) or the cache directory cannot be created.
pub fn record_for(opts: &ExpOptions, benchmark: Benchmark, policy: PolicyKind) -> SweepRecord {
    let counters = ServeCounters::default();
    service::answer_one(
        &cache(opts),
        &scenario(opts, benchmark, policy),
        None,
        &counters,
        opts.quiet,
    )
    .record
}

/// Emits a `sweep.heartbeat` progress event (`done` of `total` cells)
/// through the run-level handle. Fields are pure functions of the
/// completion count, so heartbeats stay deterministic.
fn heartbeat(ctx: Option<&TelemetryCtx>, done: usize, total: usize) {
    if let Some(ctx) = ctx {
        ctx.telemetry()
            .event(EventKind::Progress, "sweep.heartbeat")
            .field_u64("done", done as u64)
            .field_u64("total", total as u64)
            .field_f64("frac", done as f64 / total.max(1) as f64)
            .emit();
    }
}

/// All records of a benchmark × policy grid (content-addressed cache
/// per cell), in benchmark-major order.
///
/// Cells stream through the [`service`](crate::service) batch
/// executor on [`ExpOptions::resolved_threads`] workers: cached hashes
/// never touch the engine, every missing hash is simulated by exactly
/// one worker (identical in-flight cells coalesce), and the records
/// come back in submission order, so the output is independent of the
/// thread count.
///
/// # Panics
///
/// Panics when any cell's simulation fails (physical configurations do
/// not) or the cache directory cannot be created.
pub fn grid(
    opts: &ExpOptions,
    benchmarks: &[Benchmark],
    policies: &[PolicyKind],
) -> Vec<SweepRecord> {
    let ctx = TelemetryCtx::from_options(opts);
    let cells: Vec<(Benchmark, PolicyKind)> = benchmarks
        .iter()
        .flat_map(|&b| policies.iter().map(move |&p| (b, p)))
        .collect();
    let threads = opts.resolved_threads().min(cells.len().max(1));
    let config = opts.engine_config();
    let specs = cells
        .iter()
        .map(|&(b, p)| ScenarioSpec::new(b, p, config.clone()));
    let counters = ServeCounters::default();
    let batch = BatchOptions {
        quiet: opts.quiet,
        ..BatchOptions::for_threads(threads)
    };
    let mut records: Vec<SweepRecord> = Vec::with_capacity(cells.len());
    let mut cell_manifests: Vec<CellManifest> = Vec::with_capacity(cells.len());
    let total = cells.len();
    service::run_batch(
        &cache(opts),
        specs,
        &batch,
        ctx.as_ref(),
        &counters,
        |outcome| {
            if ctx.is_some() {
                let (b, p) = cells[outcome.index];
                let label = format!("{}-{}", b.label(), policy_tag(p));
                cell_manifests.push(service::cell_manifest(&outcome, label));
            }
            records.push(outcome.record);
            heartbeat(ctx.as_ref(), records.len(), total);
        },
    );

    if let Some(ctx) = &ctx {
        counters.emit(ctx);
        let mut manifest = RunManifest::new("sweep");
        manifest.push_config("tag", opts.tag());
        let bench_list: Vec<&str> = benchmarks.iter().map(|b| b.label()).collect();
        let policy_list: Vec<&str> = policies.iter().copied().map(policy_tag).collect();
        manifest.push_config("benchmarks", bench_list.join(","));
        manifest.push_config("policies", policy_list.join(","));
        manifest.threads = threads;
        manifest.cells = cell_manifests;
        if let Err(e) = ctx.finish(&mut manifest) {
            eprintln!(
                "warning: cannot write sweep manifest into {}: {e}",
                ctx.dir().display()
            );
        }
    }
    records
}

/// Looks up one cell in a grid produced by [`grid`].
///
/// # Panics
///
/// Panics when the cell is missing.
pub fn cell(records: &[SweepRecord], benchmark: Benchmark, policy: PolicyKind) -> &SweepRecord {
    records
        .iter()
        .find(|r| r.benchmark == benchmark && r.policy == policy)
        .expect("cell present in sweep grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepRecord {
        SweepRecord {
            benchmark: Benchmark::Fft,
            policy: PolicyKind::OracVT,
            tmax_c: 66.25,
            gradient_c: 10.5,
            mean_efficiency: 0.89,
            mean_loss_w: 9.1,
            max_noise_pct: Some(22.6),
            emergency_fraction: Some(0.0041),
            mean_active: 71.5,
            r_squared: None,
        }
    }

    #[test]
    fn csv_roundtrip() {
        let r = sample();
        let line = r.to_csv();
        let back = SweepRecord::from_csv(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn csv_roundtrip_with_none_fields() {
        let mut r = sample();
        r.max_noise_pct = None;
        r.emergency_fraction = None;
        r.r_squared = Some(0.99);
        let back = SweepRecord::from_csv(&r.to_csv()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_csv_is_rejected() {
        assert!(SweepRecord::from_csv("not,a,record").is_none());
        assert!(SweepRecord::from_csv("").is_none());
    }

    #[test]
    fn policy_tags_are_unique_and_reversible() {
        let mut seen = std::collections::HashSet::new();
        for p in PolicyKind::EXTENDED {
            let tag = policy_tag(p);
            assert_ne!(tag, "unknown", "{p}");
            assert!(seen.insert(tag), "duplicate tag {tag}");
            assert_eq!(policy_from_tag(tag), Some(p));
        }
    }

    #[test]
    fn benchmark_labels_reversible() {
        for b in Benchmark::ALL {
            assert_eq!(benchmark_from_label(b.label()), Some(b));
        }
        assert_eq!(benchmark_from_label("nope"), None);
    }
}
