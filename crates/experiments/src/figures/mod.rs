//! Per-artefact data builders.
//!
//! Every module returns plain data the binaries (and the Criterion
//! benches) render; nothing here prints.

pub mod ablations;
pub mod noise_figs;
pub mod powerloss;
pub mod regulator;
pub mod thermal_figs;
