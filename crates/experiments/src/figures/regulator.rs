//! Fig. 1, Fig. 2, and Fig. 5 — regulator efficiency characteristics.

use simkit::units::Amps;
use vreg::{survey, EfficiencyCurve, RegulatorBank, RegulatorDesign};

/// One labelled η-vs-current curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledCurve {
    /// Legend label (citation tag or active-phase count).
    pub label: String,
    /// `(I_out amps, η)` samples.
    pub points: Vec<(f64, f64)>,
}

/// Fig. 1: the reported efficiency curves of the eight ISSCC 2015
/// designs.
pub fn fig01_curves() -> Vec<LabelledCurve> {
    survey::isscc2015()
        .into_iter()
        .map(|entry| LabelledCurve {
            label: format!("{} {}", entry.tag, entry.description),
            points: entry.curve.points().to_vec(),
        })
        .collect()
}

/// A multi-phase regulator's curve family plus the effective curve that
/// phase gating achieves.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseFamily {
    /// One curve per active-phase count.
    pub per_count: Vec<LabelledCurve>,
    /// The gated effective curve (the dotted trend line of Fig. 2/5).
    pub effective: LabelledCurve,
}

/// Builds the η-vs-I_out family of a bank of `total` phases for the given
/// active-phase counts, sampling each curve at `samples` points up to the
/// bank's full-load current.
///
/// # Panics
///
/// Panics when a count is zero or exceeds `total`.
pub fn phase_family(
    design: &RegulatorDesign,
    total: usize,
    counts: &[usize],
    samples: usize,
) -> PhaseFamily {
    let bank = RegulatorBank::new(design.clone(), total);
    let i_full = design.peak_current() * total as f64 * 1.2;
    let per_count = counts
        .iter()
        .map(|&n| {
            assert!(n >= 1 && n <= total, "invalid phase count {n}");
            let points = (1..=samples)
                .map(|k| {
                    let i = i_full * (k as f64 / samples as f64);
                    let eta = bank
                        .efficiency(Amps::new(i.get()), n)
                        .expect("validated count");
                    (i.get(), eta)
                })
                .collect();
            LabelledCurve {
                label: format!("{n} active"),
                points,
            }
        })
        .collect();
    let effective = LabelledCurve {
        label: "effective".to_string(),
        points: bank.effective_curve(i_full, samples),
    };
    PhaseFamily {
        per_count,
        effective,
    }
}

/// Fig. 2: the 16-phase Intel buck regulator — phases of ≈0.94 A each so
/// the full bank covers the figure's 0–15 A axis.
pub fn fig02_family() -> PhaseFamily {
    let curve =
        EfficiencyCurve::scaled_reference(0.90, Amps::new(15.0 / 16.0)).expect("static parameters");
    let design = RegulatorDesign::new(
        "Intel-16phase",
        vreg::RegulatorTopology::Buck,
        curve,
        33.6,
        simkit::units::Seconds::from_nanos(15.0),
    );
    phase_family(&design, 16, &[2, 4, 8, 12, 16], 120)
}

/// Fig. 5: the calibration family used throughout the evaluation — a
/// per-core domain of 9 FIVR-like phases (1.5 A each at η_peak = 90 %).
pub fn fig05_family() -> PhaseFamily {
    phase_family(&RegulatorDesign::fivr(), 9, &[2, 3, 4, 6, 8, 9], 120)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_has_eight_designs() {
        let curves = fig01_curves();
        assert_eq!(curves.len(), 8);
        assert!(curves.iter().all(|c| !c.points.is_empty()));
    }

    #[test]
    fn fig02_counts_match_figure_legend() {
        let fam = fig02_family();
        let labels: Vec<_> = fam.per_count.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["2 active", "4 active", "8 active", "12 active", "16 active"]
        );
        // Full bank covers ≥ 15 A.
        let max_i = fam.effective.points.last().map(|&(i, _)| i).unwrap_or(0.0);
        assert!(max_i >= 15.0, "axis reach {max_i}");
    }

    #[test]
    fn each_count_peaks_at_increasing_current() {
        let fam = fig05_family();
        let mut prev_peak = 0.0;
        for curve in &fam.per_count {
            let (peak_i, _) = curve
                .points
                .iter()
                .copied()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!(peak_i > prev_peak, "{}: {peak_i}", curve.label);
            prev_peak = peak_i;
        }
    }

    #[test]
    fn effective_curve_tracks_peak_efficiency() {
        // Past the first phase's ramp, the gated effective curve stays
        // within ~1.5 % of η_peak (the near-flat dotted line of Fig. 5).
        // It may dip marginally below a fixed-count curve right past an
        // n_on boundary, because `required_active` never overloads a
        // phase beyond its rated peak current.
        let fam = fig05_family();
        let eta_peak = RegulatorDesign::fivr().peak_efficiency();
        for &(i, eta_eff) in &fam.effective.points {
            if i < 3.0 {
                continue; // the 1→2→3 phase steps still ride the ramp
            }
            assert!(
                eta_eff > eta_peak - 0.015,
                "effective {eta_eff} too far below peak at {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid phase count")]
    fn zero_count_panics() {
        phase_family(&RegulatorDesign::fivr(), 9, &[0], 10);
    }
}
