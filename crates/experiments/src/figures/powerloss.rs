//! Fig. 6 and Fig. 7 — regulator-count tracking and conversion-loss
//! savings.

use crate::context::ExpOptions;
use crate::sweep;
use floorplan::reference::power8_like;
use thermogater::{PolicyKind, SimulationEngine};
use workload::Benchmark;

/// Fig. 6 data: the evolution of the demand-driven active-regulator
/// count against the total power demand over time (lu_ncb, Section 6.1's
/// thermally-oblivious peak-efficiency gating).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig06Data {
    /// Sample times, ms.
    pub time_ms: Vec<f64>,
    /// Total chip power demand, W.
    pub power_w: Vec<f64>,
    /// Cumulative `n_on` over all domains required to sustain peak
    /// efficiency at each instant.
    pub active: Vec<f64>,
}

/// Builds Fig. 6 by simulating `lu_ncb` and reading the demand-driven
/// regulator-count series.
pub fn fig06(opts: &ExpOptions) -> Fig06Data {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, opts.engine_config());
    let result = engine
        .run(Benchmark::LuNcb, PolicyKind::OracT)
        .expect("physical configuration simulates");
    let dt_ms = result.total_power().dt().as_millis();
    let time_ms: Vec<f64> = (0..result.total_power().len())
        .map(|i| i as f64 * dt_ms)
        .collect();
    Fig06Data {
        time_ms,
        power_w: result.total_power().values().to_vec(),
        active: result.required_count().values().to_vec(),
    }
}

/// One row of Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// % conversion-loss saving of gating vs. keeping all 96 regulators
    /// on.
    pub saving_pct: f64,
    /// The value the paper reports, where it states one explicitly.
    pub paper_pct: Option<f64>,
}

/// Fig. 7: per-benchmark regulator conversion-loss saving under optimal
/// (peak-efficiency) gating vs. the all-on baseline.
pub fn fig07(opts: &ExpOptions) -> Vec<Fig07Row> {
    Benchmark::ALL
        .iter()
        .map(|&benchmark| {
            let all_on = sweep::record_for(opts, benchmark, PolicyKind::AllOn);
            let gated = sweep::record_for(opts, benchmark, PolicyKind::OracT);
            let saving_pct = (1.0 - gated.mean_loss_w / all_on.mean_loss_w) * 100.0;
            Fig07Row {
                benchmark,
                saving_pct,
                paper_pct: paper_saving(benchmark),
            }
        })
        .collect()
}

/// The savings the paper quotes explicitly in Section 6.1.
fn paper_saving(benchmark: Benchmark) -> Option<f64> {
    match benchmark {
        Benchmark::Cholesky => Some(10.4),
        Benchmark::Raytrace => Some(49.8),
        _ => None,
    }
}

/// The paper's reported average saving across the suite (26.5 %).
pub const PAPER_AVERAGE_SAVING_PCT: f64 = 26.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchors_are_the_section61_numbers() {
        assert_eq!(paper_saving(Benchmark::Cholesky), Some(10.4));
        assert_eq!(paper_saving(Benchmark::Raytrace), Some(49.8));
        assert_eq!(paper_saving(Benchmark::Fft), None);
        assert!((PAPER_AVERAGE_SAVING_PCT - 26.5).abs() < 1e-12);
    }
}
