//! Fig. 8, Fig. 12, and Fig. 13 — thermal traces, heat maps, and
//! regulator activity. (Figs. 9/10 read the shared sweep directly.)

use crate::context::ExpOptions;
use floorplan::reference::power8_like;
use floorplan::{DomainKind, VrId, VrNeighborhood};
use thermogater::{PolicyKind, SimulationEngine};
use workload::Benchmark;

/// Fig. 8 data: the temperature and on/off trace of the regulator that
/// toggles the most under Naïve gating.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig08Data {
    /// The showcased regulator.
    pub vr: VrId,
    /// Sample times, ms.
    pub time_ms: Vec<f64>,
    /// Regulator temperature, °C.
    pub temperature_c: Vec<f64>,
    /// On/off state at each sample (step-wise constant per decision).
    pub state_on: Vec<bool>,
    /// Peak-to-peak temperature swing of the showcased regulator, °C.
    pub swing_c: f64,
}

/// Builds Fig. 8 by simulating `lu_ncb` under the Naïve policy.
pub fn fig08(opts: &ExpOptions) -> Fig08Data {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, opts.engine_config());
    let result = engine
        .run(Benchmark::LuNcb, PolicyKind::Naive)
        .expect("physical configuration simulates");

    // The showcased regulator: among those Naïve actually toggles, the
    // one with the largest temperature swing.
    let n_vrs = chip.vr_sites().len();
    let toggles = |vr: VrId| {
        result
            .decisions()
            .windows(2)
            .filter(|w| w[0].gating.is_on(vr) != w[1].gating.is_on(vr))
            .count()
    };
    let swing = |vr: VrId| {
        let t = result.vr_temperatures().channel(vr.0);
        t.iter().copied().fold(f64::MIN, f64::max) - t.iter().copied().fold(f64::MAX, f64::min)
    };
    let vr = (0..n_vrs)
        .map(VrId)
        .filter(|&v| toggles(v) >= 2)
        .max_by(|&a, &b| swing(a).partial_cmp(&swing(b)).expect("finite temps"))
        .unwrap_or(VrId(0));

    let temps = result.vr_temperatures().channel(vr.0).to_vec();
    let dt_ms = result.vr_temperatures().dt().as_millis();
    let time_ms: Vec<f64> = (0..temps.len()).map(|i| i as f64 * dt_ms).collect();
    let steps_per_decision = temps.len() / result.decisions().len();
    let state_on: Vec<bool> = (0..temps.len())
        .map(|s| {
            let k = (s / steps_per_decision).min(result.decisions().len() - 1);
            result.decisions()[k].gating.is_on(vr)
        })
        .collect();
    let max = temps.iter().copied().fold(f64::MIN, f64::max);
    let min = temps.iter().copied().fold(f64::MAX, f64::min);
    Fig08Data {
        vr,
        time_ms,
        temperature_c: temps,
        state_on,
        swing_c: max - min,
    }
}

/// One Fig. 12 frame: the heat map at the instant of T_max.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Frame {
    /// The policy of this frame.
    pub policy: PolicyKind,
    /// Silicon heat map (rows bottom-first, °C).
    pub heatmap: Vec<Vec<f64>>,
    /// The temporal maximum chip temperature, °C.
    pub tmax_c: f64,
}

/// Builds the four Fig. 12 frames (cholesky under off-chip / all-on /
/// OracT / OracV).
pub fn fig12(opts: &ExpOptions) -> Vec<Fig12Frame> {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, opts.engine_config());
    [
        PolicyKind::OffChip,
        PolicyKind::AllOn,
        PolicyKind::OracT,
        PolicyKind::OracV,
    ]
    .into_iter()
    .map(|policy| {
        let result = engine
            .run(Benchmark::Cholesky, policy)
            .expect("physical configuration simulates");
        Fig12Frame {
            policy,
            heatmap: result.heatmap_at_tmax().to_vec(),
            tmax_c: result.max_temperature().get(),
        }
    })
    .collect()
}

/// One regulator's activity bar of Fig. 13.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityBar {
    /// The regulator.
    pub vr: VrId,
    /// Whether it neighbors logic (left group) or memory (right group).
    pub neighborhood: VrNeighborhood,
    /// Fraction of decisions during which it was on.
    pub activity: f64,
}

/// Fig. 13 data: per-core-domain regulator activity under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Data {
    /// The 72 per-core-domain regulators' bars, logic group first.
    pub bars: Vec<ActivityBar>,
    /// Mean activity of the logic-neighborhood group.
    pub logic_mean: f64,
    /// Mean activity of the memory-neighborhood group.
    pub memory_mean: f64,
}

/// Builds one Fig. 13 panel by simulating `lu_ncb` under `policy`
/// (the paper contrasts OracT and OracV).
pub fn fig13(opts: &ExpOptions, policy: PolicyKind) -> Fig13Data {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, opts.engine_config());
    let result = engine
        .run(Benchmark::LuNcb, policy)
        .expect("physical configuration simulates");

    let mut bars: Vec<ActivityBar> = chip
        .domains()
        .iter()
        .filter(|d| d.kind() == DomainKind::Core)
        .flat_map(|d| d.vrs().iter().copied())
        .map(|vr| ActivityBar {
            vr,
            neighborhood: chip.vr_site(vr).neighborhood(),
            activity: result.vr_activity_fraction(vr),
        })
        .collect();
    // Logic group on the left, as in the figure.
    bars.sort_by_key(|b| (b.neighborhood == VrNeighborhood::Memory, b.vr.0));
    let mean = |hood: VrNeighborhood| {
        let group: Vec<f64> = bars
            .iter()
            .filter(|b| b.neighborhood == hood)
            .map(|b| b.activity)
            .collect();
        group.iter().sum::<f64>() / group.len().max(1) as f64
    };
    Fig13Data {
        logic_mean: mean(VrNeighborhood::Logic),
        memory_mean: mean(VrNeighborhood::Memory),
        bars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end figure builders are exercised by the integration tests
    // and the binaries; here we only check cheap invariants of the data
    // types.

    #[test]
    fn fig12_policies_match_the_paper_frames() {
        let frames = [
            PolicyKind::OffChip,
            PolicyKind::AllOn,
            PolicyKind::OracT,
            PolicyKind::OracV,
        ];
        assert_eq!(frames.len(), 4);
    }

    #[test]
    fn activity_bar_is_plain_data() {
        let bar = ActivityBar {
            vr: VrId(3),
            neighborhood: VrNeighborhood::Logic,
            activity: 0.75,
        };
        assert_eq!(bar.vr, VrId(3));
        assert!((bar.activity - 0.75).abs() < 1e-12);
    }
}
