//! Fig. 14, Fig. 15, and Table 2 — voltage-noise artefacts. (Fig. 11
//! reads the shared sweep directly.)

use crate::context::ExpOptions;
use crate::sweep;
use floorplan::reference::power8_like;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use vreg::RegulatorDesign;
use workload::Benchmark;

/// Fig. 14 data: the worst sampled window's per-cycle noise trace under
/// OracT vs. OracV (fft — the application with the worst OracT noise).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Data {
    /// Per-cycle noise (% of Vdd) under OracT.
    pub oract: Vec<f64>,
    /// Per-cycle noise (% of Vdd) under OracV.
    pub oracv: Vec<f64>,
}

/// Builds Fig. 14 by simulating `fft` under both policies.
pub fn fig14(opts: &ExpOptions) -> Fig14Data {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, opts.engine_config());
    let trace = |policy| {
        engine
            .run(Benchmark::Fft, policy)
            .expect("physical configuration simulates")
            .worst_window_trace()
            .expect("noise analyzed for gating policies")
            .to_vec()
    };
    Fig14Data {
        oract: trace(PolicyKind::OracT),
        oracv: trace(PolicyKind::OracV),
    }
}

/// One Fig. 15 row: maximum all-on voltage noise under the LDO- vs.
/// FIVR-based regulator design.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Max noise (% of Vdd), POWER8-like LDO design.
    pub ldo_pct: f64,
    /// Max noise (% of Vdd), Intel-FIVR-like design.
    pub fivr_pct: f64,
}

/// Builds Fig. 15: all regulators on, both designs, every benchmark.
/// The FIVR column reuses the shared sweep cache; the LDO runs use a
/// configuration with [`RegulatorDesign::power8_ldo`].
pub fn fig15(opts: &ExpOptions) -> Vec<Fig15Row> {
    let chip = power8_like();
    let ldo_config = EngineConfig {
        design: RegulatorDesign::power8_ldo(),
        ..opts.engine_config()
    };
    let ldo_engine = SimulationEngine::new(&chip, ldo_config);
    Benchmark::ALL
        .iter()
        .map(|&benchmark| {
            let fivr = sweep::record_for(opts, benchmark, PolicyKind::AllOn)
                .max_noise_pct
                .expect("all-on analyzes noise");
            eprintln!("[fig15] running {} × LDO …", benchmark.label());
            let ldo = ldo_engine
                .run(benchmark, PolicyKind::AllOn)
                .expect("physical configuration simulates")
                .max_noise_percent()
                .expect("all-on analyzes noise");
            Fig15Row {
                benchmark,
                ldo_pct: ldo,
                fivr_pct: fivr,
            }
        })
        .collect()
}

/// One Table 2 entry: % of execution time spent in voltage emergencies
/// under OracT.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// % of analyzed cycles in emergency.
    pub pct: f64,
    /// The paper's reported value, where stated.
    pub paper_pct: Option<f64>,
}

/// Builds Table 2 from the shared sweep.
pub fn table2(opts: &ExpOptions) -> Vec<Table2Row> {
    Benchmark::ALL
        .iter()
        .map(|&benchmark| {
            let record = sweep::record_for(opts, benchmark, PolicyKind::OracT);
            Table2Row {
                benchmark,
                pct: record.emergency_fraction.unwrap_or(0.0) * 100.0,
                paper_pct: paper_emergency_pct(benchmark),
            }
        })
        .collect()
}

/// Table 2's reported non-zero values (% execution time, under OracT).
fn paper_emergency_pct(benchmark: Benchmark) -> Option<f64> {
    match benchmark {
        Benchmark::Barnes => Some(0.67),
        Benchmark::Cholesky => Some(0.001),
        Benchmark::Fft => Some(0.49),
        Benchmark::Fmm => Some(0.024),
        Benchmark::OceanCp => Some(0.50),
        Benchmark::OceanNcp => Some(0.002),
        Benchmark::Radiosity => Some(0.008),
        Benchmark::Radix => Some(0.06),
        Benchmark::Raytrace => Some(0.032),
        Benchmark::Volrend => Some(0.002),
        Benchmark::WaterSpatial => Some(0.11),
        // lu_cb, lu_ncb, water_n have zero entries (omitted in Table 2).
        _ => None,
    }
}

/// The paper's reported average emergency residency (0.13 %).
pub const PAPER_AVERAGE_EMERGENCY_PCT: f64 = 0.13;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_anchors_match_paper() {
        assert_eq!(paper_emergency_pct(Benchmark::Barnes), Some(0.67));
        assert_eq!(paper_emergency_pct(Benchmark::Fft), Some(0.49));
        assert_eq!(paper_emergency_pct(Benchmark::LuNcb), None);
        let listed = Benchmark::ALL
            .iter()
            .filter(|&&b| paper_emergency_pct(b).is_some())
            .count();
        // The paper lists 11 non-zero applications (+ AVG).
        assert_eq!(listed, 11);
    }
}
