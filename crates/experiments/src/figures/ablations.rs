//! Ablations and discussion-section (Section 7 / Section 5) studies:
//!
//! * footnote 5 — shortening the 1 ms gating interval 100× changes the
//!   results by less than 1 %;
//! * Section 5 — the voltage-noise-optimized regulator placement differs
//!   from the uniform one by < 0.4 % maximum noise, and the observations
//!   hold under better cooling;
//! * Section 6.3 — the ΔT = θ·ΔP predictor reaches R² ≈ 0.99;
//! * Section 7 — gating policies' effect on regulator aging, and
//!   multiprogrammed (per-core heterogeneous) workloads.

use crate::context::ExpOptions;
use floorplan::reference::power8_like;
use pdn::placement::{optimize_placement, PlacementOutcome};
use pdn::PdnConfig;
use power::{PowerModel, TechnologyParams};
use simkit::units::{Celsius, Seconds, Watts};
use thermal::{PackageParams, ThermalConfig};
use thermogater::{AgingModel, EngineConfig, PolicyKind, SimulationEngine};
use workload::{Benchmark, TraceGenerator, WorkloadMix, WorkloadSpec};

/// One row of the gating-interval ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRow {
    /// Decision interval, µs.
    pub interval_us: f64,
    /// Maximum chip temperature, °C.
    pub tmax_c: f64,
    /// Maximum thermal gradient, °C.
    pub gradient_c: f64,
    /// Mean total regulator conversion loss, W.
    pub mean_loss_w: f64,
}

/// Runs `lu_ncb` under OracT at 1 ms, 100 µs, and 10 µs decision
/// intervals (1×, 10×, 100× shorter). A common 10 µs thermal step keeps
/// the physics identical across rows.
pub fn ablation_interval(opts: &ExpOptions) -> Vec<IntervalRow> {
    let chip = power8_like();
    let base = opts.engine_config();
    [1000.0, 100.0, 10.0]
        .into_iter()
        .map(|interval_us| {
            let config = EngineConfig {
                decision_interval: Seconds::from_micros(interval_us),
                thermal_step: Seconds::from_micros(10.0),
                // Noise windows are orthogonal to this ablation; keep the
                // cost down.
                noise_window_count: 8,
                ..base.clone()
            };
            let engine = SimulationEngine::new(&chip, config);
            let result = engine
                .run(Benchmark::LuNcb, PolicyKind::OracT)
                .expect("physical configuration simulates");
            IntervalRow {
                interval_us,
                tmax_c: result.max_temperature().get(),
                gradient_c: result.max_gradient(),
                mean_loss_w: result.mean_total_vr_loss().get(),
            }
        })
        .collect()
}

/// Runs the Walking-Pads-style placement optimisation against the
/// uniform placement, under an fft-like load.
pub fn ablation_placement(opts: &ExpOptions) -> PlacementOutcome {
    let mut chip = power8_like();
    let power = PowerModel::calibrated(&chip, TechnologyParams::table1());
    let trace = TraceGenerator::new(&chip).generate(
        Benchmark::Fft,
        Seconds::from_millis(if opts.quick { 1.0 } else { 4.0 }),
    );
    let powers: Vec<Watts> = chip
        .blocks()
        .iter()
        .map(|b| {
            let ch = trace.activity().channel(b.id().0);
            let mean = ch.iter().sum::<f64>() / ch.len() as f64;
            power.block_power(b.id(), mean, Celsius::new(70.0))
        })
        .collect();
    let passes = if opts.quick { 2 } else { 6 };
    optimize_placement(&mut chip, &PdnConfig::reference(), &powers, 0.25, passes)
        .expect("placement optimisation completes")
}

/// One row of the predictor-accuracy ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct R2Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// In-sample R² of the calibrated ΔT = θ·ΔP model.
    pub r_squared: f64,
}

/// Calibrates the thermal predictor on each benchmark and reports R²
/// (the paper keeps it around 0.99).
pub fn ablation_r2(opts: &ExpOptions) -> Vec<R2Row> {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, opts.engine_config());
    Benchmark::ALL
        .iter()
        .map(|&benchmark| {
            eprintln!("[r2] calibrating {} …", benchmark.label());
            let (_predictor, r_squared) = engine
                .calibrate_predictor(benchmark)
                .expect("profiling pass completes");
            R2Row {
                benchmark,
                r_squared,
            }
        })
        .collect()
}

/// One row of the aging study.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingRow {
    /// Policy assessed.
    pub policy: PolicyKind,
    /// Aging imbalance (max wear / mean wear) across the 96 regulators.
    pub imbalance: f64,
    /// Worst-regulator wear relative to reference-temperature operation.
    pub max_wear: f64,
    /// Relative MTTF of the fleet (1 / max wear).
    pub relative_mttf: f64,
}

/// Section 7's aging discussion: assess per-regulator wear under each
/// gating policy on `lu_ncb` with an electromigration-class Arrhenius
/// model.
pub fn ablation_aging(opts: &ExpOptions) -> Vec<AgingRow> {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, opts.engine_config());
    let model = AgingModel::electromigration();
    [
        PolicyKind::AllOn,
        PolicyKind::Naive,
        PolicyKind::OracT,
        PolicyKind::OracV,
        PolicyKind::PracVT,
    ]
    .into_iter()
    .map(|policy| {
        eprintln!("[aging] running {} …", policy.label());
        let result = engine
            .run(Benchmark::LuNcb, policy)
            .expect("physical configuration simulates");
        let report = model.assess(&result);
        AgingRow {
            policy,
            imbalance: report.imbalance(),
            max_wear: report.max_wear(),
            relative_mttf: report.relative_mttf(),
        }
    })
    .collect()
}

/// One row of the better-cooling study.
#[derive(Debug, Clone, PartialEq)]
pub struct CoolingRow {
    /// Policy assessed.
    pub policy: PolicyKind,
    /// T_max under the default air-cooled package, °C.
    pub tmax_air: f64,
    /// T_max under the improved cooling solution, °C.
    pub tmax_improved: f64,
}

/// Section 5's claim that the observations hold under better cooling:
/// re-run the key policies on `lu_ncb` with a lower-resistance package
/// and confirm the ordering survives.
pub fn ablation_cooling(opts: &ExpOptions) -> Vec<CoolingRow> {
    let chip = power8_like();
    let base_cfg = opts.engine_config();
    let improved_cfg = EngineConfig {
        thermal: ThermalConfig {
            package: PackageParams::improved_cooling(),
            ..base_cfg.thermal.clone()
        },
        ..base_cfg.clone()
    };
    let air = SimulationEngine::new(&chip, base_cfg);
    let improved = SimulationEngine::new(&chip, improved_cfg);
    [
        PolicyKind::OffChip,
        PolicyKind::AllOn,
        PolicyKind::OracT,
        PolicyKind::OracV,
    ]
    .into_iter()
    .map(|policy| {
        eprintln!("[cooling] running {} …", policy.label());
        let run = |engine: &SimulationEngine<'_>| {
            engine
                .run(Benchmark::LuNcb, policy)
                .expect("physical configuration simulates")
                .max_temperature()
                .get()
        };
        CoolingRow {
            policy,
            tmax_air: run(&air),
            tmax_improved: run(&improved),
        }
    })
    .collect()
}

/// One row of the regulator-count study.
#[derive(Debug, Clone, PartialEq)]
pub struct VrCountRow {
    /// Component regulators per core domain.
    pub core_vrs: usize,
    /// Component regulators per L3-bank domain.
    pub l3_vrs: usize,
    /// Maximum chip temperature under all-on, °C.
    pub tmax_allon_c: f64,
    /// Maximum voltage noise under all-on, % of Vdd.
    pub noise_allon_pct: Option<f64>,
    /// Maximum chip temperature under OracT, °C.
    pub tmax_oract_c: f64,
    /// Maximum voltage noise under OracT, % of Vdd.
    pub noise_oract_pct: Option<f64>,
}

/// Footnote 2 of the paper: "A lower regulator count worsens both the
/// thermal and the voltage noise profile." Sweeps the per-domain
/// regulator count on `lu_ncb`. The all-on columns show the network
/// effect footnote 2 describes; the OracT columns show how much placement
/// freedom thermally-aware gating gains from a denser network.
pub fn ablation_vr_count(opts: &ExpOptions) -> Vec<VrCountRow> {
    [(4usize, 2usize), (6, 2), (9, 3), (12, 4)]
        .into_iter()
        .map(|(core_vrs, l3_vrs)| {
            eprintln!("[vr-count] running {core_vrs}/{l3_vrs} …");
            let chip = floorplan::reference::power8_like_with_vr_counts(core_vrs, l3_vrs);
            let engine = SimulationEngine::new(&chip, opts.engine_config());
            let all_on = engine
                .run(Benchmark::LuNcb, PolicyKind::AllOn)
                .expect("physical configuration simulates");
            let oract = engine
                .run(Benchmark::LuNcb, PolicyKind::OracT)
                .expect("physical configuration simulates");
            VrCountRow {
                core_vrs,
                l3_vrs,
                tmax_allon_c: all_on.max_temperature().get(),
                noise_allon_pct: all_on.max_noise_percent(),
                tmax_oract_c: oract.max_temperature().get(),
                noise_oract_pct: oract.max_noise_percent(),
            }
        })
        .collect()
}

/// One row of the thermally-aware-placement study.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalPlacementRow {
    /// Placement label.
    pub placement: &'static str,
    /// Policy assessed.
    pub policy: PolicyKind,
    /// Maximum chip temperature, °C.
    pub tmax_c: f64,
    /// Maximum voltage noise, % of Vdd.
    pub max_noise_pct: Option<f64>,
}

/// Section 7's closing discussion: thermally-aware regulator placement
/// (shifting core regulators towards the memory blocks) can exploit
/// lateral heat transfer, but boosts voltage noise by lengthening the
/// path to the logic load. Compares the uniform placement against a
/// 1.5 mm memory-ward shift under all-on and OracT on `lu_ncb`.
pub fn ablation_thermal_placement(opts: &ExpOptions) -> Vec<ThermalPlacementRow> {
    let uniform_chip = power8_like();
    let mut shifted_chip = power8_like();
    pdn::placement::shift_towards_memory(&mut shifted_chip, 1.5).expect("clamped shift succeeds");
    let mut rows = Vec::new();
    for (placement, chip) in [
        ("uniform", &uniform_chip),
        ("memory-shifted", &shifted_chip),
    ] {
        let engine = SimulationEngine::new(chip, opts.engine_config());
        for policy in [PolicyKind::AllOn, PolicyKind::OracT] {
            eprintln!("[placement] running {placement} × {} …", policy.label());
            let result = engine
                .run(Benchmark::LuNcb, policy)
                .expect("physical configuration simulates");
            rows.push(ThermalPlacementRow {
                placement,
                policy,
                tmax_c: result.max_temperature().get(),
                max_noise_pct: result.max_noise_percent(),
            });
        }
    }
    rows
}

/// One row of the multiprogramming study.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiprogramRow {
    /// Workload label.
    pub workload: String,
    /// Policy assessed.
    pub policy: PolicyKind,
    /// Maximum chip temperature, °C.
    pub tmax_c: f64,
    /// Mean conversion efficiency.
    pub mean_efficiency: f64,
    /// Maximum voltage noise, % of Vdd.
    pub max_noise_pct: Option<f64>,
    /// Mean active regulators.
    pub mean_active: f64,
}

/// Section 7's multiprogramming claim: ThermoGater governs each
/// Vdd-domain independently, so a mixed workload (heavy cholesky on half
/// the cores, light raytrace on the other half) still sustains
/// near-peak efficiency with a sensible thermal/noise profile.
pub fn ablation_multiprogram(opts: &ExpOptions) -> Vec<MultiprogramRow> {
    let chip = power8_like();
    let engine = SimulationEngine::new(&chip, opts.engine_config());
    let mix: WorkloadSpec =
        WorkloadMix::alternating(Benchmark::Cholesky, Benchmark::Raytrace, 8).into();
    let specs: [WorkloadSpec; 3] = [
        WorkloadSpec::Single(Benchmark::Cholesky),
        WorkloadSpec::Single(Benchmark::Raytrace),
        mix,
    ];
    let mut rows = Vec::new();
    for spec in &specs {
        for policy in [PolicyKind::AllOn, PolicyKind::PracVT] {
            eprintln!("[multiprogram] running {spec} × {} …", policy.label());
            let result = engine
                .run_spec(spec, policy)
                .expect("physical configuration simulates");
            rows.push(MultiprogramRow {
                workload: spec.to_string(),
                policy,
                tmax_c: result.max_temperature().get(),
                mean_efficiency: result.mean_efficiency(),
                max_noise_pct: result.max_noise_percent(),
                mean_active: result.mean_active_count(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_rows_cover_three_decades() {
        // Structure-only check; the actual runs are exercised by the
        // binaries and integration tests.
        let intervals = [1000.0, 100.0, 10.0];
        assert!(intervals.windows(2).all(|w| w[0] / w[1] == 10.0));
    }

    #[test]
    fn aging_policies_cover_the_contrast() {
        // OracV (logic-side, hot) vs PracVT (memory-side, cool) is the
        // Section 7 contrast; both must be in the assessed set.
        let assessed = [
            PolicyKind::AllOn,
            PolicyKind::Naive,
            PolicyKind::OracT,
            PolicyKind::OracV,
            PolicyKind::PracVT,
        ];
        assert!(assessed.contains(&PolicyKind::OracV));
        assert!(assessed.contains(&PolicyKind::PracVT));
    }
}
