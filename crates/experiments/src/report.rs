//! Plain-text rendering of tables, series, and heat maps.

use simkit::perf::SolverProfile;
use simkit::telemetry::analyze::TraceAnalysis;
use simkit::telemetry::MetricsRegistry;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide quiet preference (`--quiet`/`-q`): when set,
/// [`banner`] and [`TextTable::print`] become no-ops while renderers
/// keep working, so telemetry files and machine-readable output are
/// unaffected.
static QUIET: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide quiet preference.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Whether human-readable output is suppressed.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// A column-aligned text table.
///
/// # Examples
///
/// ```
/// use experiments::report::TextTable;
///
/// let mut t = TextTable::new(&["bench", "T_max"]);
/// t.add_row(vec!["lu_ncb".into(), "65.3".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("lu_ncb"));
/// assert!(rendered.contains("T_max"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let render_row = |row: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                if i == 0 {
                    // First column left-aligned.
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout (a no-op under `--quiet`).
    pub fn print(&self) {
        if !is_quiet() {
            print!("{}", self.render());
        }
    }
}

/// Renders a per-phase wall-clock breakdown (from
/// [`SimulationResult::phase_times`](thermogater::SimulationResult::phase_times))
/// as a column-aligned table with each phase's share of the total.
pub fn phase_report(perf: &simkit::perf::PhaseTimes) -> String {
    let total = perf.total_seconds();
    let mut t = TextTable::new(&["phase", "seconds", "samples", "share"]);
    for (phase, seconds, samples) in perf.iter() {
        let share = if total > 0.0 {
            seconds / total * 100.0
        } else {
            0.0
        };
        t.add_row(vec![
            phase.to_string(),
            format!("{seconds:.3}"),
            samples.to_string(),
            format!("{share:.1}%"),
        ]);
    }
    t.add_row(vec![
        "total".into(),
        format!("{total:.3}"),
        String::new(),
        String::new(),
    ]);
    t.render()
}

/// Formats an `Option<f64>` with fixed precision (`"-"` when absent).
pub fn fmt_opt(value: Option<f64>, precision: usize) -> String {
    match value {
        Some(v) => format!("{v:.precision$}"),
        None => "-".to_string(),
    }
}

/// Prints an experiment banner with the artefact id and a description
/// (a no-op under `--quiet`).
pub fn banner(artefact: &str, description: &str) {
    if is_quiet() {
        return;
    }
    println!("================================================================");
    println!("{artefact} — {description}");
    println!("================================================================");
}

/// Renders a per-phase solver-convergence table (from
/// [`SimulationResult::solver_profile`](thermogater::SimulationResult::solver_profile)):
/// solve counts, mean iterations per solve, and mean/max relative
/// residuals — the companion of [`phase_report`] for numerical health.
pub fn solver_report(profile: &SolverProfile) -> String {
    let mut t = TextTable::new(&["phase", "solves", "iters/solve", "mean resid", "max resid"]);
    for (phase, agg) in profile.iter() {
        t.add_row(vec![
            phase.to_string(),
            agg.solves.to_string(),
            format!("{:.1}", agg.mean_iterations()),
            format!("{:.2e}", agg.mean_residual()),
            format!("{:.2e}", agg.max_residual),
        ]);
    }
    t.render()
}

/// Renders the counters and histogram summaries a telemetry-enabled run
/// accumulated, as two column-aligned tables (counters first). Empty
/// sections are omitted; an empty registry renders to an empty string.
pub fn metrics_report(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let counters = registry.counters();
    if !counters.is_empty() {
        let mut t = TextTable::new(&["counter", "total"]);
        for (name, total) in counters {
            t.add_row(vec![name, total.to_string()]);
        }
        out.push_str(&t.render());
    }
    let histograms = registry.histograms();
    if !histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let mut t = TextTable::new(&["histogram", "samples", "min", "mean", "max"]);
        for (name, h) in histograms {
            t.add_row(vec![
                name,
                h.count.to_string(),
                format!("{:.4}", h.min),
                format!("{:.4}", h.mean()),
                format!("{:.4}", h.max),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Renders a full trace analysis ([`tg-obs
/// summarize`](crate::obs)) as a stack of column-aligned tables:
/// event-kind counts, counters, metric rollups with percentiles, span
/// durations, solver convergence, and the gating/emergency aggregates.
/// Sections with no data are omitted. Malformed or truncated trace
/// lines are called out at the top so a damaged trace is never
/// summarised silently.
pub fn analysis_report(analysis: &TraceAnalysis) -> String {
    use simkit::telemetry::EventKind;

    let mut out = String::new();
    out.push_str(&format!(
        "events: {}   trace span: {:.3}s\n",
        analysis.events,
        analysis.duration_s()
    ));
    if analysis.malformed_lines > 0 {
        out.push_str(&format!(
            "warning: {} malformed line(s) skipped\n",
            analysis.malformed_lines
        ));
    }
    if analysis.truncated {
        out.push_str("warning: trace ends mid-line (truncated write)\n");
    }
    out.push('\n');

    let mut kinds = TextTable::new(&["event kind", "count"]);
    for kind in EventKind::ALL {
        let n = analysis.kind_count(kind);
        if n > 0 {
            kinds.add_row(vec![kind.as_str().to_string(), n.to_string()]);
        }
    }
    out.push_str(&kinds.render());

    if !analysis.counters.is_empty() {
        out.push('\n');
        let mut t = TextTable::new(&["counter", "total"]);
        for (name, total) in &analysis.counters {
            t.add_row(vec![name.clone(), total.to_string()]);
        }
        out.push_str(&t.render());
    }

    if !analysis.rollups.is_empty() {
        out.push('\n');
        let mut t = TextTable::new(&[
            "metric", "samples", "min", "mean", "p50", "p95", "p99", "max",
        ]);
        for (name, r) in &analysis.rollups {
            t.add_row(vec![
                name.clone(),
                r.count().to_string(),
                fmt_opt(r.min(), 4),
                fmt_opt(r.mean(), 4),
                fmt_opt(r.percentile(50.0), 4),
                fmt_opt(r.percentile(95.0), 4),
                fmt_opt(r.percentile(99.0), 4),
                fmt_opt(r.max(), 4),
            ]);
        }
        out.push_str(&t.render());
    }

    let completed_spans: u64 = analysis.spans.iter().map(|(_, s)| s.completed()).sum();
    if completed_spans > 0 {
        out.push('\n');
        let mut t = TextTable::new(&["span", "completed", "open", "total s", "p50 s", "max s"]);
        for (name, s) in &analysis.spans {
            t.add_row(vec![
                name.clone(),
                s.completed().to_string(),
                s.open.to_string(),
                fmt_opt(Some(s.durations.sum()), 3),
                fmt_opt(s.durations.percentile(50.0), 3),
                fmt_opt(s.durations.max(), 3),
            ]);
        }
        out.push_str(&t.render());
    } else {
        let open: u64 = analysis.spans.iter().map(|(_, s)| s.open).sum();
        out.push_str("\nspans: no paired spans in this trace");
        if open > 0 {
            out.push_str(&format!(" ({open} span start(s) never ended)"));
        }
        out.push('\n');
    }

    if !analysis.solvers.is_empty() {
        out.push('\n');
        let mut t = TextTable::new(&[
            "solver",
            "solves",
            "iters p50",
            "iters p95",
            "iters max",
            "resid max",
        ]);
        for (name, s) in &analysis.solvers {
            t.add_row(vec![
                name.clone(),
                s.solves().to_string(),
                fmt_opt(s.iters.percentile(50.0), 1),
                fmt_opt(s.iters.percentile(95.0), 1),
                fmt_opt(s.iters.max(), 1),
                s.residuals
                    .max()
                    .map_or("-".to_string(), |r| format!("{r:.2e}")),
            ]);
        }
        out.push_str(&t.render());
    }

    if analysis.gating.decisions > 0 {
        out.push_str(&format!(
            "\ngating: {} decisions, churn {} (+{} / -{}), {:.3} toggles/decision, mean active {}\n",
            analysis.gating.decisions,
            analysis.gating.churn(),
            analysis.gating.turned_on,
            analysis.gating.turned_off,
            analysis.gating.churn_per_decision().unwrap_or(0.0),
            fmt_opt(analysis.gating.active.mean(), 2),
        ));
    }
    if analysis.emergency.checks > 0 {
        out.push_str(&format!(
            "emergency: {} checks, {} with emergencies ({:.2}% rate), {} flagged / {} true domains, {} mispredicted\n",
            analysis.emergency.checks,
            analysis.emergency.with_emergency,
            analysis.emergency.emergency_rate().unwrap_or(0.0) * 100.0,
            analysis.emergency.flagged_domains,
            analysis.emergency.true_domains,
            analysis.emergency.mispredicted,
        ));
    }
    out
}

/// Schema identifier of `tg-obs summarize --json` documents.
pub const SUMMARY_SCHEMA: &str = "thermogater.summary/v1";

/// The machine-readable twin of [`analysis_report`]: one JSON document
/// (schema [`SUMMARY_SCHEMA`]) with a fixed member order — members in
/// the order written here, collections in trace first-appearance order
/// — so identical runs serialise byte-identically and scripts stop
/// scraping the human table.
pub fn analysis_json(
    analysis: &TraceAnalysis,
    manifest: Option<&simkit::telemetry::manifest::RunManifest>,
) -> String {
    use simkit::telemetry::json::{write_f64, write_str};
    use simkit::telemetry::EventKind;

    fn opt(out: &mut String, v: Option<f64>) {
        match v {
            Some(x) => write_f64(out, x),
            None => out.push_str("null"),
        }
    }

    let mut out = String::from("{\"schema\":");
    write_str(&mut out, SUMMARY_SCHEMA);
    out.push_str(&format!(",\"events\":{}", analysis.events));
    out.push_str(",\"duration_s\":");
    write_f64(&mut out, analysis.duration_s());
    out.push_str(&format!(
        ",\"malformed_lines\":{},\"truncated\":{}",
        analysis.malformed_lines, analysis.truncated
    ));

    out.push_str(",\"kinds\":{");
    let mut first = true;
    for kind in EventKind::ALL {
        let n = analysis.kind_count(kind);
        if n > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            write_str(&mut out, kind.as_str());
            out.push_str(&format!(":{n}"));
        }
    }
    out.push('}');

    out.push_str(",\"counters\":[");
    for (i, (name, total)) in analysis.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_str(&mut out, name);
        out.push_str(&format!(",\"total\":{total}}}"));
    }
    out.push(']');

    out.push_str(",\"rollups\":[");
    for (i, (name, r)) in analysis.rollups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"metric\":");
        write_str(&mut out, name);
        out.push_str(&format!(
            ",\"samples\":{},\"non_finite\":{}",
            r.count(),
            r.non_finite()
        ));
        for (key, value) in [
            ("min", r.min()),
            ("mean", r.mean()),
            ("p50", r.percentile(50.0)),
            ("p95", r.percentile(95.0)),
            ("p99", r.percentile(99.0)),
            ("max", r.max()),
        ] {
            out.push_str(&format!(",\"{key}\":"));
            opt(&mut out, value);
        }
        out.push('}');
    }
    out.push(']');

    out.push_str(",\"spans\":[");
    for (i, (name, s)) in analysis.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_str(&mut out, name);
        out.push_str(&format!(
            ",\"completed\":{},\"open\":{}",
            s.completed(),
            s.open
        ));
        for (key, value) in [
            ("total_s", Some(s.durations.sum())),
            ("p50_s", s.durations.percentile(50.0)),
            ("max_s", s.durations.max()),
        ] {
            out.push_str(&format!(",\"{key}\":"));
            opt(&mut out, value);
        }
        out.push('}');
    }
    out.push(']');

    out.push_str(",\"solvers\":[");
    for (i, (site, s)) in analysis.solvers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"site\":");
        write_str(&mut out, site);
        out.push_str(&format!(",\"solves\":{}", s.solves()));
        for (key, value) in [
            ("iters_p50", s.iters.percentile(50.0)),
            ("iters_p95", s.iters.percentile(95.0)),
            ("iters_max", s.iters.max()),
            ("residual_max", s.residuals.max()),
        ] {
            out.push_str(&format!(",\"{key}\":"));
            opt(&mut out, value);
        }
        out.push('}');
    }
    out.push(']');

    out.push_str(",\"gating\":");
    if analysis.gating.decisions > 0 {
        out.push_str(&format!(
            "{{\"decisions\":{},\"turned_on\":{},\"turned_off\":{},\"churn\":{},\"churn_per_decision\":",
            analysis.gating.decisions,
            analysis.gating.turned_on,
            analysis.gating.turned_off,
            analysis.gating.churn(),
        ));
        opt(&mut out, analysis.gating.churn_per_decision());
        out.push_str(",\"mean_active\":");
        opt(&mut out, analysis.gating.active.mean());
        out.push('}');
    } else {
        out.push_str("null");
    }

    out.push_str(",\"emergency\":");
    if analysis.emergency.checks > 0 {
        out.push_str(&format!(
            "{{\"checks\":{},\"with_emergency\":{},\"flagged_domains\":{},\"true_domains\":{},\"mispredicted\":{},\"rate\":",
            analysis.emergency.checks,
            analysis.emergency.with_emergency,
            analysis.emergency.flagged_domains,
            analysis.emergency.true_domains,
            analysis.emergency.mispredicted,
        ));
        opt(&mut out, analysis.emergency.emergency_rate());
        out.push('}');
    } else {
        out.push_str("null");
    }

    out.push_str(",\"manifest\":");
    match manifest {
        Some(m) => {
            out.push_str("{\"created_by\":");
            write_str(&mut out, &m.created_by);
            out.push_str(&format!(
                ",\"config_hash\":\"{:016x}\",\"threads\":{},\"cells\":{},\"events_total\":{}}}",
                m.config_hash(),
                m.threads,
                m.cells.len(),
                m.total_events(),
            ));
        }
        None => out.push_str("null"),
    }
    out.push_str("}\n");
    out
}

/// Downsamples a series to at most `points` bucket means (for compact
/// printing of long traces).
pub fn downsample(series: &[f64], points: usize) -> Vec<f64> {
    if series.is_empty() || points == 0 {
        return Vec::new();
    }
    let chunk = series.len().div_ceil(points);
    series
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Renders a heat map (rows of °C values, bottom row first) as ASCII art
/// with a shade ramp, top row printed first. Returns the art plus the
/// used temperature range.
pub fn render_heatmap(map: &[Vec<f64>]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for row in map {
        for &v in row {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi <= lo {
        return String::new();
    }
    let mut out = String::new();
    for row in map.iter().rev() {
        for &v in row {
            let t = (v - lo) / (hi - lo);
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out.push_str(&format!("range: {lo:.1} °C (' ') … {hi:.1} °C ('@')\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["name", "v"]);
        t.add_row(vec!["a".into(), "1.0".into()]);
        t.add_row(vec!["longer".into(), "22.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].chars().count();
        assert!(lines[3].chars().count() <= w + 2);
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn phase_report_shows_shares_and_total() {
        let mut perf = simkit::perf::PhaseTimes::new();
        perf.add("transient", 3.0);
        perf.add("noise", 1.0);
        let s = phase_report(&perf);
        assert!(s.contains("transient"));
        assert!(s.contains("75.0%"));
        assert!(s.contains("total"));
        assert!(s.contains("4.000"));
    }

    #[test]
    fn solver_report_lists_phases() {
        use simkit::linalg::SolveStats;
        let mut profile = SolverProfile::new();
        profile.record(
            "transient",
            SolveStats {
                iterations: 12,
                residual: 1e-7,
            },
        );
        profile.record(
            "noise",
            SolveStats {
                iterations: 40,
                residual: 1e-10,
            },
        );
        let s = solver_report(&profile);
        assert!(s.contains("transient"));
        assert!(s.contains("noise"));
        assert!(s.contains("12.0"));
    }

    #[test]
    fn metrics_report_renders_counters_and_histograms() {
        let registry = MetricsRegistry::new();
        assert_eq!(metrics_report(&registry), "");
        registry.add_counter("engine.decisions", 20);
        registry.observe("engine.window_noise_pct", 8.5);
        registry.observe("engine.window_noise_pct", 11.5);
        let s = metrics_report(&registry);
        assert!(s.contains("engine.decisions"));
        assert!(s.contains("20"));
        assert!(s.contains("engine.window_noise_pct"));
        assert!(s.contains("10.0000"), "mean missing from:\n{s}");
    }

    #[test]
    fn analysis_report_notes_traces_with_no_paired_spans() {
        use simkit::telemetry::analyze::TraceAnalysis;
        use std::io::Cursor;

        // No span events at all.
        let trace = r#"{"t":0.0,"kind":"counter","name":"engine.steps","delta":5}"#.to_string();
        let a = TraceAnalysis::from_reader(Cursor::new(trace)).unwrap();
        let text = analysis_report(&a);
        assert!(text.contains("no paired spans"), "missing note in:\n{text}");

        // A start that never ended is called out explicitly.
        let trace = r#"{"t":0.0,"kind":"span_start","name":"engine.run"}"#.to_string();
        let a = TraceAnalysis::from_reader(Cursor::new(trace)).unwrap();
        let text = analysis_report(&a);
        assert!(text.contains("no paired spans"), "{text}");
        assert!(text.contains("1 span start(s) never ended"), "{text}");

        // A completed span still renders the table, not the note.
        let trace = concat!(
            r#"{"t":0.0,"kind":"span_start","name":"engine.run"}"#,
            "\n",
            r#"{"t":1.0,"kind":"span_end","name":"engine.run","dur_s":1.0}"#,
        )
        .to_string();
        let a = TraceAnalysis::from_reader(Cursor::new(trace)).unwrap();
        let text = analysis_report(&a);
        assert!(!text.contains("no paired spans"), "{text}");
        assert!(text.contains("engine.run"), "{text}");
    }

    #[test]
    fn fmt_opt_renders_dash_for_none() {
        assert_eq!(fmt_opt(None, 2), "-");
        assert_eq!(fmt_opt(Some(1.234), 2), "1.23");
    }

    #[test]
    fn quiet_flag_roundtrips() {
        set_quiet(true);
        assert!(is_quiet());
        set_quiet(false);
        assert!(!is_quiet());
    }

    #[test]
    fn downsample_buckets_means() {
        let s: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let d = downsample(&s, 5);
        assert_eq!(d, vec![0.5, 2.5, 4.5, 6.5, 8.5]);
        assert!(downsample(&[], 3).is_empty());
        assert!(downsample(&s, 0).is_empty());
    }

    #[test]
    fn heatmap_renders_rows_top_first() {
        let map = vec![vec![50.0, 50.0], vec![90.0, 50.0]];
        let art = render_heatmap(&map);
        let lines: Vec<&str> = art.lines().collect();
        // Top row (second vec) first: hottest cell is '@'.
        assert!(lines[0].starts_with('@'));
        assert!(lines[1].starts_with(' '));
        assert!(lines[2].contains("range"));
    }

    #[test]
    fn heatmap_handles_flat_input() {
        let map = vec![vec![60.0; 3]; 2];
        assert_eq!(render_heatmap(&map), "");
    }

    #[test]
    fn analysis_json_is_parseable_and_stable() {
        use simkit::telemetry::analyze::ParsedEvent;
        use simkit::telemetry::{EventKind, Telemetry};

        let (tel, sink) = Telemetry::recorder();
        {
            let _run = tel.span("engine.run");
            tel.counter("engine.decisions", 2);
            tel.gauge("thermal.max_c", 81.5);
            tel.solve("thermal.gs", 12, 1e-9);
            tel.event(EventKind::Gating, "engine.gating")
                .field_u64("active", 9)
                .field_u64("turned_on", 1)
                .field_u64("turned_off", 0)
                .emit();
        }
        let mut analysis = TraceAnalysis::new();
        for event in sink.events() {
            let parsed = ParsedEvent::from_line(&event.to_json()).unwrap();
            analysis.observe(&parsed);
        }

        let doc = analysis_json(&analysis, None);
        assert_eq!(doc, analysis_json(&analysis, None), "byte-stable");
        let parsed = simkit::telemetry::json::parse(doc.trim()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some(SUMMARY_SCHEMA)
        );
        assert_eq!(
            parsed.get("events").and_then(|v| v.as_f64()),
            Some(analysis.events as f64)
        );
        let counters = parsed.get("counters").and_then(|v| v.as_array()).unwrap();
        assert_eq!(
            counters[0].get("name").and_then(|v| v.as_str()),
            Some("engine.decisions")
        );
        assert!(parsed.get("gating").unwrap().get("decisions").is_some());
        assert!(parsed.get("emergency").unwrap().is_null());
        assert!(parsed.get("manifest").unwrap().is_null());
        // Key order is fixed: schema first, manifest last.
        assert!(doc.starts_with("{\"schema\":"));
        assert!(doc.trim_end().ends_with("\"manifest\":null}"));
    }
}
