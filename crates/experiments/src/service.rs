//! Sweep-as-a-service: content-addressed scenario caching and the
//! sharded batch executor behind `tg-serve`, [`crate::sweep::grid`],
//! and the `snap.serve.*` BENCH axis.
//!
//! The module splits *scenario description* from *engine execution*:
//!
//! * [`ScenarioSpec`] — one (benchmark, policy, [`EngineConfig`])
//!   triple with a canonical FNV-1a content hash over every
//!   configuration field (via [`EngineConfig::config_fields`] and the
//!   [`ContentHasher`] shared with `RunManifest::config_hash`). Any
//!   field change — solver backend, a governor gain, one
//!   efficiency-curve point — changes the hash.
//! * [`ScenarioCache`] — a content-addressed on-disk record store.
//!   Each entry is one file named `<bench>-<policy>-<hash>.csv` whose
//!   first line is a versioned header carrying the schema and hash and
//!   whose second line is the lossless `{:e}` CSV record; a header or
//!   body mismatch invalidates loudly (stderr + `serve.invalid`
//!   counter) instead of silently serving stale data.
//! * [`run_batch`] — a sharded executor that streams arbitrarily large
//!   scenario batches through bounded memory: a bounded work queue
//!   with backpressure (the feeder blocks when `queue_cap` scenarios
//!   are in flight), a work-stealing worker pool, coalescing of
//!   identical in-flight hashes (one simulation, N waiters), and
//!   incremental re-evaluation (only hashes absent from the cache are
//!   simulated). Results are delivered to the caller's closure in
//!   submission order.
//!
//! [`ServeCounters`] tallies hits/misses/coalesced/invalid and the
//! maximum work-queue depth; [`ServeCounters::emit`] publishes them as
//! `serve.*` telemetry counters so a warm run can prove "zero engine
//! executions" from its trace alone.

use crate::sweep::{self, SweepRecord};
use crate::telemetry::TelemetryCtx;
use floorplan::reference::power8_like;
use simkit::telemetry::manifest::{CellManifest, ContentHasher};
use simkit::telemetry::EventKind;
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;
use thermogater::{EngineConfig, PolicyKind, SimulationEngine};
use workload::Benchmark;

/// Schema identifier stamped into (and required of) every cache entry.
pub const SCENARIO_SCHEMA: &str = "thermogater.scenario/v1";

/// One fully described simulation scenario: what to run, under which
/// policy, with which engine configuration. The spec is pure data — no
/// engine state — so it can be hashed, queued, shipped, and cached.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Benchmark to simulate.
    pub benchmark: Benchmark,
    /// Gating policy to apply.
    pub policy: PolicyKind,
    /// Complete engine configuration.
    pub engine_config: EngineConfig,
}

impl ScenarioSpec {
    /// Bundles a scenario description.
    pub fn new(benchmark: Benchmark, policy: PolicyKind, engine_config: EngineConfig) -> Self {
        ScenarioSpec {
            benchmark,
            policy,
            engine_config,
        }
    }

    /// Human-readable cell label, e.g. `"fft-oracvt"`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}",
            self.benchmark.label(),
            sweep::policy_tag(self.policy)
        )
    }

    /// Canonical FNV-1a content hash over the benchmark, the policy,
    /// and every engine-configuration field, using the same framing as
    /// `RunManifest::config_hash`. Equal specs hash equally; any field
    /// change forces a different hash and therefore a cache miss.
    pub fn content_hash(&self) -> u64 {
        let mut hasher = ContentHasher::new("scenario");
        hasher.push("benchmark", self.benchmark.label());
        hasher.push("policy", sweep::policy_tag(self.policy));
        for (key, value) in self.engine_config.config_fields() {
            hasher.push(&key, &value);
        }
        hasher.finish()
    }
}

/// Result of probing the cache for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// A valid entry for this exact content hash.
    Hit(SweepRecord),
    /// No entry on disk.
    Miss,
    /// An entry exists but is unusable (wrong header, malformed record,
    /// label mismatch); the reason is reported loudly and the scenario
    /// re-simulated.
    Invalid(String),
}

/// Content-addressed on-disk store of [`SweepRecord`]s, one file per
/// scenario hash. The record codec is the lossless `{:e}` CSV, so a
/// cache round trip is byte-identical to the freshly computed record.
#[derive(Debug, Clone)]
pub struct ScenarioCache {
    dir: PathBuf,
}

impl ScenarioCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ScenarioCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path of `spec`:
    /// `<dir>/<bench>-<policy>-<hash:016x>.csv`. The label prefix is
    /// redundant with the hash but keeps the directory humane to `ls`.
    pub fn path(&self, spec: &ScenarioSpec) -> PathBuf {
        self.dir
            .join(format!("{}-{:016x}.csv", spec.label(), spec.content_hash()))
    }

    fn header(hash: u64) -> String {
        format!("# {SCENARIO_SCHEMA} {hash:016x}")
    }

    /// Probes the cache for `spec`, validating the versioned header and
    /// the record body against the spec's content hash and label.
    pub fn load(&self, spec: &ScenarioSpec) -> CacheLookup {
        let path = self.path(spec);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(e) => return CacheLookup::Invalid(format!("unreadable: {e}")),
        };
        let mut lines = text.lines();
        let expected = Self::header(spec.content_hash());
        match lines.next() {
            Some(header) if header == expected => {}
            Some(header) => {
                return CacheLookup::Invalid(format!(
                    "header {header:?} does not match expected {expected:?}"
                ))
            }
            None => return CacheLookup::Invalid("empty file".into()),
        }
        let Some(body) = lines.next() else {
            return CacheLookup::Invalid("missing record line".into());
        };
        let Some(record) = SweepRecord::from_csv(body) else {
            return CacheLookup::Invalid(format!("malformed record line {body:?}"));
        };
        if record.benchmark != spec.benchmark || record.policy != spec.policy {
            return CacheLookup::Invalid(format!(
                "record is for {}-{}, expected {}",
                record.benchmark.label(),
                sweep::policy_tag(record.policy),
                spec.label()
            ));
        }
        CacheLookup::Hit(record)
    }

    /// Writes `record` as the entry for `spec` (header + CSV line).
    ///
    /// # Panics
    ///
    /// Panics when the cache directory cannot be created or the entry
    /// cannot be written — a sweep without a working cache would
    /// silently re-simulate everything forever.
    pub fn store(&self, spec: &ScenarioSpec, record: &SweepRecord) -> PathBuf {
        fs::create_dir_all(&self.dir).expect("create scenario cache directory");
        let path = self.path(spec);
        let text = format!(
            "{}\n{}\n",
            Self::header(spec.content_hash()),
            record.to_csv()
        );
        fs::write(&path, text).expect("write scenario cache entry");
        path
    }
}

/// Where a batch answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Served from a valid on-disk cache entry.
    Cache,
    /// Simulated by this batch (exactly one per distinct missing hash).
    Simulated,
    /// Waited on an identical in-flight simulation (no engine run).
    Coalesced,
}

/// One answered scenario of a batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Zero-based submission index within the batch.
    pub index: usize,
    /// The scenario's content hash.
    pub hash: u64,
    /// The answer.
    pub record: SweepRecord,
    /// How the answer was produced.
    pub source: CellSource,
    /// Wall-clock seconds from dequeue to answer.
    pub seconds: f64,
    /// Telemetry events the simulation emitted (0 unless `Simulated`
    /// under an active telemetry context).
    pub events: u64,
}

/// Executor tuning for [`run_batch`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads (at least 1).
    pub threads: usize,
    /// Bound of the work queue: the feeder blocks once this many
    /// scenarios are queued but not yet claimed, so a million-line
    /// batch file streams through memory proportional to
    /// `queue_cap + threads`, never the batch length.
    pub queue_cap: usize,
    /// Suppress per-cell progress chatter on stderr.
    pub quiet: bool,
}

impl BatchOptions {
    /// Defaults for `threads` workers: queue bound `4 × threads`
    /// (enough to keep every worker fed without buffering the batch).
    pub fn for_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        BatchOptions {
            threads,
            queue_cap: 4 * threads,
            quiet: false,
        }
    }
}

/// Shared tallies of one batch (or service lifetime): how every
/// scenario was answered plus the high-water mark of the work queue.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Scenarios answered from a valid cache entry.
    pub hits: AtomicU64,
    /// Scenarios simulated (distinct missing hashes).
    pub misses: AtomicU64,
    /// Scenarios that waited on an identical in-flight simulation.
    pub coalesced: AtomicU64,
    /// Cache entries found but rejected (header/record mismatch).
    pub invalid: AtomicU64,
    depth: AtomicU64,
    depth_max: AtomicU64,
}

impl ServeCounters {
    fn enqueue(&self) {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    fn dequeue(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Maximum observed work-queue depth (bounded by `queue_cap`).
    pub fn queue_depth_max(&self) -> u64 {
        self.depth_max.load(Ordering::Relaxed)
    }

    /// One-line deterministic summary, e.g.
    /// `scenarios=112 hits=0 misses=112 coalesced=0 invalid=0`.
    pub fn summary(&self) -> String {
        let (h, m, c, i) = (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.invalid.load(Ordering::Relaxed),
        );
        format!(
            "scenarios={} hits={h} misses={m} coalesced={c} invalid={i}",
            h + m + c
        )
    }

    /// Publishes the tallies as `serve.*` telemetry counters through
    /// `ctx`, so the trace itself proves how the batch was answered
    /// (a warm run shows `serve.misses` = 0: zero engine executions).
    pub fn emit(&self, ctx: &TelemetryCtx) {
        let telemetry = ctx.telemetry();
        telemetry.counter("serve.hits", self.hits.load(Ordering::Relaxed));
        telemetry.counter("serve.misses", self.misses.load(Ordering::Relaxed));
        telemetry.counter("serve.coalesced", self.coalesced.load(Ordering::Relaxed));
        telemetry.counter("serve.invalid", self.invalid.load(Ordering::Relaxed));
        telemetry.counter("serve.queue_depth_max", self.queue_depth_max());
    }
}

/// Simulates one scenario (the only place the executor touches the
/// engine), with the per-cell counted telemetry handle when a context
/// is active. Returns the record and the cell's event count.
fn simulate_spec(
    spec: &ScenarioSpec,
    ctx: Option<&TelemetryCtx>,
    quiet: bool,
) -> (SweepRecord, u64) {
    if !quiet {
        eprintln!(
            "[sweep] running {} × {} …",
            spec.benchmark.label(),
            spec.policy.label()
        );
    }
    let chip = power8_like();
    let mut engine = SimulationEngine::new(&chip, spec.engine_config.clone());
    let cell_counter = ctx.map(|ctx| {
        let (telemetry, counter) = ctx.cell_handle();
        engine.set_telemetry(telemetry);
        counter
    });
    let result = engine
        .run(spec.benchmark, spec.policy)
        .expect("simulation of a physical configuration succeeds");
    if !quiet {
        eprintln!(
            "[sweep] {} × {} phase times:\n{}",
            spec.benchmark.label(),
            spec.policy.label(),
            crate::report::phase_report(result.phase_times()),
        );
    }
    let record = SweepRecord::from_result(&result);
    (record, cell_counter.map_or(0, |c| c.count()))
}

/// Emits the `sweep.cell` progress event marking one answered cell
/// (the same event the pre-service sweep emitted, so traces and
/// watchers are unaffected by the refactor). A `cached=false` event
/// appears exactly once per engine execution.
fn emit_cell_event(ctx: Option<&TelemetryCtx>, label: &str, cached: bool, seconds: f64) {
    if let Some(ctx) = ctx {
        ctx.telemetry()
            .event(EventKind::Progress, "sweep.cell")
            .field_str("cell", label.to_string())
            .field_bool("cached", cached)
            .field_f64("seconds", seconds)
            .emit();
    }
}

/// Reports an unusable cache entry loudly — on stderr regardless of
/// `quiet` (a corrupt cache should never be silent) and as a
/// `serve.invalid` increment.
fn report_invalid(
    cache: &ScenarioCache,
    spec: &ScenarioSpec,
    reason: &str,
    counters: &ServeCounters,
) {
    counters.invalid.fetch_add(1, Ordering::Relaxed);
    eprintln!(
        "[serve] cache entry {} is invalid ({reason}); re-simulating",
        cache.path(spec).display()
    );
}

/// Answers one scenario synchronously: cache probe, then simulate and
/// store on miss (or loud invalidation). The building block of
/// [`crate::sweep::record_for`] and the `tg-serve` request loop.
pub fn answer_one(
    cache: &ScenarioCache,
    spec: &ScenarioSpec,
    ctx: Option<&TelemetryCtx>,
    counters: &ServeCounters,
    quiet: bool,
) -> BatchOutcome {
    let started = Instant::now();
    let hash = spec.content_hash();
    match cache.load(spec) {
        CacheLookup::Hit(record) => {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            let seconds = started.elapsed().as_secs_f64();
            emit_cell_event(ctx, &spec.label(), true, seconds);
            return BatchOutcome {
                index: 0,
                hash,
                record,
                source: CellSource::Cache,
                seconds,
                events: 0,
            };
        }
        CacheLookup::Invalid(reason) => report_invalid(cache, spec, &reason, counters),
        CacheLookup::Miss => {}
    }
    let (record, events) = simulate_spec(spec, ctx, quiet);
    cache.store(spec, &record);
    counters.misses.fetch_add(1, Ordering::Relaxed);
    let seconds = started.elapsed().as_secs_f64();
    emit_cell_event(ctx, &spec.label(), false, seconds);
    BatchOutcome {
        index: 0,
        hash,
        record,
        source: CellSource::Simulated,
        seconds,
        events,
    }
}

/// Streams a scenario batch through the cache and a work-stealing
/// worker pool, delivering one [`BatchOutcome`] per scenario to
/// `on_result` **in submission order**. Returns the number of
/// scenarios answered.
///
/// Memory stays bounded regardless of batch length: the feeder blocks
/// once `queue_cap` scenarios are in flight, and the reorder window is
/// bounded by the in-flight count, so `specs` may be a lazy iterator
/// over a file of millions of lines. Identical in-flight hashes
/// coalesce onto one simulation; scenarios whose hash is already
/// cached never touch the engine.
///
/// # Panics
///
/// Panics when a simulation fails (physical configurations do not) or
/// the cache directory cannot be created or written.
pub fn run_batch<I, F>(
    cache: &ScenarioCache,
    specs: I,
    opts: &BatchOptions,
    ctx: Option<&TelemetryCtx>,
    counters: &ServeCounters,
    mut on_result: F,
) -> usize
where
    I: IntoIterator<Item = ScenarioSpec>,
    I::IntoIter: Send,
    F: FnMut(BatchOutcome),
{
    let threads = opts.threads.max(1);
    let queue_cap = opts.queue_cap.max(1);
    let specs = specs.into_iter();
    let (work_tx, work_rx) = mpsc::sync_channel::<(usize, ScenarioSpec)>(queue_cap);
    let work_rx = Mutex::new(work_rx);
    let (result_tx, result_rx) = mpsc::channel::<BatchOutcome>();
    // Hash → submission indices parked behind an in-flight simulation.
    // `Some` while the simulation runs; removed when it completes.
    let inflight: Mutex<HashMap<u64, Vec<(usize, Instant)>>> = Mutex::new(HashMap::new());

    std::thread::scope(|scope| {
        // Feeder: pulls specs lazily and blocks on the bounded queue,
        // providing backpressure against arbitrarily long batches.
        scope.spawn(move || {
            for (index, spec) in specs.enumerate() {
                counters.enqueue();
                if work_tx.send((index, spec)).is_err() {
                    break;
                }
            }
        });

        for _ in 0..threads {
            let result_tx = result_tx.clone();
            let work_rx = &work_rx;
            let inflight = &inflight;
            scope.spawn(move || loop {
                let claimed = work_rx.lock().expect("work queue lock").recv();
                let Ok((index, spec)) = claimed else { break };
                counters.dequeue();
                let started = Instant::now();
                let hash = spec.content_hash();
                match cache.load(&spec) {
                    CacheLookup::Hit(record) => {
                        counters.hits.fetch_add(1, Ordering::Relaxed);
                        let seconds = started.elapsed().as_secs_f64();
                        emit_cell_event(ctx, &spec.label(), true, seconds);
                        let _ = result_tx.send(BatchOutcome {
                            index,
                            hash,
                            record,
                            source: CellSource::Cache,
                            seconds,
                            events: 0,
                        });
                        continue;
                    }
                    CacheLookup::Invalid(reason) => report_invalid(cache, &spec, &reason, counters),
                    CacheLookup::Miss => {}
                }
                {
                    let mut map = inflight.lock().expect("inflight lock");
                    if let Some(waiters) = map.get_mut(&hash) {
                        // An identical scenario is already simulating:
                        // park this index on it and claim the next item.
                        waiters.push((index, started));
                        counters.coalesced.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    map.insert(hash, Vec::new());
                }
                let (record, events) = simulate_spec(&spec, ctx, opts.quiet);
                cache.store(&spec, &record);
                counters.misses.fetch_add(1, Ordering::Relaxed);
                let waiters = inflight
                    .lock()
                    .expect("inflight lock")
                    .remove(&hash)
                    .expect("in-flight entry owned by this worker");
                let seconds = started.elapsed().as_secs_f64();
                emit_cell_event(ctx, &spec.label(), false, seconds);
                for (waiter_index, waiter_started) in waiters {
                    let waiter_seconds = waiter_started.elapsed().as_secs_f64();
                    emit_cell_event(ctx, &spec.label(), true, waiter_seconds);
                    let _ = result_tx.send(BatchOutcome {
                        index: waiter_index,
                        hash,
                        record: record.clone(),
                        source: CellSource::Coalesced,
                        seconds: waiter_seconds,
                        events: 0,
                    });
                }
                let _ = result_tx.send(BatchOutcome {
                    index,
                    hash,
                    record,
                    source: CellSource::Simulated,
                    seconds,
                    events,
                });
            });
        }
        drop(result_tx);

        // Drain on this thread while workers run (heartbeats and
        // streamed output stay live), reordering to submission order.
        // The window holds only outcomes ahead of the next expected
        // index — bounded by the in-flight count, not the batch.
        let mut window: BTreeMap<usize, BatchOutcome> = BTreeMap::new();
        let mut next = 0usize;
        for outcome in result_rx {
            window.insert(outcome.index, outcome);
            while let Some(outcome) = window.remove(&next) {
                on_result(outcome);
                next += 1;
            }
        }
        assert!(
            window.is_empty(),
            "batch executor lost outcomes before index {next}"
        );
        next
    })
}

/// Builds a [`CellManifest`] entry from one answered scenario.
pub fn cell_manifest(outcome: &BatchOutcome, label: String) -> CellManifest {
    CellManifest {
        label,
        seconds: outcome.seconds,
        events: outcome.events,
        cached: outcome.source != CellSource::Simulated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(Benchmark::Fft, PolicyKind::OracVT, EngineConfig::fast())
    }

    fn record() -> SweepRecord {
        SweepRecord {
            benchmark: Benchmark::Fft,
            policy: PolicyKind::OracVT,
            tmax_c: 66.25,
            gradient_c: 10.5,
            mean_efficiency: 0.89,
            mean_loss_w: 9.1,
            max_noise_pct: Some(22.6),
            emergency_fraction: Some(0.0041),
            mean_active: 71.5,
            r_squared: None,
        }
    }

    fn temp_cache(tag: &str) -> ScenarioCache {
        let dir = std::env::temp_dir().join(format!("tg-service-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScenarioCache::new(dir)
    }

    #[test]
    fn hash_is_stable_and_field_sensitive() {
        let base = spec();
        assert_eq!(base.content_hash(), spec().content_hash());
        let mut changed = spec();
        changed.engine_config.seed ^= 1;
        assert_ne!(base.content_hash(), changed.content_hash());
        let mut nested = spec();
        nested.engine_config.thermal.package.k_silicon += 1.0;
        assert_ne!(base.content_hash(), nested.content_hash());
        let mut policy = spec();
        policy.policy = PolicyKind::AllOn;
        assert_ne!(base.content_hash(), policy.content_hash());
        let mut bench = spec();
        bench.benchmark = Benchmark::LuNcb;
        assert_ne!(base.content_hash(), bench.content_hash());
    }

    #[test]
    fn cache_round_trips_byte_identically() {
        let cache = temp_cache("roundtrip");
        let (s, r) = (spec(), record());
        assert_eq!(cache.load(&s), CacheLookup::Miss);
        let path = cache.store(&s, &r);
        assert_eq!(cache.load(&s), CacheLookup::Hit(r.clone()));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(&format!("# {SCENARIO_SCHEMA} ")));
        assert!(text.contains(&r.to_csv()));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entries_are_invalid_not_hits() {
        let cache = temp_cache("corrupt");
        let (s, r) = (spec(), record());
        let path = cache.store(&s, &r);
        fs::write(&path, "garbage\n").unwrap();
        assert!(matches!(cache.load(&s), CacheLookup::Invalid(_)));
        // A stale hash in the header (config drift) is also invalid.
        fs::write(
            &path,
            format!("# {SCENARIO_SCHEMA} {:016x}\n{}\n", 0u64, r.to_csv()),
        )
        .unwrap();
        assert!(matches!(cache.load(&s), CacheLookup::Invalid(_)));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn mismatched_record_labels_are_invalid() {
        let cache = temp_cache("label");
        let s = spec();
        let mut wrong = record();
        wrong.benchmark = Benchmark::LuNcb;
        let text = format!(
            "{}\n{}\n",
            ScenarioCache::header(s.content_hash()),
            wrong.to_csv()
        );
        fs::create_dir_all(cache.dir()).unwrap();
        fs::write(cache.path(&s), text).unwrap();
        assert!(matches!(cache.load(&s), CacheLookup::Invalid(_)));
        let _ = fs::remove_dir_all(cache.dir());
    }
}
