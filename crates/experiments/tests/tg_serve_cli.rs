//! End-to-end tests of the `tg-serve` binary: batch mode answers a
//! request file deterministically cold versus warm (the warm pass from
//! cache alone), the stdin loop answers interactively, override keys
//! change the scenario hash, and malformed requests are skipped loudly
//! with a non-zero exit.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tg-serve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creatable");
    dir
}

fn tg_serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tg-serve"))
        .args(args)
        .output()
        .expect("tg-serve runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn batch_mode_cold_then_warm_is_byte_identical() {
    let dir = temp_dir("batch");
    let cache = dir.join("cache");
    let batch = dir.join("requests.txt");
    std::fs::write(
        &batch,
        "# two cells, one duplicate, one seed override\n\
         fft allon\n\
         fft allon\n\
         fft oract\n\
         fft allon seed=7\n",
    )
    .unwrap();
    let cache_arg = format!("--cache={}", cache.display());
    let batch_arg = format!("--batch={}", batch.display());
    let args = [batch_arg.as_str(), cache_arg.as_str(), "--tiny", "--quiet"];

    let cold = tg_serve(&args);
    assert!(cold.status.success(), "stderr: {}", stderr(&cold));
    let cold_answers = stdout(&cold);
    let lines: Vec<&str> = cold_answers.lines().collect();
    assert_eq!(lines.len(), 4, "one answer line per request");
    // The duplicate shares its hash and bytes; the overridden seed and
    // the different policy do not.
    assert_eq!(lines[0], lines[1]);
    assert_ne!(lines[0], lines[2]);
    assert_ne!(lines[0], lines[3]);
    // Three distinct scenarios were simulated, one answer coalesced or
    // hit the fresh entry.
    let summary = stderr(&cold);
    assert!(summary.contains("misses=3"), "stderr: {summary}");
    assert!(summary.contains("scenarios=4"), "stderr: {summary}");

    // Warm: byte-identical stdout, zero engine runs.
    let warm = tg_serve(&args);
    assert!(warm.status.success(), "stderr: {}", stderr(&warm));
    assert_eq!(stdout(&warm), cold_answers);
    let summary = stderr(&warm);
    assert!(summary.contains("hits=4"), "stderr: {summary}");
    assert!(summary.contains("misses=0"), "stderr: {summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stdin_loop_answers_and_reports_stats() {
    let dir = temp_dir("stdin");
    let cache = dir.join("cache");
    let cache_arg = format!("--cache={}", cache.display());
    let mut child = Command::new(env!("CARGO_BIN_EXE_tg-serve"))
        .args([cache_arg.as_str(), "--tiny", "--quiet"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("tg-serve spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"fft allon\nstats\nquit\n")
        .unwrap();
    let out = child.wait_with_output().expect("tg-serve exits");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let mut lines = text.lines();
    let answer = lines.next().expect("one answer line");
    // `<hash:016x> <record-csv>` — the CSV starts with the cell label.
    assert!(answer.split_whitespace().next().unwrap().len() == 16);
    assert!(answer.contains("fft,allon"), "answer: {answer}");
    let stats = lines.next().expect("stats line");
    assert!(stats.starts_with("# scenarios=1"), "stats: {stats}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_are_skipped_loudly_with_exit_2() {
    let dir = temp_dir("malformed");
    let cache = dir.join("cache");
    let batch = dir.join("requests.txt");
    std::fs::write(&batch, "fft allon\nnot-a-benchmark allon\nfft allon\n").unwrap();
    let cache_arg = format!("--cache={}", cache.display());
    let batch_arg = format!("--batch={}", batch.display());
    let out = tg_serve(&[batch_arg.as_str(), cache_arg.as_str(), "--tiny", "--quiet"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    // The good requests were still answered.
    assert_eq!(stdout(&out).lines().count(), 2);
    let err = stderr(&out);
    assert!(err.contains("malformed"), "stderr: {err}");
    assert!(err.contains("not-a-benchmark"), "stderr: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
