//! End-to-end tests of the `tg-obs` and `telemetry_check` binaries:
//! summarize/export/diff over the committed fixture run, regression
//! gating with non-zero exits and named metrics, snapshot capture, and
//! the extended trace validation (span pairing, timestamp ordering).

use experiments::snapshot::{BenchSnapshot, PolicyEntry, ScalingEntry, SolverSnapshot};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture_run() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/run_a")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tg-obs-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creatable");
    dir
}

fn tg_obs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tg-obs"))
        .args(args)
        .output()
        .expect("tg-obs runs")
}

fn telemetry_check(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_telemetry_check"))
        .args(args)
        .output()
        .expect("telemetry_check runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn summarize_reports_fixture_statistics() {
    let run = fixture_run();
    let out = tg_obs(&["summarize", run.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in [
        "created by fixture",
        "events: 14",
        "engine.steps",
        "65.7000",
        "thermal.gs",
        "gating: 1 decisions, churn 3",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn summarize_works_on_a_bare_trace_file() {
    let trace = fixture_run().join("trace.jsonl");
    let out = tg_obs(&["summarize", trace.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("events: 14"));
}

#[test]
fn export_writes_the_expected_csv_series() {
    let run = fixture_run();
    let dir = temp_dir("export");
    let csv_path = dir.join("series.csv");
    let out = tg_obs(&[
        "export",
        run.to_str().unwrap(),
        "--out",
        csv_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let csv = std::fs::read_to_string(&csv_path).expect("csv written");
    assert!(csv.starts_with("t_s,metric,value\n"));
    for needle in [
        "thermal.max_silicon_c,60",
        "thermal.max_silicon_c,66",
        "engine.window_noise_pct,5",
        "thermal.gs.iters,8",
        "thermal.gs.iters,12",
        "engine.gating.active,10",
        "engine.run.dur_s,0.13",
    ] {
        assert!(csv.contains(needle), "missing {needle:?} in:\n{csv}");
    }
    // 4 gauges + 2 histograms + 2 solves × 2 points + 1 gating + 1 span
    // end = 12 data rows.
    assert_eq!(csv.lines().count(), 13);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn timeline_exports_validated_chrome_trace_json() {
    let run = fixture_run();
    let dir = temp_dir("timeline");
    let json_path = dir.join("timeline.json");
    let out = tg_obs(&[
        "timeline",
        run.to_str().unwrap(),
        "--out",
        json_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = std::fs::read_to_string(&json_path).expect("timeline written");
    let stats = simkit::telemetry::timeline::validate(&text).expect("valid Chrome trace");
    // Fixture: engine.run B+E, the counter/gauge/histogram/gating.active
    // counter tracks, and gating/emergency/progress/solve instants.
    assert_eq!(stats.spans, 2);
    assert!(stats.counters >= 4, "counters: {}", stats.counters);
    assert!(stats.instants >= 3, "instants: {}", stats.instants);
    assert_eq!(stats.tracks, 1);
    assert!(text.contains("\"traceEvents\""));
    assert!(stderr(&out).contains("track(s)"), "{}", stderr(&out));
    // Without --out the document goes to stdout.
    let out = tg_obs(&["timeline", run.to_str().unwrap()]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), text);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flame_stack_weights_telescope_to_the_root_span() {
    let run = fixture_run();
    let out = tg_obs(&["flame", run.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    // engine.run is the only span: 0.13 s = 130000 µs, all exclusive.
    assert_eq!(text.trim_end(), "track0;engine.run 130000");
    let total: u64 = text
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, 130_000);
}

#[test]
fn top_default_report_is_byte_identical_across_invocations() {
    let run = fixture_run();
    let a = tg_obs(&["top", run.to_str().unwrap()]);
    let b = tg_obs(&["top", run.to_str().unwrap()]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout, b.stdout, "structural top report must not drift");
    let text = stdout(&a);
    assert!(text.contains("engine.run"), "{text}");
    assert!(
        !text.contains("incl"),
        "default top must omit wall-time columns:\n{text}"
    );
    // --times adds the wall-time columns; --tree renders the call tree.
    let times = tg_obs(&["top", run.to_str().unwrap(), "--times"]);
    assert!(stdout(&times).contains("excl"), "{}", stdout(&times));
    let tree = tg_obs(&["top", run.to_str().unwrap(), "--tree"]);
    assert!(stdout(&tree).contains("track 0 (run)"), "{}", stdout(&tree));
}

#[test]
fn summarize_notes_traces_with_no_paired_spans() {
    let dir = temp_dir("nospans");
    std::fs::write(
        dir.join("trace.jsonl"),
        "{\"t\":0.01,\"kind\":\"counter\",\"name\":\"engine.steps\",\"delta\":5}\n",
    )
    .expect("trace written");
    let out = tg_obs(&["summarize", dir.join("trace.jsonl").to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("no paired spans"),
        "missing note in:\n{}",
        stdout(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn self_diff_exits_zero_with_zero_drift() {
    let run = fixture_run();
    let out = tg_obs(&["diff", run.to_str().unwrap(), run.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("0 regression(s)"), "{}", stdout(&out));
}

#[test]
fn doctored_run_diff_exits_nonzero_and_names_the_metric() {
    let run = fixture_run();
    let dir = temp_dir("doctored");
    // Same event count (the manifest stays valid), different solver
    // iteration count.
    let trace = std::fs::read_to_string(run.join("trace.jsonl")).expect("fixture trace");
    assert!(trace.contains("\"iters\":12"));
    std::fs::write(
        dir.join("trace.jsonl"),
        trace.replace("\"iters\":12", "\"iters\":50"),
    )
    .expect("doctored trace written");
    std::fs::copy(run.join("manifest.json"), dir.join("manifest.json")).expect("manifest copied");

    let out = tg_obs(&["diff", run.to_str().unwrap(), dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    let err = stderr(&out);
    assert!(
        err.contains("regression: solver.thermal.gs.iters_mean"),
        "stderr: {err}"
    );
    // A tolerance override wide enough to absorb the change flips the
    // exit back to success.
    let out = tg_obs(&[
        "diff",
        run.to_str().unwrap(),
        dir.to_str().unwrap(),
        "--tol",
        "solver.thermal.gs.iters_mean=10",
        "--tol",
        "solver.thermal.gs.iters_p95=10",
        "--tol",
        "solver.thermal.gs.residual_max=10",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

fn sample_snapshot(label: &str, iters_p95: f64) -> BenchSnapshot {
    BenchSnapshot {
        label: label.to_string(),
        config: "fast".to_string(),
        bench: "lu_ncb".to_string(),
        peak_rss_bytes: Some(32 * 1024 * 1024),
        telemetry: None,
        live: None,
        serve: None,
        entries: vec![PolicyEntry {
            policy: "oract".to_string(),
            grid_n: 32,
            wall_s: 0.5,
            steps: 300,
            steps_per_sec: 600.0,
            phases: vec![("noise".to_string(), 0.3)],
            solver: vec![SolverSnapshot {
                site: "transient".to_string(),
                solves: 300,
                iters_mean: 3.0,
                iters_p50: 3.0,
                iters_p95,
                residual_max: 1e-12,
            }],
        }],
        scaling: vec![ScalingEntry {
            grid: 64,
            nodes: 8193,
            backend: "mgcg".to_string(),
            solves: 3,
            iters_mean: 14.0,
            setup_s: 0.01,
            wall_s: 0.03,
        }],
    }
}

#[test]
fn snapshot_diff_gates_on_injected_iteration_regression() {
    let dir = temp_dir("snapdiff");
    let base = dir.join("BENCH_base.json");
    let worse = dir.join("BENCH_worse.json");
    std::fs::write(&base, sample_snapshot("base", 4.0).to_json()).expect("base written");
    std::fs::write(&worse, sample_snapshot("worse", 8.0).to_json()).expect("worse written");

    // Self-diff of a snapshot: clean.
    let out = tg_obs(&["diff", base.to_str().unwrap(), base.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Injected +100% iters_p95: non-zero exit, metric named.
    let out = tg_obs(&["diff", base.to_str().unwrap(), worse.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("regression: snap.oract.solver.transient.iters_p95"),
        "stderr: {}",
        stderr(&out)
    );

    // Mixing a run directory with a snapshot is a usage error (exit 2).
    let run = fixture_run();
    let out = tg_obs(&["diff", run.to_str().unwrap(), base.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_snapshot_captures_a_valid_schema_file() {
    let dir = temp_dir("bench");
    let out = tg_obs(&[
        "bench-snapshot",
        "--label",
        "e2e",
        "--policies",
        "allon",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let path = dir.join("BENCH_e2e.json");
    let text = std::fs::read_to_string(&path).expect("snapshot written");
    let snap = BenchSnapshot::from_json(&text).expect("schema-valid snapshot");
    assert_eq!(snap.label, "e2e");
    assert_eq!(snap.entries.len(), 1);
    assert_eq!(snap.entries[0].policy, "allon");
    assert!(snap.entries[0].steps > 0);
    assert!(snap.entries[0].steps_per_sec > 0.0);
    // The frame-recorder overhead axis was captured alongside.
    let overhead = snap.telemetry.as_ref().expect("overhead axis captured");
    assert!(overhead.frames >= 5);
    assert!(overhead.frames_wall_s > 0.0 && overhead.base_wall_s > 0.0);

    // The file it just captured self-diffs clean.
    let out = tg_obs(&["diff", path.to_str().unwrap(), path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_subcommand_and_bad_policy_fail_cleanly() {
    let out = tg_obs(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown subcommand"));

    let out = tg_obs(&["bench-snapshot", "--policies", "warp9"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown policy tag"));
}

#[test]
fn telemetry_check_accepts_the_fixture_and_rejects_broken_traces() {
    let run = fixture_run();
    let out = telemetry_check(&[run.to_str().unwrap(), "--require", "gating,emergency,solve"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("spans paired"));

    // An extra span_end with no opener must fail pairing...
    let dir = temp_dir("check-span");
    let trace = std::fs::read_to_string(run.join("trace.jsonl")).expect("fixture trace");
    std::fs::write(
        dir.join("trace.jsonl"),
        trace.replace(
            "{\"t\":0.120,\"kind\":\"progress\",\"name\":\"workload.trace\",\"workload\":\"lu_ncb\"}",
            "{\"t\":0.120,\"kind\":\"span_end\",\"name\":\"engine.orphan\",\"dur_s\":0.1}",
        ),
    )
    .expect("doctored trace written");
    std::fs::copy(run.join("manifest.json"), dir.join("manifest.json")).expect("manifest copied");
    let out = telemetry_check(&[dir.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("without a matching span_start"),
        "stderr: {}",
        stderr(&out)
    );

    // ...a span left open must fail too...
    std::fs::write(
        dir.join("trace.jsonl"),
        trace.replace(
            "{\"t\":0.130,\"kind\":\"span_end\",\"name\":\"engine.run\",\"dur_s\":0.13}",
            "{\"t\":0.130,\"kind\":\"span_start\",\"name\":\"engine.run\"}",
        ),
    )
    .expect("doctored trace written");
    let out = telemetry_check(&[dir.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("never closed"),
        "stderr: {}",
        stderr(&out)
    );

    // ...and a timestamp jumping backwards beyond the slack must fail.
    std::fs::write(
        dir.join("trace.jsonl"),
        trace.replace(
            "{\"t\":0.120,\"kind\":\"progress\",\"name\":\"workload.trace\",\"workload\":\"lu_ncb\"}",
            "{\"t\":0.020,\"kind\":\"progress\",\"name\":\"workload.trace\",\"workload\":\"lu_ncb\"}",
        ),
    )
    .expect("doctored trace written");
    let out = telemetry_check(&[dir.to_str().unwrap(), "--mono-slack", "0.01"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("timestamp went backwards"),
        "stderr: {}",
        stderr(&out)
    );
    // The default slack (0.1 s) tolerates the same wobble.
    let out = telemetry_check(&[dir.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_check_pairs_spans_per_track() {
    // A span_end on track 2 must not be paired with the run-track
    // (track 0) span_start of the same name: pairing is keyed by
    // (track, name), not name alone.
    let run = fixture_run();
    let dir = temp_dir("check-track");
    let trace = std::fs::read_to_string(run.join("trace.jsonl")).expect("fixture trace");
    std::fs::write(
        dir.join("trace.jsonl"),
        trace.replace(
            "{\"t\":0.120,\"kind\":\"progress\",\"name\":\"workload.trace\",\"workload\":\"lu_ncb\"}",
            "{\"t\":0.120,\"kind\":\"span_end\",\"name\":\"engine.run\",\"dur_s\":0.1,\"track\":2}",
        ),
    )
    .expect("doctored trace written");
    std::fs::copy(run.join("manifest.json"), dir.join("manifest.json")).expect("manifest copied");
    let out = telemetry_check(&[dir.to_str().unwrap()]);
    assert!(!out.status.success(), "cross-track pairing must fail");
    assert!(
        stderr(&out).contains("on track 2 without a matching span_start"),
        "stderr: {}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn rules_fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn summarize_json_is_stable_and_schema_tagged() {
    let run = fixture_run();
    let a = tg_obs(&["summarize", run.to_str().unwrap(), "--json"]);
    let b = tg_obs(&["summarize", run.to_str().unwrap(), "--json"]);
    assert!(a.status.success(), "stderr: {}", stderr(&a));
    assert_eq!(a.stdout, b.stdout, "JSON summary must not drift");
    let text = stdout(&a);
    let doc = simkit::telemetry::json::parse(text.trim()).expect("parseable JSON");
    let obj = doc.as_object().expect("an object");
    let schema = obj.iter().find(|(k, _)| k == "schema").expect("schema tag");
    assert_eq!(schema.1.as_str(), Some("thermogater.summary/v1"));
    // Key order is fixed by the hand-rolled writer, so the raw text
    // starts with the schema tag — stable for textual diffing.
    assert!(
        text.starts_with("{\"schema\":\"thermogater.summary/v1\",\"events\":14,"),
        "{text}"
    );
    // --out writes the same bytes to a file.
    let dir = temp_dir("sumjson");
    let path = dir.join("summary.json");
    let out = tg_obs(&[
        "summarize",
        run.to_str().unwrap(),
        "--json",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_passes_smoke_rules_and_gates_failing_rules() {
    let run = fixture_run();
    let rules = rules_fixture("rules_smoke.json");
    let out = tg_obs(&[
        "check",
        run.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("trace-parses-clean"), "{text}");
    assert!(text.contains("0 fail"), "{text}");

    // The deliberately-failing rules file must exit 1 (not 2: the
    // rules parsed fine, the trace violated them) and name each
    // failed rule on stderr, mirroring diff's `regression:` contract.
    let rules = rules_fixture("rules_failing.json");
    let out = tg_obs(&[
        "check",
        run.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    let err = stderr(&out);
    assert!(
        err.contains("failed: unreachable-event-count"),
        "stderr: {err}"
    );
    assert!(err.contains("failed: ghost-counter"), "stderr: {err}");

    // --strict promotes warnings to gate failures: the smoke rules
    // warn on the fixture's 100 % emergency rate, so strict mode
    // flips the exit to 1.
    let rules = rules_fixture("rules_smoke.json");
    let out = tg_obs(&[
        "check",
        run.to_str().unwrap(),
        "--rules",
        rules.to_str().unwrap(),
        "--strict",
    ]);
    assert_eq!(out.status.code(), Some(1), "stdout: {}", stdout(&out));
    assert!(
        stderr(&out).contains("failed: emergency-rate-sane"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn check_rejects_malformed_rules_files_as_usage_errors() {
    let run = fixture_run();
    let dir = temp_dir("badrules");
    let path = dir.join("rules.json");
    std::fs::write(&path, "{\"schema\":\"wrong/v9\",\"rules\":[]}").unwrap();
    let out = tg_obs(&[
        "check",
        run.to_str().unwrap(),
        "--rules",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "stdout: {}", stdout(&out));
    assert!(
        stderr(&out).contains("invalid rules file"),
        "{}",
        stderr(&out)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_once_summary_tail_matches_batch_summarize_exactly() {
    let run = fixture_run();
    let watch = tg_obs(&[
        "watch",
        run.to_str().unwrap(),
        "--once",
        "--status-every",
        "5",
    ]);
    assert!(watch.status.success(), "stderr: {}", stderr(&watch));
    let text = stdout(&watch);
    // Status lines fire at exact event counts (5, 10) plus the final
    // 14-event line, each a pure function of the trace prefix.
    assert!(text.contains("[watch] events=5 "), "{text}");
    assert!(text.contains("[watch] events=10 "), "{text}");
    assert!(text.contains("[watch] events=14 "), "{text}");
    let marker = "--- summary ---\n";
    let tail = &text[text.find(marker).expect("summary marker") + marker.len()..];
    let summarize = tg_obs(&["summarize", run.to_str().unwrap()]);
    assert!(summarize.status.success());
    assert_eq!(
        tail,
        stdout(&summarize),
        "watch's final summary must be byte-identical to batch summarize"
    );
}

#[test]
fn watch_renders_are_byte_identical_across_invocations() {
    let run = fixture_run();
    let rules = rules_fixture("rules_smoke.json");
    let args = [
        "watch",
        run.to_str().unwrap(),
        "--once",
        "--status-every",
        "3",
        "--rules",
        rules.to_str().unwrap(),
    ];
    let a = tg_obs(&args);
    let b = tg_obs(&args);
    assert!(a.status.success(), "stderr: {}", stderr(&a));
    assert_eq!(a.stdout, b.stdout, "watch render must not drift");
    // Rules are evaluated incrementally on each status line and once
    // at the end as a full report.
    let text = stdout(&a);
    assert!(text.contains(" rules="), "{text}");
    assert!(text.contains("rule(s):"), "{text}");
}

#[test]
fn watch_follows_a_growing_trace_to_completion() {
    let run = fixture_run();
    let dir = temp_dir("watchlive");
    let trace = std::fs::read_to_string(run.join("trace.jsonl")).unwrap();
    let lines: Vec<&str> = trace.lines().collect();
    // Seed the file with the first few lines; the manifest arrives
    // only after the writer finishes, which is what ends the watch.
    std::fs::write(
        dir.join("trace.jsonl"),
        format!("{}\n", lines[..4].join("\n")),
    )
    .unwrap();

    let child = std::process::Command::new(env!("CARGO_BIN_EXE_tg-obs"))
        .args([
            "watch",
            dir.to_str().unwrap(),
            "--status-every",
            "7",
            "--interval-ms",
            "20",
            "--timeout-s",
            "30",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("watch spawns");

    // Append the rest while the watcher polls, splitting one append
    // mid-line to exercise partial-tail handling, then land the
    // manifest to signal completion.
    std::thread::sleep(std::time::Duration::from_millis(120));
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("trace.jsonl"))
            .unwrap();
        let rest = format!("{}\n", lines[4..].join("\n"));
        let split = rest.len() / 2;
        file.write_all(&rest.as_bytes()[..split]).unwrap();
        file.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(120));
        file.write_all(&rest.as_bytes()[split..]).unwrap();
        file.flush().unwrap();
    }
    std::fs::copy(run.join("manifest.json"), dir.join("manifest.json")).unwrap();

    let out = child.wait_with_output().expect("watch finishes");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let text = stdout(&out);
    assert!(text.contains("[watch] events=7 "), "{text}");
    assert!(text.contains("[watch] events=14 "), "{text}");
    assert!(text.contains("events: 14"), "{text}");
    // The live fold and the batch analysis agree on the final line.
    let marker = "--- summary ---\n";
    let tail = &text[text.find(marker).expect("summary marker") + marker.len()..];
    let summarize = tg_obs(&["summarize", dir.to_str().unwrap()]);
    assert_eq!(tail, stdout(&summarize));
    let _ = std::fs::remove_dir_all(&dir);
}
