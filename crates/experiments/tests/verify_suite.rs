//! Fault-injection tests for the `tg-verify` oracle suite: deliberately
//! corrupt a physical model (or the golden fixture) and demonstrate the
//! oracles catch it with a shrunk, reproducible counterexample — the
//! negative control that proves the verification harness has teeth.

use experiments::verify::{
    self, compare_golden, curve_consistency_outcome, gain_monotonicity_outcome, parse_golden,
    render_golden, VerifyOptions,
};
use simkit::check::{CheckConfig, Checker};
use simkit::units::{Amps, Seconds};
use thermogater::{adaptive_gain, GovernorConfig};
use vreg::{EfficiencyCurve, RegulatorBank, RegulatorDesign, RegulatorTopology};

fn checker(cases: usize) -> Checker {
    Checker::new(CheckConfig {
        seed: 0xFA17,
        cases,
        max_shrink_evals: 256,
        corpus: None,
    })
}

fn fivr_reference() -> EfficiencyCurve {
    let design = RegulatorDesign::fivr();
    EfficiencyCurve::scaled_reference(design.peak_efficiency(), design.peak_current())
        .expect("reference shape is valid")
}

/// Builds a FIVR-like design whose efficiency curve is perturbed by the
/// given factor at every breakpoint — the injected fault. At 1.01 this
/// is the "1 % efficiency-curve perturbation" of the acceptance
/// criteria; any sampled load current then deviates from the clean
/// reference shape.
fn perturbed_fivr(factor: f64) -> RegulatorDesign {
    let clean = RegulatorDesign::fivr();
    let points: Vec<(f64, f64)> = clean
        .curve()
        .points()
        .iter()
        .map(|&(i, eta)| (i, (eta * factor).min(1.0)))
        .collect();
    let curve = EfficiencyCurve::from_points(points).expect("perturbed curve is still valid");
    RegulatorDesign::new(
        "FIVR-perturbed",
        RegulatorTopology::Buck,
        curve,
        33.6,
        Seconds::from_nanos(15.0),
    )
}

/// Negative control: the stock design matches its own reference shape.
#[test]
fn clean_curve_passes_consistency_oracle() {
    let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
    let outcome = curve_consistency_outcome(&bank, &fivr_reference(), &checker(64));
    assert!(outcome.is_pass(), "{:?}", outcome.counterexample());
}

/// The acceptance demonstration: a 1 % perturbation of one efficiency
/// breakpoint is caught by the curve-consistency oracle, and the
/// counterexample carries the seed and a shrunk input for offline
/// replay.
#[test]
fn injected_one_percent_curve_fault_is_caught() {
    let bank = RegulatorBank::new(perturbed_fivr(1.01), 9);
    let outcome = curve_consistency_outcome(&bank, &fivr_reference(), &checker(64));
    let cx = outcome
        .counterexample()
        .expect("perturbed curve must fail the oracle");
    assert_eq!(cx.property, "vreg.curve_consistency");
    assert_eq!(cx.seed, 0xFA17);
    let rendered = cx.render();
    assert!(rendered.contains("seed"), "render lacks seed:\n{rendered}");
    assert!(
        rendered.contains("input"),
        "render lacks input:\n{rendered}"
    );
    // The shrunk input still reproduces the failure directly.
    let (demand, n_on) = {
        let mut parts = cx.input.split(" ; ");
        let demand: f64 = parts.next().unwrap().parse().unwrap();
        let n_on: usize = parts.next().unwrap().parse().unwrap();
        (demand, n_on)
    };
    let share = bank
        .per_regulator_current(Amps::new(demand), n_on)
        .expect("shrunk input stays in-domain");
    let eta = bank.efficiency(Amps::new(demand), n_on).unwrap();
    let expected = fivr_reference().eval(share);
    assert!(
        (eta - expected).abs() > 1e-9 * expected.max(1e-3),
        "shrunk input does not reproduce: η {eta} vs reference {expected}"
    );
}

/// Sensitivity floor: a perturbation at the oracle's tolerance (1e-9
/// relative) passes — the oracle rejects faults, not round-off.
#[test]
fn sub_tolerance_perturbation_passes() {
    let bank = RegulatorBank::new(perturbed_fivr(1.0 + 1e-12), 9);
    let outcome = curve_consistency_outcome(&bank, &fivr_reference(), &checker(64));
    assert!(outcome.is_pass(), "{:?}", outcome.counterexample());
}

/// Negative control: the stock gain-adaptation law is monotone.
#[test]
fn clean_gain_adaptation_passes_monotonicity_oracle() {
    let cfg = GovernorConfig::standard();
    let outcome = gain_monotonicity_outcome(|s| adaptive_gain(&cfg, s), &checker(64));
    assert!(outcome.is_pass(), "{:?}", outcome.counterexample());
}

/// The acceptance demonstration for the control oracles: a 10 %
/// sensitivity-dependent perturbation of the gain-adaptation law breaks
/// its monotonicity and is caught with a shrunk, seed-reproducible
/// counterexample.
#[test]
fn injected_ten_percent_gain_fault_is_caught() {
    let cfg = GovernorConfig::standard();
    // The injected fault: a ±10 % wobble riding on the clean law. Where
    // the clean gain is flat (the clamps) or decays slower than the
    // wobble, the perturbed gain *rises* with sensitivity.
    let perturbed = |s: f64| adaptive_gain(&cfg, s) * (1.0 + 0.1 * s.sin());
    let outcome = gain_monotonicity_outcome(perturbed, &checker(64));
    let cx = outcome
        .counterexample()
        .expect("perturbed adaptation must fail the monotonicity oracle");
    assert_eq!(cx.property, "govern.gain_monotone");
    assert_eq!(cx.seed, 0xFA17);
    let rendered = cx.render();
    assert!(rendered.contains("seed"), "render lacks seed:\n{rendered}");
    assert!(
        rendered.contains("input"),
        "render lacks input:\n{rendered}"
    );
    // The shrunk input still reproduces the violation directly.
    let (s, ds) = {
        let mut parts = cx.input.split(" ; ");
        let s: f64 = parts.next().unwrap().parse().unwrap();
        let ds: f64 = parts.next().unwrap().parse().unwrap();
        (s, ds)
    };
    assert!(
        perturbed(s + ds) > perturbed(s) + 1e-12,
        "shrunk input does not reproduce: gain({s}) = {} vs gain({}) = {}",
        perturbed(s),
        s + ds,
        perturbed(s + ds)
    );
}

/// Golden rows survive a render → parse round trip unchanged.
#[test]
fn golden_fixture_round_trips() {
    let text = std::fs::read_to_string(verify::default_golden_path())
        .expect("committed golden fixture exists");
    let rows = parse_golden(&text).expect("fixture parses");
    assert!(!rows.is_empty());
    let reparsed = parse_golden(&render_golden(&rows)).expect("rendered fixture parses");
    compare_golden(&rows, &reparsed, 0.0).expect("round trip is lossless");
}

/// A 1 % perturbation of one golden field is caught and the error names
/// the row and field; the unperturbed rows compare clean.
#[test]
fn golden_comparison_catches_field_perturbation() {
    let text = std::fs::read_to_string(verify::default_golden_path())
        .expect("committed golden fixture exists");
    let rows = parse_golden(&text).expect("fixture parses");
    compare_golden(&rows, &rows, 1e-6).expect("self-comparison passes");

    let mut perturbed = rows.clone();
    let v = perturbed[0].values[2].expect("mean_efficiency is applicable");
    perturbed[0].values[2] = Some(v * 1.01);
    let err = compare_golden(&perturbed, &rows, 1e-6)
        .expect_err("1 % efficiency drift must fail the golden comparison");
    assert!(
        err.contains("mean_efficiency"),
        "error lacks field name: {err}"
    );
    assert!(err.contains("row 0"), "error lacks row identity: {err}");
}

/// Two full oracle passes with the same options render byte-identical
/// reports — the determinism the CI `cmp` gate relies on.
#[test]
fn verify_reports_are_deterministic() {
    let opts = VerifyOptions {
        cases: 8,
        fast: true,
        corpus: None,
        skip_sweep: true,
        ..VerifyOptions::default()
    };
    let a = verify::run_all(&opts);
    let b = verify::run_all(&opts);
    assert!(a.ok(), "baseline verify run failed:\n{}", a.render(&opts));
    assert_eq!(a.render(&opts), b.render(&opts));
}
