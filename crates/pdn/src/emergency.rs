//! Voltage emergencies: detection and Reddi-style prediction.
//!
//! Section 6.2.4 of the paper defines a voltage emergency as the maximum
//! voltage noise of a Vdd-domain exceeding 10 % of nominal Vdd. The
//! oracular policies know emergencies perfectly; the practical PracVT
//! deploys a per-core predictor in the style of Reddi et al., which the
//! paper credits with >90 % accuracy.

use crate::noise::NoiseReport;
use floorplan::DomainId;
use simkit::DeterministicRng;

/// The paper's emergency threshold: 10 % of nominal Vdd.
pub const DEFAULT_THRESHOLD_FRACTION: f64 = 0.10;

/// Detects which domains are in a voltage emergency.
#[derive(Debug, Clone, PartialEq)]
pub struct EmergencyDetector {
    threshold_fraction: f64,
}

impl EmergencyDetector {
    /// A detector at the paper's 10 % threshold.
    pub fn new() -> Self {
        EmergencyDetector {
            threshold_fraction: DEFAULT_THRESHOLD_FRACTION,
        }
    }

    /// A detector with a custom threshold (fraction of Vdd).
    ///
    /// # Panics
    ///
    /// Panics when the threshold is not positive.
    pub fn with_threshold(threshold_fraction: f64) -> Self {
        assert!(threshold_fraction > 0.0, "threshold must be positive");
        EmergencyDetector { threshold_fraction }
    }

    /// The active threshold as a fraction of Vdd.
    pub fn threshold_fraction(&self) -> f64 {
        self.threshold_fraction
    }

    /// Domains currently in emergency.
    pub fn detect(&self, report: &NoiseReport) -> Vec<DomainId> {
        report.domains_over(self.threshold_fraction)
    }

    /// Whether any domain is in emergency.
    pub fn any(&self, report: &NoiseReport) -> bool {
        report.max_fraction() > self.threshold_fraction
    }
}

impl Default for EmergencyDetector {
    fn default() -> Self {
        EmergencyDetector::new()
    }
}

/// An imperfect voltage-emergency predictor.
///
/// The practical policies cannot see the future; they rely on a predictor
/// that recognises the recurring microarchitectural patterns preceding an
/// emergency (Reddi et al. report >90 % accuracy with a low false-alarm
/// rate). We model its imperfection directly and asymmetrically: given
/// the ground truth for the upcoming interval, a real emergency is
/// flagged with probability `detection_rate`, and a quiet interval is
/// falsely flagged with probability `false_alarm_rate` — deterministic
/// under the seeded RNG, so experiments reproduce exactly.
///
/// # Examples
///
/// ```
/// use pdn::EmergencyPredictor;
///
/// let mut p = EmergencyPredictor::new(0.9, 42);
/// let hits = (0..1000).filter(|_| p.predict(true)).count();
/// assert!((850..=950).contains(&hits));
/// ```
#[derive(Debug, Clone)]
pub struct EmergencyPredictor {
    detection_rate: f64,
    false_alarm_rate: f64,
    rng: DeterministicRng,
}

/// Default false-alarm probability per quiet interval.
pub const DEFAULT_FALSE_ALARM_RATE: f64 = 0.02;

impl EmergencyPredictor {
    /// Creates a predictor that catches real emergencies with probability
    /// `detection_rate` (and false-alarms at the default low rate).
    ///
    /// # Panics
    ///
    /// Panics when `detection_rate` is outside `[0, 1]`.
    pub fn new(detection_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&detection_rate),
            "accuracy must be in [0, 1]"
        );
        EmergencyPredictor {
            detection_rate,
            false_alarm_rate: DEFAULT_FALSE_ALARM_RATE,
            rng: DeterministicRng::new(seed ^ 0x454D_4552_4745),
        }
    }

    /// Overrides the false-alarm probability.
    ///
    /// # Panics
    ///
    /// Panics when the rate is outside `[0, 1]`.
    pub fn with_false_alarm_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.false_alarm_rate = rate;
        self
    }

    /// The paper's >90 %-accurate configuration.
    pub fn reddi_style(seed: u64) -> Self {
        EmergencyPredictor::new(0.9, seed)
    }

    /// Probability a real emergency is flagged.
    pub fn accuracy(&self) -> f64 {
        self.detection_rate
    }

    /// Probability a quiet interval is falsely flagged.
    pub fn false_alarm_rate(&self) -> f64 {
        self.false_alarm_rate
    }

    /// Produces the prediction for an upcoming interval whose ground
    /// truth is `will_be_emergency`.
    pub fn predict(&mut self, will_be_emergency: bool) -> bool {
        if will_be_emergency {
            self.rng.bernoulli(self.detection_rate)
        } else {
            self.rng.bernoulli(self.false_alarm_rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(fractions: Vec<f64>) -> NoiseReport {
        // NoiseReport has no public constructor; build through the
        // crate-internal path by reusing domains_over semantics.
        NoiseReport::from_fractions(fractions)
    }

    #[test]
    fn detector_uses_10_percent_default() {
        let d = EmergencyDetector::new();
        assert!((d.threshold_fraction() - 0.10).abs() < 1e-12);
        let r = report(vec![0.08, 0.11]);
        assert_eq!(d.detect(&r), vec![DomainId(1)]);
        assert!(d.any(&r));
    }

    #[test]
    fn detector_with_custom_threshold() {
        let d = EmergencyDetector::with_threshold(0.2);
        let r = report(vec![0.15, 0.19]);
        assert!(d.detect(&r).is_empty());
        assert!(!d.any(&r));
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        EmergencyDetector::with_threshold(0.0);
    }

    #[test]
    fn perfect_predictor_never_errs() {
        let mut p = EmergencyPredictor::new(1.0, 7).with_false_alarm_rate(0.0);
        for i in 0..100 {
            let truth = i % 3 == 0;
            assert_eq!(p.predict(truth), truth);
        }
    }

    #[test]
    fn detection_rate_is_respected_statistically() {
        let mut p = EmergencyPredictor::reddi_style(11);
        let n = 10_000;
        let detected = (0..n).filter(|_| p.predict(true)).count();
        let rate = detected as f64 / n as f64;
        assert!((rate - 0.9).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn false_alarms_are_rare() {
        let mut p = EmergencyPredictor::reddi_style(13);
        let n = 10_000;
        let alarms = (0..n).filter(|_| p.predict(false)).count();
        let rate = alarms as f64 / n as f64;
        assert!(
            (rate - DEFAULT_FALSE_ALARM_RATE).abs() < 0.01,
            "rate {rate}"
        );
        let mut strict = EmergencyPredictor::new(0.9, 13).with_false_alarm_rate(0.0);
        assert!((0..100).all(|_| !strict.predict(false)));
    }

    #[test]
    fn predictor_is_deterministic() {
        let mut a = EmergencyPredictor::new(0.7, 3);
        let mut b = EmergencyPredictor::new(0.7, 3);
        for i in 0..100 {
            assert_eq!(a.predict(i % 5 == 0), b.predict(i % 5 == 0));
        }
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn invalid_accuracy_panics() {
        EmergencyPredictor::new(1.5, 0);
    }
}
