//! Per-domain nodal DC grids and IR-drop solves.

use crate::config::PdnConfig;
use floorplan::{DomainId, Floorplan, VrId};
use simkit::linalg::{
    CgWorkspace, CsrMatrix, GridGeometry, JacobiPreconditioner, LdltFactor, LdltWorkspace,
    MultigridPreconditioner, SolveStats, SolverBackend, TripletBuilder,
};
use simkit::perf::SolverAgg;
use simkit::units::Watts;
use simkit::{Error, Result};
use std::sync::Mutex;
use std::time::Instant;
use vreg::GatingState;

/// Result of one static IR-drop analysis.
#[derive(Debug, Clone)]
pub struct IrReport {
    /// Worst local drop per domain, volts (indexed by [`DomainId`]).
    per_domain_volts: Vec<f64>,
    /// Chip-wide global-grid drop, volts.
    global_volts: f64,
    vdd: f64,
    /// Aggregate over the per-domain solves that produced the report.
    solve: SolverAgg,
    /// Solver family that produced the report (`"direct"` or `"cg"`).
    backend: &'static str,
    /// Wall-clock spent factoring / refactoring domain matrices, seconds
    /// (zero on the iterative path and on factor-cache hits).
    factor_seconds: f64,
    /// Wall-clock spent in the triangular / iterative solves, seconds.
    solve_seconds: f64,
}

/// Equality ignores the wall-clock timing fields: two reports are equal
/// when they describe the same physical result via the same backend, so
/// cache-consistency tests can `assert_eq!` across repeated solves.
impl PartialEq for IrReport {
    fn eq(&self, other: &Self) -> bool {
        self.per_domain_volts == other.per_domain_volts
            && self.global_volts == other.global_volts
            && self.vdd == other.vdd
            && self.solve == other.solve
            && self.backend == other.backend
    }
}

impl IrReport {
    /// Worst local IR drop of one domain, volts.
    ///
    /// # Panics
    ///
    /// Panics when the domain id is out of range.
    pub fn domain_volts(&self, domain: DomainId) -> f64 {
        self.per_domain_volts[domain.0]
    }

    /// Total (local + global) drop of one domain as a fraction of Vdd.
    ///
    /// # Panics
    ///
    /// Panics when the domain id is out of range.
    pub fn domain_fraction(&self, domain: DomainId) -> f64 {
        (self.per_domain_volts[domain.0] + self.global_volts) / self.vdd
    }

    /// The chip-wide global-grid component, volts.
    pub fn global_volts(&self) -> f64 {
        self.global_volts
    }

    /// Worst total drop across all domains as a fraction of Vdd.
    pub fn chip_max_fraction(&self) -> f64 {
        let worst_local = self.per_domain_volts.iter().copied().fold(0.0f64, f64::max);
        (worst_local + self.global_volts) / self.vdd
    }

    /// Number of domains in the report.
    pub fn domain_count(&self) -> usize {
        self.per_domain_volts.len()
    }

    /// Aggregated convergence statistics of the per-domain solves behind
    /// this report (one solve per domain; direct solves count as one
    /// iteration with the achieved relative residual).
    pub fn solve_stats(&self) -> SolverAgg {
        self.solve
    }

    /// Solver family that produced the report: `"direct"` or `"cg"`.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Wall-clock spent factoring domain matrices, seconds (zero on the
    /// iterative path and when every factor cache hit).
    pub fn factor_seconds(&self) -> f64 {
        self.factor_seconds
    }

    /// Wall-clock spent in the per-domain solves, seconds.
    pub fn solve_seconds(&self) -> f64 {
        self.solve_seconds
    }
}

/// One Vdd-domain's local power grid.
#[derive(Debug, Clone)]
struct DomainGrid {
    nx: usize,
    ny: usize,
    cell_mm: f64,
    /// Per block of this domain: `(block index, cells, fractions)`.
    block_cells: Vec<(usize, Vec<(usize, f64)>)>,
    /// Per VR of this domain: `(vr id, cell)`.
    vr_cells: Vec<(VrId, usize)>,
    /// Sheet conductance matrix, assembled once, with zero-valued
    /// placeholder entries on every regulator cell's diagonal so that a
    /// gating configuration is applied by patching values, not by
    /// re-assembling the matrix.
    base: CsrMatrix,
    /// Per VR of this domain: `(vr id, index into the matrix values of
    /// its cell's diagonal entry)`.
    vr_entries: Vec<(VrId, usize)>,
}

/// Per-domain solver scratch, reused across [`PdnModel::ir_drop`] calls:
/// the patched conductance matrix, its preconditioner, the load/solution
/// vectors, the CG workspace, and (on the direct path) the cached LDLᵀ
/// factorization keyed by the matrix values it was computed from.
#[derive(Debug, Clone)]
struct DomainScratch {
    matrix: CsrMatrix,
    pre: JacobiPreconditioner,
    i_load: Vec<f64>,
    volts: Vec<f64>,
    cg: CgWorkspace,
    /// Cached factorization of `matrix`; the symbolic structure survives
    /// gating changes (only values are patched), so later gating states
    /// pay a numeric `refactor` and repeated states pay nothing.
    ldlt: Option<LdltFactor>,
    /// Matrix values `ldlt` was factored from — the cache key.
    ldlt_values: Vec<f64>,
    ldlt_ws: LdltWorkspace,
    /// Multigrid hierarchy for the mgcg backend (values-only `update`
    /// across gating changes).
    mg: Option<MultigridPreconditioner>,
    /// Matrix values the iterative preconditioner (Jacobi or multigrid)
    /// was last refreshed from. Doubles as the warm-start key: while the
    /// gating set — and therefore the patched values — is unchanged,
    /// `volts` carries the previous IR solution into the next solve
    /// instead of restarting CG from zero.
    warm_values: Vec<f64>,
}

/// Totals accumulated by [`PdnModel::solve_domains`] across the domains.
struct DomainSolveTotals {
    total_current: f64,
    factor_seconds: f64,
    solve_seconds: f64,
    backend: &'static str,
}

impl DomainGrid {
    fn cell_xy(&self, cell: usize) -> (f64, f64) {
        let i = cell % self.nx;
        let j = cell / self.nx;
        (i as f64 * self.cell_mm, j as f64 * self.cell_mm)
    }
}

/// The assembled PDN model of one chip.
///
/// See the crate docs for the modelling approach. The model snapshots the
/// chip geometry at construction; rebuild it after moving regulators.
#[derive(Debug)]
pub struct PdnModel {
    config: PdnConfig,
    grids: Vec<DomainGrid>,
    /// Interior-mutable solver scratch: `ir_drop` keeps its `&self`
    /// signature while reusing buffers across calls. The mutex keeps the
    /// model `Sync`; it is uncontended in practice because each sweep
    /// worker owns its own engine and model.
    scratch: Mutex<Vec<DomainScratch>>,
    n_vrs: usize,
    n_blocks: usize,
}

impl Clone for PdnModel {
    fn clone(&self) -> Self {
        PdnModel {
            config: self.config.clone(),
            grids: self.grids.clone(),
            scratch: Mutex::new(
                self.scratch
                    .lock()
                    .expect("pdn scratch lock is never poisoned")
                    .clone(),
            ),
            n_vrs: self.n_vrs,
            n_blocks: self.n_blocks,
        }
    }
}

impl PdnModel {
    /// Discretises every Vdd-domain's local grid.
    pub fn new(chip: &Floorplan, config: PdnConfig) -> Self {
        let cell_m = config.cell_mm * 1e-3;
        let grids = chip
            .domains()
            .iter()
            .map(|domain| {
                // Bounding box over the domain's blocks.
                let rects: Vec<_> = domain
                    .blocks()
                    .iter()
                    .map(|&b| chip.block(b).rect())
                    .collect();
                let x0 = rects
                    .iter()
                    .map(|r| r.origin.x.get())
                    .fold(f64::INFINITY, f64::min);
                let y0 = rects
                    .iter()
                    .map(|r| r.origin.y.get())
                    .fold(f64::INFINITY, f64::min);
                let x1 = rects
                    .iter()
                    .map(|r| r.right().get())
                    .fold(f64::NEG_INFINITY, f64::max);
                let y1 = rects
                    .iter()
                    .map(|r| r.top().get())
                    .fold(f64::NEG_INFINITY, f64::max);
                let nx = (((x1 - x0) / cell_m).ceil() as usize).max(1);
                let ny = (((y1 - y0) / cell_m).ceil() as usize).max(1);

                // Area-weighted block→cell coverage.
                let block_cells = domain
                    .blocks()
                    .iter()
                    .map(|&bid| {
                        let rect = chip.block(bid).rect();
                        let area = rect.area();
                        let mut cover = Vec::new();
                        for j in 0..ny {
                            for i in 0..nx {
                                let cell = simkit::Rect::new(
                                    simkit::Point::new(
                                        simkit::units::Meters::new(x0 + i as f64 * cell_m),
                                        simkit::units::Meters::new(y0 + j as f64 * cell_m),
                                    ),
                                    simkit::units::Meters::new(cell_m),
                                    simkit::units::Meters::new(cell_m),
                                );
                                let overlap = cell.intersection_area(&rect);
                                if overlap > 0.0 {
                                    cover.push((j * nx + i, overlap / area));
                                }
                            }
                        }
                        (bid.0, cover)
                    })
                    .collect();

                let vr_cells: Vec<(VrId, usize)> = domain
                    .vrs()
                    .iter()
                    .map(|&vid| {
                        let c = chip.vr_site(vid).center();
                        let i = (((c.x.get() - x0) / cell_m) as usize).min(nx - 1);
                        let j = (((c.y.get() - y0) / cell_m) as usize).min(ny - 1);
                        (vid, j * nx + i)
                    })
                    .collect();

                // Assemble the sheet conductances once. Regulator cells
                // get a zero-valued diagonal placeholder so the gating
                // conductance can later be patched in via `values_mut`.
                let g_sheet = 1.0 / config.r_sheet_ohm;
                let n = nx * ny;
                let mut b = TripletBuilder::new(n, n);
                for j in 0..ny {
                    for i in 0..nx {
                        let c = j * nx + i;
                        if i + 1 < nx {
                            b.add(c, c, g_sheet);
                            b.add(c + 1, c + 1, g_sheet);
                            b.add(c, c + 1, -g_sheet);
                            b.add(c + 1, c, -g_sheet);
                        }
                        if j + 1 < ny {
                            let cn = c + nx;
                            b.add(c, c, g_sheet);
                            b.add(cn, cn, g_sheet);
                            b.add(c, cn, -g_sheet);
                            b.add(cn, c, -g_sheet);
                        }
                    }
                }
                for &(_, cell) in &vr_cells {
                    b.add(cell, cell, 0.0);
                }
                let base = b.build();
                let vr_entries = vr_cells
                    .iter()
                    .map(|&(vid, cell)| {
                        let k = base
                            .entry_index(cell, cell)
                            .expect("placeholder guarantees a diagonal entry");
                        (vid, k)
                    })
                    .collect();

                DomainGrid {
                    nx,
                    ny,
                    cell_mm: config.cell_mm,
                    block_cells,
                    vr_cells,
                    base,
                    vr_entries,
                }
            })
            .collect::<Vec<DomainGrid>>();
        let scratch = grids
            .iter()
            .map(|grid| {
                let n = grid.nx * grid.ny;
                DomainScratch {
                    matrix: grid.base.clone(),
                    pre: JacobiPreconditioner::default(),
                    i_load: vec![0.0; n],
                    volts: vec![0.0; n],
                    cg: CgWorkspace::with_size(n),
                    ldlt: None,
                    ldlt_values: Vec::new(),
                    ldlt_ws: LdltWorkspace::new(),
                    mg: None,
                    warm_values: Vec::new(),
                }
            })
            .collect();
        PdnModel {
            config,
            grids,
            scratch: Mutex::new(scratch),
            n_vrs: chip.vr_sites().len(),
            n_blocks: chip.blocks().len(),
        }
    }

    /// The electrical configuration.
    pub fn config(&self) -> &PdnConfig {
        &self.config
    }

    /// Static IR-drop analysis: solves every domain's local grid with the
    /// given regulator gating and per-block load powers.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] when `block_powers` does not have
    ///   one entry per block or `gating` tracks a different VR count;
    /// * [`Error::InvalidArgument`] when a domain has **no** active
    ///   regulator (its blocks would be unpowered);
    /// * solver failures are propagated.
    pub fn ir_drop(&self, gating: &GatingState, block_powers: &[Watts]) -> Result<IrReport> {
        let mut per_domain = vec![0.0; self.grids.len()];
        let mut solve = SolverAgg::default();
        let totals =
            self.solve_domains(gating, block_powers, |d, _matrix, _i_load, volts, stats| {
                solve.record(stats);
                per_domain[d] = volts.iter().copied().fold(0.0f64, f64::max);
            })?;
        Ok(IrReport {
            per_domain_volts: per_domain,
            global_volts: totals.total_current * self.config.r_global_ohm,
            vdd: self.config.vdd.get(),
            solve,
            backend: totals.backend,
            factor_seconds: totals.factor_seconds,
            solve_seconds: totals.solve_seconds,
        })
    }

    /// Worst Kirchhoff-current-law relative residual `‖i − G·v‖/‖i‖`
    /// across the domains, from a fresh per-domain solve with the given
    /// gating and loads. Domains with zero injected load are skipped
    /// (their residual is 0/0). A healthy solve keeps this at the CG
    /// tolerance (≤ 1e-9; the direct backend lands near machine epsilon);
    /// `tg-verify` uses it as the PDN physics oracle.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PdnModel::ir_drop`].
    pub fn kcl_residual(&self, gating: &GatingState, block_powers: &[Watts]) -> Result<f64> {
        let mut worst = 0.0f64;
        self.solve_domains(gating, block_powers, |_d, matrix, i_load, volts, _stats| {
            if i_load.iter().any(|&v| v != 0.0) {
                worst = worst.max(matrix.relative_residual(i_load, volts));
            }
        })?;
        Ok(worst)
    }

    /// Shared per-domain setup + solve behind [`PdnModel::ir_drop`] and
    /// [`PdnModel::kcl_residual`]: distributes the block loads, patches
    /// the active regulators into each domain's cached matrix, solves
    /// with the configured backend, and hands `visit` the solved system.
    /// Returns the total chip current (for the global-grid drop) plus the
    /// factor/solve wall-clock split.
    fn solve_domains<F>(
        &self,
        gating: &GatingState,
        block_powers: &[Watts],
        mut visit: F,
    ) -> Result<DomainSolveTotals>
    where
        F: FnMut(usize, &CsrMatrix, &[f64], &[f64], SolveStats),
    {
        if block_powers.len() != self.n_blocks {
            return Err(Error::DimensionMismatch {
                expected: self.n_blocks,
                actual: block_powers.len(),
            });
        }
        if gating.len() != self.n_vrs {
            return Err(Error::DimensionMismatch {
                expected: self.n_vrs,
                actual: gating.len(),
            });
        }
        let vdd = self.config.vdd.get();
        let g_vr = 1.0 / self.config.r_vr_ohm;
        // The IR systems are solved cold at every gating state, so `Auto`
        // resolves to the direct path immediately: the symbolic analysis
        // is shared across all gating states of a domain and a repeated
        // state skips even the numeric refactor (the per-domain grids sit
        // far below the multigrid crossover, so `Auto` never picks mgcg
        // here). `GaussSeidel` maps to CG because the PDN grids have no
        // Gauss–Seidel path.
        let use_mgcg = matches!(self.config.solver, SolverBackend::Mgcg);
        let use_direct = matches!(
            self.config.solver,
            SolverBackend::Auto | SolverBackend::Direct
        );

        let mut scratches = self
            .scratch
            .lock()
            .expect("pdn scratch lock is never poisoned");
        let mut totals = DomainSolveTotals {
            total_current: 0.0,
            factor_seconds: 0.0,
            solve_seconds: 0.0,
            backend: if use_direct {
                "direct"
            } else if use_mgcg {
                "mgcg"
            } else {
                "cg"
            },
        };
        for (d, (grid, scratch)) in self.grids.iter().zip(scratches.iter_mut()).enumerate() {
            let n = grid.nx * grid.ny;
            let DomainScratch {
                matrix,
                pre,
                i_load,
                volts,
                cg,
                ldlt,
                ldlt_values,
                ldlt_ws,
                mg,
                warm_values,
            } = scratch;
            // Load currents.
            i_load.iter_mut().for_each(|v| *v = 0.0);
            for (block, cover) in &grid.block_cells {
                let amps = block_powers[*block].get().max(0.0) / vdd;
                totals.total_current += amps;
                for &(cell, fraction) in cover {
                    i_load[cell] += amps * fraction;
                }
            }
            // Refresh the cached matrix: sheet conductances from the base
            // pattern, then the active regulators' low-impedance paths to
            // the supply patched onto their diagonal slots.
            matrix.values_mut().copy_from_slice(grid.base.values());
            let mut active = 0;
            for &(vid, k) in &grid.vr_entries {
                if gating.is_on(vid) {
                    matrix.values_mut()[k] += g_vr;
                    active += 1;
                }
            }
            if active == 0 {
                return Err(Error::invalid_argument(format!(
                    "domain D{d} has no active regulator; its grid is floating"
                )));
            }
            let stats = if use_direct {
                let fresh = match ldlt {
                    Some(f) => f.order() != n,
                    None => true,
                };
                let stale = fresh || ldlt_values.as_slice() != matrix.values();
                if stale {
                    let t = Instant::now();
                    match ldlt {
                        Some(f) if !fresh => f.refactor(matrix)?,
                        _ => *ldlt = Some(LdltFactor::new(matrix)?),
                    }
                    ldlt_values.clear();
                    ldlt_values.extend_from_slice(matrix.values());
                    totals.factor_seconds += t.elapsed().as_secs_f64();
                }
                let factor = ldlt.as_ref().expect("factored above");
                let t = Instant::now();
                factor.solve_into(i_load, volts, ldlt_ws)?;
                totals.solve_seconds += t.elapsed().as_secs_f64();
                LdltFactor::stats_for(matrix, i_load, volts)
            } else {
                // Warm start: while the gating set (and therefore the
                // patched matrix values) is unchanged, the previous IR
                // solution is an excellent initial guess — consecutive
                // decision windows mostly re-solve the same configuration
                // with similar loads, which cuts the cold ~2050-iteration
                // solves to a handful (BENCH.md). A gating change resets
                // both the preconditioner and the start vector.
                if warm_values.as_slice() != matrix.values() {
                    let t = Instant::now();
                    if use_mgcg {
                        match mg {
                            Some(m) => m.update(matrix)?,
                            None => {
                                *mg = Some(MultigridPreconditioner::new(
                                    matrix,
                                    GridGeometry::new(grid.nx, grid.ny, 1, 0),
                                )?)
                            }
                        }
                    } else {
                        pre.update(matrix)?;
                    }
                    totals.factor_seconds += t.elapsed().as_secs_f64();
                    warm_values.clear();
                    warm_values.extend_from_slice(matrix.values());
                    volts.iter_mut().for_each(|v| *v = 0.0);
                }
                let t = Instant::now();
                let stats = if use_mgcg {
                    let mg = mg.as_ref().expect("hierarchy built above");
                    matrix.solve_cg_with(i_load, volts, mg, cg, 1e-9, 10 * n)?
                } else {
                    matrix.solve_cg_with(i_load, volts, pre, cg, 1e-9, 10 * n)?
                };
                totals.solve_seconds += t.elapsed().as_secs_f64();
                stats
            };
            visit(d, matrix, i_load, volts, stats);
        }
        Ok(totals)
    }

    /// A copy of one domain's conductance matrix patched for `gating`
    /// (sheet conductances plus the active regulators' supply paths) —
    /// exposed for differential solver verification and benchmarking on
    /// real PDN systems.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] when `gating` tracks a different
    ///   VR count;
    /// * [`Error::InvalidArgument`] when the domain has no active
    ///   regulator (the matrix would be singular).
    ///
    /// # Panics
    ///
    /// Panics when the domain id is out of range.
    pub fn domain_system(&self, domain: DomainId, gating: &GatingState) -> Result<CsrMatrix> {
        if gating.len() != self.n_vrs {
            return Err(Error::DimensionMismatch {
                expected: self.n_vrs,
                actual: gating.len(),
            });
        }
        let grid = &self.grids[domain.0];
        let mut matrix = grid.base.clone();
        let g_vr = 1.0 / self.config.r_vr_ohm;
        let mut active = 0;
        for &(vid, k) in &grid.vr_entries {
            if gating.is_on(vid) {
                matrix.values_mut()[k] += g_vr;
                active += 1;
            }
        }
        if active == 0 {
            return Err(Error::invalid_argument(format!(
                "domain D{} has no active regulator; its grid is floating",
                domain.0
            )));
        }
        Ok(matrix)
    }

    /// Sheet-grid resolution `(nx, ny)` of one domain — the geometry of
    /// the [`PdnModel::domain_system`] matrix (one layer, no extra
    /// nodes), for mesh-aware solvers and verification.
    ///
    /// # Panics
    ///
    /// Panics when the domain id is out of range.
    pub fn domain_grid_size(&self, domain: DomainId) -> (usize, usize) {
        let grid = &self.grids[domain.0];
        (grid.nx, grid.ny)
    }

    /// Proximity of each regulator of `domain` to the domain's current
    /// load distribution: higher score = electrically closer to the load.
    /// OracV-style policies rank regulators by this score (the paper's
    /// OracV "tends to keep the regulators physically closest to high
    /// voltage noise regions on").
    ///
    /// # Panics
    ///
    /// Panics when the domain id is out of range or `block_powers` is
    /// shorter than the block count.
    pub fn vr_load_proximity(&self, domain: DomainId, block_powers: &[Watts]) -> Vec<(VrId, f64)> {
        let grid = &self.grids[domain.0];
        let vdd = self.config.vdd.get();
        // Current per cell.
        let mut i_load = vec![0.0; grid.nx * grid.ny];
        for (block, cover) in &grid.block_cells {
            let amps = block_powers[*block].get().max(0.0) / vdd;
            for &(cell, fraction) in cover {
                i_load[cell] += amps * fraction;
            }
        }
        grid.vr_cells
            .iter()
            .map(|&(vid, vcell)| {
                let (vx, vy) = grid.cell_xy(vcell);
                let score = i_load
                    .iter()
                    .enumerate()
                    .filter(|&(_, &i)| i > 0.0)
                    .map(|(cell, &i)| {
                        let (cx, cy) = grid.cell_xy(cell);
                        let d = (vx - cx).abs() + (vy - cy).abs();
                        i / (d + 0.3)
                    })
                    .sum();
                (vid, score)
            })
            .collect()
    }

    /// How far, on average, the **active** regulators of `domain` sit from
    /// the domain's current centroid, normalised by the same average over
    /// *all* of the domain's regulators. Values above 1 mean the active
    /// set is farther from the load than the domain average — the
    /// situation thermally-aware gating creates, which also weakens the
    /// transient response.
    ///
    /// # Panics
    ///
    /// Panics when indices are out of range.
    pub fn active_distance_factor(
        &self,
        domain: DomainId,
        gating: &GatingState,
        block_powers: &[Watts],
    ) -> f64 {
        let grid = &self.grids[domain.0];
        let vdd = self.config.vdd.get();
        // Current-weighted load centroid.
        let mut sum_i = 0.0;
        let mut cx = 0.0;
        let mut cy = 0.0;
        for (block, cover) in &grid.block_cells {
            let amps = block_powers[*block].get().max(0.0) / vdd;
            for &(cell, fraction) in cover {
                let (x, y) = grid.cell_xy(cell);
                let i = amps * fraction;
                sum_i += i;
                cx += i * x;
                cy += i * y;
            }
        }
        if sum_i <= 0.0 {
            return 1.0;
        }
        cx /= sum_i;
        cy /= sum_i;
        let dist = |cell: usize| {
            let (x, y) = grid.cell_xy(cell);
            (x - cx).abs() + (y - cy).abs() + 0.2
        };
        let all: f64 =
            grid.vr_cells.iter().map(|&(_, c)| dist(c)).sum::<f64>() / grid.vr_cells.len() as f64;
        let active: Vec<f64> = grid
            .vr_cells
            .iter()
            .filter(|&&(vid, _)| gating.is_on(vid))
            .map(|&(_, c)| dist(c))
            .collect();
        if active.is_empty() {
            return 2.0; // Floating domain: worst case.
        }
        let active_mean = active.iter().sum::<f64>() / active.len() as f64;
        (active_mean / all).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use floorplan::reference::power8_like;
    use floorplan::DomainKind;

    fn setup() -> (floorplan::Floorplan, PdnModel) {
        let chip = power8_like();
        let model = PdnModel::new(&chip, PdnConfig::default());
        (chip, model)
    }

    fn uniform_powers(chip: &floorplan::Floorplan, w: f64) -> Vec<Watts> {
        vec![Watts::new(w); chip.blocks().len()]
    }

    #[test]
    fn all_on_produces_moderate_drop() {
        let (chip, model) = setup();
        // ~78 W chip: plausible mid-load.
        let powers = uniform_powers(&chip, 1.5);
        let all_on = GatingState::all_on(chip.vr_sites().len());
        let report = model.ir_drop(&all_on, &powers).unwrap();
        let f = report.chip_max_fraction();
        assert!(f > 0.005 && f < 0.15, "all-on IR fraction {f}");
    }

    #[test]
    fn gating_far_regulators_increases_drop() {
        let (chip, model) = setup();
        let powers = uniform_powers(&chip, 1.5);
        let all_on = GatingState::all_on(chip.vr_sites().len());
        let base = model.ir_drop(&all_on, &powers).unwrap();

        // Turn off the 6 logic-side regulators of core0, keeping only the
        // 3 memory-side ones: current must travel farther.
        let mut gated = all_on.clone();
        let core0 = &chip.domains()[0];
        for &v in core0.vrs() {
            if chip.vr_site(v).neighborhood() == floorplan::VrNeighborhood::Logic {
                gated.set(v, false).unwrap();
            }
        }
        let worse = model.ir_drop(&gated, &powers).unwrap();
        assert!(
            worse.domain_volts(core0.id()) > 1.3 * base.domain_volts(core0.id()),
            "gated {} vs all-on {}",
            worse.domain_volts(core0.id()),
            base.domain_volts(core0.id())
        );
    }

    #[test]
    fn floating_domain_is_rejected() {
        let (chip, model) = setup();
        let powers = uniform_powers(&chip, 1.0);
        let mut gating = GatingState::all_on(chip.vr_sites().len());
        for &v in chip.domains()[0].vrs() {
            gating.set(v, false).unwrap();
        }
        assert!(model.ir_drop(&gating, &powers).is_err());
    }

    #[test]
    fn wrong_vector_sizes_are_rejected() {
        let (chip, model) = setup();
        let all_on = GatingState::all_on(chip.vr_sites().len());
        assert!(model.ir_drop(&all_on, &[Watts::ZERO]).is_err());
        let bad_gating = GatingState::all_on(3);
        let powers = uniform_powers(&chip, 1.0);
        assert!(model.ir_drop(&bad_gating, &powers).is_err());
    }

    #[test]
    fn drop_scales_with_load() {
        let (chip, model) = setup();
        let all_on = GatingState::all_on(chip.vr_sites().len());
        let light = model.ir_drop(&all_on, &uniform_powers(&chip, 0.5)).unwrap();
        let heavy = model.ir_drop(&all_on, &uniform_powers(&chip, 2.0)).unwrap();
        assert!(
            (heavy.chip_max_fraction() / light.chip_max_fraction() - 4.0).abs() < 0.1,
            "linear network should scale 4×"
        );
    }

    #[test]
    fn proximity_ranks_logic_side_vrs_higher() {
        let (chip, model) = setup();
        // Load only the logic units.
        let powers: Vec<Watts> = chip
            .blocks()
            .iter()
            .map(|b| {
                if b.kind().is_logic() {
                    Watts::new(3.0)
                } else {
                    Watts::ZERO
                }
            })
            .collect();
        let core0 = &chip.domains()[0];
        let scores = model.vr_load_proximity(core0.id(), &powers);
        assert_eq!(scores.len(), 9);
        // Best-scoring VR must be a logic-neighborhood one.
        let best = scores
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(
            chip.vr_site(best.0).neighborhood(),
            floorplan::VrNeighborhood::Logic
        );
    }

    #[test]
    fn distance_factor_grows_when_active_set_moves_away() {
        let (chip, model) = setup();
        let powers: Vec<Watts> = chip
            .blocks()
            .iter()
            .map(|b| {
                if b.kind().is_logic() {
                    Watts::new(3.0)
                } else {
                    Watts::new(0.2)
                }
            })
            .collect();
        let core0 = &chip.domains()[0];
        let all_on = GatingState::all_on(chip.vr_sites().len());
        let base = model.active_distance_factor(core0.id(), &all_on, &powers);
        let mut memory_only = all_on.clone();
        for &v in core0.vrs() {
            if chip.vr_site(v).neighborhood() == floorplan::VrNeighborhood::Logic {
                memory_only.set(v, false).unwrap();
            }
        }
        let far = model.active_distance_factor(core0.id(), &memory_only, &powers);
        assert!(far > base, "far {far} vs base {base}");
        assert!((base - 1.0).abs() < 0.05, "all-on factor should be ≈1");
    }

    #[test]
    fn every_domain_gets_a_grid() {
        let (chip, model) = setup();
        assert_eq!(model.grids.len(), chip.domains().len());
        for (grid, domain) in model.grids.iter().zip(chip.domains()) {
            assert_eq!(grid.vr_cells.len(), domain.vr_count());
            assert_eq!(grid.block_cells.len(), domain.blocks().len());
            assert!(
                grid.nx * grid.ny > 1,
                "degenerate grid for {}",
                domain.name()
            );
        }
        let _ = DomainKind::Core;
    }

    #[test]
    fn cached_matrices_do_not_leak_state_between_calls() {
        // The scratch matrix is patched per gating configuration; solving
        // A, then B, then A again must reproduce the first A result
        // exactly, and match a freshly built model.
        let (chip, model) = setup();
        let powers = uniform_powers(&chip, 1.5);
        let all_on = GatingState::all_on(chip.vr_sites().len());
        let mut half = all_on.clone();
        for &v in chip.domains()[0].vrs().iter().skip(3) {
            half.set(v, false).unwrap();
        }
        let first = model.ir_drop(&all_on, &powers).unwrap();
        let _ = model.ir_drop(&half, &powers).unwrap();
        let again = model.ir_drop(&all_on, &powers).unwrap();
        assert_eq!(first, again);
        let fresh = PdnModel::new(&chip, PdnConfig::default());
        let reference = fresh.ir_drop(&all_on, &powers).unwrap();
        assert_eq!(first, reference);
    }

    #[test]
    fn direct_and_cg_backends_agree() {
        let chip = power8_like();
        let direct = PdnModel::new(
            &chip,
            PdnConfig {
                solver: simkit::linalg::SolverBackend::Direct,
                ..PdnConfig::default()
            },
        );
        let cg = PdnModel::new(
            &chip,
            PdnConfig {
                solver: simkit::linalg::SolverBackend::Cg,
                ..PdnConfig::default()
            },
        );
        let powers = uniform_powers(&chip, 1.5);
        let mut gating = GatingState::all_on(chip.vr_sites().len());
        for &v in chip.domains()[0].vrs().iter().skip(4) {
            gating.set(v, false).unwrap();
        }
        let a = direct.ir_drop(&gating, &powers).unwrap();
        let b = cg.ir_drop(&gating, &powers).unwrap();
        assert_eq!(a.backend(), "direct");
        assert_eq!(b.backend(), "cg");
        for d in chip.domains() {
            let gap = (a.domain_volts(d.id()) - b.domain_volts(d.id())).abs();
            assert!(gap < 1e-8, "domain {} direct vs cg gap {gap}", d.name());
        }
        assert_eq!(a.global_volts(), b.global_volts());
    }

    #[test]
    fn mgcg_backend_agrees_with_direct() {
        let chip = power8_like();
        let direct = PdnModel::new(
            &chip,
            PdnConfig {
                solver: simkit::linalg::SolverBackend::Direct,
                ..PdnConfig::default()
            },
        );
        let mgcg = PdnModel::new(
            &chip,
            PdnConfig {
                solver: simkit::linalg::SolverBackend::Mgcg,
                ..PdnConfig::default()
            },
        );
        let powers = uniform_powers(&chip, 1.5);
        let mut gating = GatingState::all_on(chip.vr_sites().len());
        for &v in chip.domains()[0].vrs().iter().skip(4) {
            gating.set(v, false).unwrap();
        }
        let a = direct.ir_drop(&gating, &powers).unwrap();
        let b = mgcg.ir_drop(&gating, &powers).unwrap();
        assert_eq!(b.backend(), "mgcg");
        for d in chip.domains() {
            let gap = (a.domain_volts(d.id()) - b.domain_volts(d.id())).abs();
            assert!(gap < 1e-8, "domain {} direct vs mgcg gap {gap}", d.name());
        }
    }

    #[test]
    fn repeated_gating_state_warm_starts_iterative_solves() {
        let chip = power8_like();
        let model = PdnModel::new(
            &chip,
            PdnConfig {
                solver: simkit::linalg::SolverBackend::Cg,
                ..PdnConfig::default()
            },
        );
        let powers = uniform_powers(&chip, 1.5);
        let all_on = GatingState::all_on(chip.vr_sites().len());
        let cold = model.ir_drop(&all_on, &powers).unwrap();
        // Same gating, same loads: the previous solution already solves
        // the system, so warm-started CG exits in ~0 iterations …
        let warm = model.ir_drop(&all_on, &powers).unwrap();
        assert!(
            warm.solve_stats().iterations * 10 <= cold.solve_stats().iterations.max(10),
            "warm {} vs cold {} iterations",
            warm.solve_stats().iterations,
            cold.solve_stats().iterations
        );
        // … and the voltages agree with the cold solve to solver tolerance.
        for d in chip.domains() {
            let gap = (cold.domain_volts(d.id()) - warm.domain_volts(d.id())).abs();
            assert!(gap < 1e-8, "domain {} cold vs warm gap {gap}", d.name());
        }
        // A gating change must reset the warm start (cold restart, fresh
        // preconditioner) and still produce the right answer.
        let mut half = all_on.clone();
        for &v in chip.domains()[0].vrs().iter().skip(3) {
            half.set(v, false).unwrap();
        }
        let other = model.ir_drop(&half, &powers).unwrap();
        let reference = PdnModel::new(
            &chip,
            PdnConfig {
                solver: simkit::linalg::SolverBackend::Cg,
                ..PdnConfig::default()
            },
        )
        .ir_drop(&half, &powers)
        .unwrap();
        for d in chip.domains() {
            let gap = (other.domain_volts(d.id()) - reference.domain_volts(d.id())).abs();
            assert!(gap < 1e-8, "domain {} stale-warm gap {gap}", d.name());
        }
    }

    #[test]
    fn repeated_gating_state_skips_refactoring() {
        let (chip, model) = setup();
        let powers = uniform_powers(&chip, 1.5);
        let all_on = GatingState::all_on(chip.vr_sites().len());
        let first = model.ir_drop(&all_on, &powers).unwrap();
        assert_eq!(first.backend(), "direct");
        assert!(first.factor_seconds() > 0.0, "first call must factor");
        // Identical gating → identical patched values → the cache key
        // matches and no factor time is spent at all.
        let again = model.ir_drop(&all_on, &powers).unwrap();
        assert_eq!(again.factor_seconds(), 0.0);
        assert_eq!(first, again);
        // A different gating state refactors (numeric only) but must not
        // poison the cache for the original state.
        let mut half = all_on.clone();
        for &v in chip.domains()[0].vrs().iter().skip(3) {
            half.set(v, false).unwrap();
        }
        let other = model.ir_drop(&half, &powers).unwrap();
        assert!(other.factor_seconds() > 0.0, "new gating must refactor");
        let back = model.ir_drop(&all_on, &powers).unwrap();
        assert!(back.factor_seconds() > 0.0);
        assert_eq!(first, back);
    }

    #[test]
    fn vr_entries_point_at_diagonal_slots() {
        let (_, model) = setup();
        for grid in &model.grids {
            for (&(vid_a, cell), &(vid_b, k)) in grid.vr_cells.iter().zip(&grid.vr_entries) {
                assert_eq!(vid_a, vid_b);
                assert_eq!(grid.base.entry_index(cell, cell), Some(k));
            }
        }
    }

    #[test]
    fn report_accessors_are_consistent() {
        let (chip, model) = setup();
        let powers = uniform_powers(&chip, 1.0);
        let all_on = GatingState::all_on(chip.vr_sites().len());
        let report = model.ir_drop(&all_on, &powers).unwrap();
        assert_eq!(report.domain_count(), chip.domains().len());
        let max_frac = report.chip_max_fraction();
        for d in chip.domains() {
            assert!(report.domain_fraction(d.id()) <= max_frac + 1e-12);
        }
        assert!(report.global_volts() > 0.0);
    }
}
