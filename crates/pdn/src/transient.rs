//! Cycle-resolution transient (di/dt) noise.
//!
//! Given a sampled cycle window of load-current multipliers (from
//! `workload::microtrace`-style generators), the transient voltage
//! response is the convolution of the per-cycle current steps with an
//! underdamped impulse-response kernel:
//!
//! ```text
//! h[k] = Z_eff · cos(2π k / T_ring) · decay(k)
//! ```
//!
//! `Z_eff` grows when fewer regulators are active and when the active set
//! sits farther from the load (the `distance_factor`); `decay(k)` is the
//! passive RC decay until the regulator's control loop reacts (after
//! `response_cycles`), then a fast regulated decay — which is how a
//! faster regulator (POWER8-style LDO vs. FIVR, Fig. 15) earns its lower
//! transient noise.

use crate::config::PdnConfig;
use simkit::units::{Amps, Hertz, Seconds};

/// Parameters of one transient evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientParams {
    /// Mean domain load current over the window.
    pub mean_current: Amps,
    /// Active regulators in the domain.
    pub n_active: usize,
    /// Total regulators in the domain.
    pub n_total: usize,
    /// Spatial weakening factor from
    /// [`crate::PdnModel::active_distance_factor`] (≈1 under all-on).
    pub distance_factor: f64,
    /// Regulator control-loop response time.
    pub response_time: Seconds,
    /// Clock frequency (cycle length of the window samples).
    pub frequency: Hertz,
}

/// Peak transient noise over a cycle window, as a fraction of Vdd.
///
/// `multipliers` are per-cycle current multipliers around a mean of 1
/// (see `workload::microtrace`); the first `warmup` cycles seed the
/// convolution but are excluded from the peak search.
///
/// # Panics
///
/// Panics when `n_active` is zero or exceeds `n_total`, or when
/// `warmup >= multipliers.len()`.
pub fn peak_transient_fraction(
    config: &PdnConfig,
    params: &TransientParams,
    multipliers: &[f64],
    warmup: usize,
) -> f64 {
    assert!(
        params.n_active > 0 && params.n_active <= params.n_total,
        "n_active {} outside [1, {}]",
        params.n_active,
        params.n_total
    );
    assert!(warmup < multipliers.len(), "warm-up swallows the window");

    let kernel = impulse_kernel(config, params);
    let i_mean = params.mean_current.get().max(0.0);
    let vdd = config.vdd.get();

    // Per-cycle current steps.
    let mut peak = 0.0f64;
    // Direct convolution: windows are 2 K cycles and kernels O(100), so
    // this stays cheap.
    for n in warmup..multipliers.len() {
        let mut v = 0.0;
        let k_max = kernel.len().min(n);
        for (k, &h) in kernel.iter().take(k_max).enumerate() {
            let idx = n - k;
            let di = i_mean * (multipliers[idx] - multipliers[idx - 1]);
            v += h * di;
        }
        peak = peak.max(v.abs());
    }
    peak / vdd
}

/// The full per-cycle transient-noise magnitude over the analysis region
/// of a window, as fractions of Vdd (the Fig. 14-style trace). Add the
/// static IR fraction on top for total noise.
///
/// # Panics
///
/// Same preconditions as [`peak_transient_fraction`].
pub fn noise_series(
    config: &PdnConfig,
    params: &TransientParams,
    multipliers: &[f64],
    warmup: usize,
) -> Vec<f64> {
    assert!(
        params.n_active > 0 && params.n_active <= params.n_total,
        "n_active {} outside [1, {}]",
        params.n_active,
        params.n_total
    );
    assert!(warmup < multipliers.len(), "warm-up swallows the window");
    let kernel = impulse_kernel(config, params);
    let i_mean = params.mean_current.get().max(0.0);
    let vdd = config.vdd.get();
    (warmup..multipliers.len())
        .map(|n| {
            let mut v = 0.0;
            let k_max = kernel.len().min(n);
            for (k, &h) in kernel.iter().take(k_max).enumerate() {
                let idx = n - k;
                let di = i_mean * (multipliers[idx] - multipliers[idx - 1]);
                v += h * di;
            }
            v.abs() / vdd
        })
        .collect()
}

/// Number of analysis cycles whose total noise (transient + the given
/// static IR fraction) exceeds `threshold_fraction` of Vdd — the
/// quantity behind Table 2's "% execution time spent in voltage
/// emergencies".
///
/// # Panics
///
/// Same preconditions as [`peak_transient_fraction`].
pub fn cycles_over(
    config: &PdnConfig,
    params: &TransientParams,
    multipliers: &[f64],
    warmup: usize,
    ir_fraction: f64,
    threshold_fraction: f64,
) -> usize {
    noise_series(config, params, multipliers, warmup)
        .into_iter()
        .filter(|v| v + ir_fraction > threshold_fraction)
        .count()
}

/// The impulse-response kernel for the given configuration.
pub fn impulse_kernel(config: &PdnConfig, params: &TransientParams) -> Vec<f64> {
    let response_cycles = (params.response_time.get() * params.frequency.get()).max(1.0);
    // A regulator that reacts within the first droop (≈ a quarter of the
    // ring period) partially suppresses even the initial undershoot; a
    // slow loop only helps the tail. This is the (modest) LDO-vs-FIVR
    // advantage of Fig. 15.
    let quarter = config.ring_period_cycles / 4.0;
    let first_droop_suppression = 1.0 - 0.25 * quarter / (quarter + response_cycles);
    let z_eff = config.z_transient_ohm
        * (config.z_reference_active / params.n_active as f64).sqrt()
        * params.distance_factor.max(0.1)
        * first_droop_suppression;
    // Regulated decay: a few cycles once the loop has reacted.
    let regulated_tau = 8.0;
    let len = (response_cycles + 5.0 * regulated_tau).ceil() as usize;
    let omega = 2.0 * std::f64::consts::PI / config.ring_period_cycles;
    (0..len)
        .map(|k| {
            let kf = k as f64;
            let passive = (-kf / config.passive_decay_cycles).exp();
            let regulated = if kf > response_cycles {
                (-(kf - response_cycles) / regulated_tau).exp()
            } else {
                1.0
            };
            z_eff * (omega * kf).cos() * passive * regulated
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n_active: usize, response_ns: f64) -> TransientParams {
        TransientParams {
            mean_current: Amps::new(8.0),
            n_active,
            n_total: 9,
            distance_factor: 1.0,
            response_time: Seconds::from_nanos(response_ns),
            frequency: Hertz::from_ghz(4.0),
        }
    }

    /// A window with one large current step in the middle.
    fn step_window(len: usize, at: usize, height: f64) -> Vec<f64> {
        (0..len)
            .map(|i| if i < at { 1.0 } else { 1.0 + height })
            .collect()
    }

    #[test]
    fn quiet_window_has_no_noise() {
        let cfg = PdnConfig::default();
        let w = vec![1.0; 2000];
        let f = peak_transient_fraction(&cfg, &params(9, 15.0), &w, 1000);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn bigger_steps_make_more_noise() {
        let cfg = PdnConfig::default();
        let small =
            peak_transient_fraction(&cfg, &params(9, 15.0), &step_window(2000, 1500, 0.1), 1000);
        let large =
            peak_transient_fraction(&cfg, &params(9, 15.0), &step_window(2000, 1500, 0.4), 1000);
        assert!(large > 3.0 * small, "large {large} small {small}");
    }

    #[test]
    fn fewer_active_regulators_mean_more_noise() {
        let cfg = PdnConfig::default();
        let w = step_window(2000, 1500, 0.3);
        let strong = peak_transient_fraction(&cfg, &params(9, 15.0), &w, 1000);
        let weak = peak_transient_fraction(&cfg, &params(2, 15.0), &w, 1000);
        assert!(weak > 1.5 * strong, "weak {weak} strong {strong}");
    }

    #[test]
    fn faster_regulator_means_less_noise() {
        // The Fig. 15 effect: the LDO's sub-ns response truncates the
        // ring-down that the 15 ns FIVR lets ring.
        let cfg = PdnConfig::default();
        let w = step_window(2000, 1500, 0.3);
        let fivr = peak_transient_fraction(&cfg, &params(9, 15.0), &w, 1000);
        let ldo = peak_transient_fraction(&cfg, &params(9, 0.8), &w, 1000);
        assert!(ldo < fivr, "ldo {ldo} fivr {fivr}");
        assert!(
            ldo > 0.3 * fivr,
            "effect should be modest, got {ldo} vs {fivr}"
        );
    }

    #[test]
    fn distance_factor_scales_noise_linearly() {
        let cfg = PdnConfig::default();
        let w = step_window(2000, 1500, 0.3);
        let near = peak_transient_fraction(&cfg, &params(9, 15.0), &w, 1000);
        let mut p = params(9, 15.0);
        p.distance_factor = 2.0;
        let far = peak_transient_fraction(&cfg, &p, &w, 1000);
        assert!((far / near - 2.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_starts_at_z_eff_and_decays() {
        let cfg = PdnConfig::default();
        let p = params(9, 15.0);
        let k = impulse_kernel(&cfg, &p);
        // k[0] is z_transient scaled by the first-droop suppression
        // factor, which stays within (0.75, 1].
        assert!(k[0] > 0.75 * cfg.z_transient_ohm && k[0] <= cfg.z_transient_ohm);
        let tail = k[k.len() - 1].abs();
        assert!(tail < 0.05 * k[0].abs(), "tail {tail}");
    }

    #[test]
    fn steps_in_warmup_do_not_count_for_peak_but_do_seed_state() {
        let cfg = PdnConfig::default();
        // Step well inside warm-up, long before the analysis region: the
        // ring has decayed by cycle 1000, so the peak is near zero.
        let early = step_window(2000, 200, 0.4);
        let f = peak_transient_fraction(&cfg, &params(9, 15.0), &early, 1000);
        let direct =
            peak_transient_fraction(&cfg, &params(9, 15.0), &step_window(2000, 1500, 0.4), 1000);
        assert!(f < 0.05 * direct, "early {f} direct {direct}");
    }

    #[test]
    fn noise_series_peak_matches_peak_function() {
        let cfg = PdnConfig::default();
        let p = params(4, 15.0);
        let w = step_window(2000, 1500, 0.3);
        let series = noise_series(&cfg, &p, &w, 1000);
        assert_eq!(series.len(), 1000);
        let series_peak = series.iter().copied().fold(0.0, f64::max);
        let peak = peak_transient_fraction(&cfg, &p, &w, 1000);
        assert!((series_peak - peak).abs() < 1e-12);
    }

    #[test]
    fn cycles_over_counts_threshold_crossings() {
        let cfg = PdnConfig::default();
        let p = params(2, 15.0);
        let w = step_window(2000, 1500, 0.4);
        // With a huge threshold nothing crosses.
        assert_eq!(cycles_over(&cfg, &p, &w, 1000, 0.0, 10.0), 0);
        // With a zero threshold and positive IR, every cycle crosses.
        assert_eq!(cycles_over(&cfg, &p, &w, 1000, 0.05, 0.0), 1000);
        // Intermediate threshold: some but not all cycles cross.
        let peak = peak_transient_fraction(&cfg, &p, &w, 1000);
        let some = cycles_over(&cfg, &p, &w, 1000, 0.0, peak * 0.5);
        assert!(some > 0 && some < 1000, "crossings {some}");
    }

    #[test]
    #[should_panic(expected = "n_active")]
    fn zero_active_panics() {
        let cfg = PdnConfig::default();
        peak_transient_fraction(&cfg, &params(0, 15.0), &[1.0, 1.0], 0);
    }
}
