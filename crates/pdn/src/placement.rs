//! Noise-driven regulator placement ("Deep Optimization"-like).
//!
//! Section 5 of the paper obtains a voltage-noise-optimal regulator
//! placement by mimicking the Walking-Pads C4-placement algorithm: start
//! from the regulators nearest the voltage-noise peak and move regulators
//! one at a time, accepting a move only when it lowers the maximum
//! voltage noise, until convergence. The paper then observes that the
//! optimized placement differs from the uniform one by < 0.4 % maximum
//! noise and sticks with uniform; the `ablation_placement` experiment
//! reproduces that comparison.

use crate::config::PdnConfig;
use crate::grid::PdnModel;
use floorplan::Floorplan;
use simkit::units::{Meters, Watts};
use simkit::{Point, Result};
use vreg::GatingState;

/// Outcome of a placement optimisation run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementOutcome {
    /// Maximum IR-drop fraction before optimisation.
    pub initial_max_fraction: f64,
    /// Maximum IR-drop fraction after optimisation.
    pub final_max_fraction: f64,
    /// Number of accepted regulator moves.
    pub accepted_moves: usize,
}

impl PlacementOutcome {
    /// Relative improvement of the maximum noise, e.g. `0.003` = 0.3 %.
    pub fn improvement(&self) -> f64 {
        if self.initial_max_fraction == 0.0 {
            0.0
        } else {
            (self.initial_max_fraction - self.final_max_fraction) / self.initial_max_fraction
        }
    }
}

/// Iteratively nudges regulators to reduce the maximum static IR drop
/// under the given load, mutating `chip`'s regulator sites in place.
///
/// Each pass considers every regulator and tries the four axis moves of
/// `step_mm`; a move is kept only if it strictly lowers the chip-wide
/// maximum IR-drop fraction (all regulators on — the placement baseline
/// the paper optimises for). Passes repeat until no move is accepted or
/// `max_passes` is reached.
///
/// # Errors
///
/// Propagates IR-solve failures.
pub fn optimize_placement(
    chip: &mut Floorplan,
    config: &PdnConfig,
    block_powers: &[Watts],
    step_mm: f64,
    max_passes: usize,
) -> Result<PlacementOutcome> {
    let all_on = GatingState::all_on(chip.vr_sites().len());
    let evaluate = |chip: &Floorplan| -> Result<IrSummary> {
        let model = PdnModel::new(chip, config.clone());
        let report = model.ir_drop(&all_on, block_powers)?;
        let worst = (0..report.domain_count())
            .max_by(|&a, &b| {
                report
                    .domain_volts(floorplan::DomainId(a))
                    .partial_cmp(&report.domain_volts(floorplan::DomainId(b)))
                    .expect("finite drops")
            })
            .expect("at least one domain");
        Ok(IrSummary {
            max_fraction: report.chip_max_fraction(),
            worst_domain: floorplan::DomainId(worst),
        })
    };

    let first = evaluate(chip)?;
    let initial = first.max_fraction;
    let mut best = initial;
    let mut worst_domain = first.worst_domain;
    let mut accepted_moves = 0;

    for _ in 0..max_passes {
        let mut improved = false;
        // Walking-Pads style: only walk the regulators in the immediate
        // vicinity of the noise peak, i.e. the worst domain's.
        let vr_ids: Vec<_> = chip.domain(worst_domain).vrs().to_vec();
        for id in vr_ids {
            let home = chip.vr_site(id).center();
            let candidates = [
                (step_mm, 0.0),
                (-step_mm, 0.0),
                (0.0, step_mm),
                (0.0, -step_mm),
            ];
            for (dx, dy) in candidates {
                let target = Point::new(home.x + Meters::from_mm(dx), home.y + Meters::from_mm(dy));
                if chip.move_vr(id, target).is_err() {
                    continue; // Outside the die.
                }
                let score = evaluate(chip)?;
                if score.max_fraction < best - 1e-9 {
                    best = score.max_fraction;
                    worst_domain = score.worst_domain;
                    accepted_moves += 1;
                    improved = true;
                    break; // Keep this move; try the next regulator.
                }
                chip.move_vr(id, home).expect("home position is valid");
            }
        }
        if !improved {
            break;
        }
    }

    Ok(PlacementOutcome {
        initial_max_fraction: initial,
        final_max_fraction: best,
        accepted_moves,
    })
}

#[derive(Debug, Clone, Copy)]
struct IrSummary {
    max_fraction: f64,
    worst_domain: floorplan::DomainId,
}

/// Shifts every core-domain regulator towards its domain's memory
/// blocks by `shift_mm` — the *thermally*-aware placement of the paper's
/// Section 7 discussion, which exploits lateral heat transfer into the
/// cooler cache regions at the cost of a longer electrical path to the
/// logic load.
///
/// Regulators in memory-neighborhood positions and non-core domains stay
/// put. Moves that would leave the die are clamped to it.
///
/// # Errors
///
/// Propagates floorplan mutation failures (which the clamping prevents
/// in practice).
pub fn shift_towards_memory(chip: &mut Floorplan, shift_mm: f64) -> Result<usize> {
    use floorplan::{DomainKind, VrNeighborhood};
    let mut moved = 0;
    // Collect moves first: we cannot mutate while iterating.
    let mut moves: Vec<(floorplan::VrId, Point)> = Vec::new();
    for domain in chip.domains() {
        if domain.kind() != DomainKind::Core {
            continue;
        }
        // Current-free centroid of the domain's memory blocks.
        let memory_rects: Vec<_> = domain
            .blocks()
            .iter()
            .map(|&b| chip.block(b))
            .filter(|b| b.kind().is_memory())
            .map(|b| b.rect().center())
            .collect();
        if memory_rects.is_empty() {
            continue;
        }
        let cx = memory_rects.iter().map(|p| p.x.get()).sum::<f64>() / memory_rects.len() as f64;
        let cy = memory_rects.iter().map(|p| p.y.get()).sum::<f64>() / memory_rects.len() as f64;
        for &vr in domain.vrs() {
            let site = chip.vr_site(vr);
            if site.neighborhood() == VrNeighborhood::Memory {
                continue;
            }
            let home = site.center();
            let dx = cx - home.x.get();
            let dy = cy - home.y.get();
            let norm = dx.hypot(dy);
            if norm < 1e-9 {
                continue;
            }
            let step = (shift_mm * 1e-3).min(norm);
            let target = Point::new(
                Meters::new(home.x.get() + dx / norm * step),
                Meters::new(home.y.get() + dy / norm * step),
            );
            moves.push((vr, target));
        }
    }
    for (vr, target) in moves {
        if chip.move_vr(vr, target).is_ok() {
            moved += 1;
        }
    }
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use floorplan::reference::power8_like;

    #[test]
    fn optimisation_never_worsens_noise() {
        let mut chip = power8_like();
        let powers: Vec<Watts> = chip
            .blocks()
            .iter()
            .map(|b| {
                if b.kind().is_logic() {
                    Watts::new(2.0)
                } else {
                    Watts::new(0.4)
                }
            })
            .collect();
        let outcome =
            optimize_placement(&mut chip, &PdnConfig::default(), &powers, 0.5, 2).unwrap();
        assert!(outcome.final_max_fraction <= outcome.initial_max_fraction + 1e-12);
        assert!(outcome.improvement() >= 0.0);
    }

    #[test]
    fn uniform_placement_is_already_near_optimal() {
        // The paper's §5 observation: uniform vs optimized differ by
        // well under a few percent relative.
        let mut chip = power8_like();
        let powers: Vec<Watts> = chip.blocks().iter().map(|_| Watts::new(1.0)).collect();
        let outcome =
            optimize_placement(&mut chip, &PdnConfig::default(), &powers, 0.25, 1).unwrap();
        assert!(
            outcome.improvement() < 0.10,
            "uniform placement was {}% off optimal",
            outcome.improvement() * 100.0
        );
    }

    #[test]
    fn memory_shift_moves_logic_side_vrs_only() {
        let mut chip = power8_like();
        let before: Vec<_> = chip.vr_sites().iter().map(|s| s.center()).collect();
        let moved = shift_towards_memory(&mut chip, 1.0).unwrap();
        // 6 logic-side VRs per core × 8 cores.
        assert_eq!(moved, 48);
        for (site, old) in chip.vr_sites().iter().zip(&before) {
            let displaced = site.center().distance(*old).as_mm() > 1e-6;
            match site.neighborhood() {
                // Neighborhood is classified at build time; formerly
                // logic-side sites have moved.
                floorplan::VrNeighborhood::Logic => assert!(displaced, "{}", site.id()),
                floorplan::VrNeighborhood::Memory => {
                    assert!(!displaced, "{}", site.id())
                }
            }
        }
    }

    #[test]
    fn memory_shift_raises_ir_drop() {
        // The Section 7 trade-off: regulators farther from logic mean a
        // longer electrical path for the dominant load.
        let powers: Vec<Watts> = power8_like()
            .blocks()
            .iter()
            .map(|b| {
                if b.kind().is_logic() {
                    Watts::new(2.5)
                } else {
                    Watts::new(0.4)
                }
            })
            .collect();
        let all_on = GatingState::all_on(96);
        // Only core domains host shifted regulators; compare their worst
        // drop (an L3 domain can cap the chip-wide max either way).
        let worst_core = |chip: &Floorplan| {
            let model = PdnModel::new(chip, PdnConfig::default());
            let report = model.ir_drop(&all_on, &powers).unwrap();
            chip.domains()
                .iter()
                .filter(|d| d.kind() == floorplan::DomainKind::Core)
                .map(|d| report.domain_fraction(d.id()))
                .fold(0.0f64, f64::max)
        };
        let uniform = worst_core(&power8_like());
        let shifted = {
            let mut chip = power8_like();
            shift_towards_memory(&mut chip, 1.5).unwrap();
            worst_core(&chip)
        };
        assert!(shifted > uniform, "shifted {shifted} vs uniform {uniform}");
    }

    #[test]
    fn outcome_improvement_handles_zero_baseline() {
        let o = PlacementOutcome {
            initial_max_fraction: 0.0,
            final_max_fraction: 0.0,
            accepted_moves: 0,
        };
        assert_eq!(o.improvement(), 0.0);
    }
}
