//! Combined voltage-noise analysis (static IR drop + transient di/dt).

use crate::config::PdnConfig;
use crate::grid::PdnModel;
use crate::transient::{peak_transient_fraction, TransientParams};
use floorplan::{DomainId, Floorplan};
use simkit::perf::SolverAgg;
use simkit::telemetry::Telemetry;
use simkit::units::{Hertz, Seconds, Watts};
use simkit::Result;
use vreg::GatingState;

/// Per-domain maximum voltage noise, as fractions of nominal Vdd.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseReport {
    per_domain: Vec<f64>,
    per_domain_ir: Vec<f64>,
    ir_solve: SolverAgg,
}

impl NoiseReport {
    /// Builds a report from raw per-domain total-noise fractions
    /// (indexed by [`DomainId`]) — mainly for tests and external tooling;
    /// [`NoiseAnalyzer::analyze`] is the normal source of reports. The
    /// static IR component is taken as zero.
    pub fn from_fractions(per_domain: Vec<f64>) -> Self {
        let per_domain_ir = vec![0.0; per_domain.len()];
        NoiseReport {
            per_domain,
            per_domain_ir,
            ir_solve: SolverAgg::default(),
        }
    }

    /// Aggregated CG convergence statistics of the IR solves behind this
    /// report (zero solves for [`NoiseReport::from_fractions`] reports).
    pub fn ir_solve_stats(&self) -> SolverAgg {
        self.ir_solve
    }

    /// The static IR-drop component of one domain's noise, as a fraction
    /// of Vdd (total minus this is the transient peak).
    ///
    /// # Panics
    ///
    /// Panics when the domain id is out of range.
    pub fn domain_ir_fraction(&self, domain: DomainId) -> f64 {
        self.per_domain_ir[domain.0]
    }

    /// Noise of one domain as a fraction of Vdd.
    ///
    /// # Panics
    ///
    /// Panics when the domain id is out of range.
    pub fn domain_fraction(&self, domain: DomainId) -> f64 {
        self.per_domain[domain.0]
    }

    /// Worst noise across all domains, as a fraction of Vdd.
    pub fn max_fraction(&self) -> f64 {
        self.per_domain.iter().copied().fold(0.0, f64::max)
    }

    /// Worst noise across all domains, in percent of Vdd (the unit of
    /// Figs. 11/14/15).
    pub fn max_percent(&self) -> f64 {
        self.max_fraction() * 100.0
    }

    /// Domains whose noise exceeds `threshold_fraction` of Vdd.
    pub fn domains_over(&self, threshold_fraction: f64) -> Vec<DomainId> {
        self.per_domain
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > threshold_fraction)
            .map(|(i, _)| DomainId(i))
            .collect()
    }

    /// All per-domain fractions, indexed by [`DomainId`].
    pub fn fractions(&self) -> &[f64] {
        &self.per_domain
    }
}

/// One noise evaluation's inputs for a single sampled cycle window.
#[derive(Debug)]
pub struct WindowInputs<'a> {
    /// Per-block load powers at the window's instant.
    pub block_powers: &'a [Watts],
    /// Per-domain cycle-current multipliers for the window (indexed by
    /// [`DomainId`]); each slice is one window of per-cycle multipliers.
    pub domain_multipliers: &'a [Vec<f64>],
    /// Warm-up cycles excluded from the peak search.
    pub warmup: usize,
}

/// Combines static IR-drop solves with transient window analysis into the
/// paper's per-domain maximum-voltage-noise metric.
#[derive(Debug, Clone)]
pub struct NoiseAnalyzer {
    frequency: Hertz,
    response_time: Seconds,
    telemetry: Telemetry,
}

impl NoiseAnalyzer {
    /// Creates an analyzer for a chip clocked at `frequency` whose
    /// regulators respond in `response_time`.
    pub fn new(frequency: Hertz, response_time: Seconds) -> Self {
        NoiseAnalyzer {
            frequency,
            response_time,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle; each analysis then emits a
    /// `pdn.ir_direct`, `pdn.ir_cg`, or `pdn.ir_mgcg` solve event (aggregated over the
    /// per-domain solves, named after the configured solver backend,
    /// carrying the factor/solve wall-clock split) and a
    /// `pdn.noise_max_pct` gauge.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Clock frequency used to convert response times to cycles.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// Regulator response time used for the transient kernel.
    pub fn response_time(&self) -> Seconds {
        self.response_time
    }

    /// Evaluates the total (IR + transient) noise of every domain for one
    /// sampled window under the given gating state.
    ///
    /// # Errors
    ///
    /// Propagates IR-solve errors (floating domains, size mismatches).
    pub fn analyze(
        &self,
        chip: &Floorplan,
        model: &PdnModel,
        gating: &GatingState,
        inputs: &WindowInputs<'_>,
    ) -> Result<NoiseReport> {
        let ir = model.ir_drop(gating, inputs.block_powers)?;
        let config: &PdnConfig = model.config();
        let vdd = config.vdd;

        let mut per_domain_ir = Vec::with_capacity(chip.domains().len());
        let per_domain = chip
            .domains()
            .iter()
            .map(|domain| {
                let d = domain.id();
                per_domain_ir.push(ir.domain_fraction(d));
                let mean_current = domain
                    .blocks()
                    .iter()
                    .map(|&b| inputs.block_powers[b.0])
                    .sum::<Watts>()
                    / vdd;
                let n_active = gating.active_among(domain.vrs()).max(1);
                let params = TransientParams {
                    mean_current,
                    n_active,
                    n_total: domain.vr_count(),
                    distance_factor: model.active_distance_factor(d, gating, inputs.block_powers),
                    response_time: self.response_time,
                    frequency: self.frequency,
                };
                let transient = peak_transient_fraction(
                    config,
                    &params,
                    &inputs.domain_multipliers[d.0],
                    inputs.warmup,
                );
                ir.domain_fraction(d) + transient
            })
            .collect();
        let report = NoiseReport {
            per_domain,
            per_domain_ir,
            ir_solve: ir.solve_stats(),
        };
        if self.telemetry.is_enabled() {
            let solve = report.ir_solve;
            let event = match ir.backend() {
                "direct" => "pdn.ir_direct",
                "mgcg" => "pdn.ir_mgcg",
                _ => "pdn.ir_cg",
            };
            self.telemetry.solve_timed(
                event,
                solve.iterations as usize,
                solve.max_residual,
                ir.backend(),
                ir.factor_seconds(),
                ir.solve_seconds(),
            );
            self.telemetry
                .gauge("pdn.noise_max_pct", report.max_percent());
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdnConfig;
    use floorplan::reference::power8_like;
    use simkit::DeterministicRng;

    fn step_window(len: usize, at: usize, height: f64) -> Vec<f64> {
        (0..len)
            .map(|i| if i < at { 1.0 } else { 1.0 + height })
            .collect()
    }

    fn setup() -> (floorplan::Floorplan, PdnModel, NoiseAnalyzer) {
        let chip = power8_like();
        let model = PdnModel::new(&chip, PdnConfig::default());
        let analyzer = NoiseAnalyzer::new(Hertz::from_ghz(4.0), Seconds::from_nanos(15.0));
        (chip, model, analyzer)
    }

    #[test]
    fn all_on_noise_is_in_band() {
        let (chip, model, analyzer) = setup();
        let powers = vec![Watts::new(1.5); chip.blocks().len()];
        let windows: Vec<Vec<f64>> = (0..chip.domains().len())
            .map(|i| step_window(2000, 1200 + 37 * i, 0.25))
            .collect();
        let gating = GatingState::all_on(chip.vr_sites().len());
        let report = analyzer
            .analyze(
                &chip,
                &model,
                &gating,
                &WindowInputs {
                    block_powers: &powers,
                    domain_multipliers: &windows,
                    warmup: 1000,
                },
            )
            .unwrap();
        let pct = report.max_percent();
        assert!(pct > 2.0 && pct < 25.0, "all-on noise {pct}%");
    }

    #[test]
    fn memory_side_gating_worsens_noise() {
        let (chip, model, analyzer) = setup();
        let powers: Vec<Watts> = chip
            .blocks()
            .iter()
            .map(|b| {
                if b.kind().is_logic() {
                    Watts::new(2.5)
                } else {
                    Watts::new(0.5)
                }
            })
            .collect();
        let windows: Vec<Vec<f64>> = (0..chip.domains().len())
            .map(|_| step_window(2000, 1500, 0.3))
            .collect();
        let inputs = WindowInputs {
            block_powers: &powers,
            domain_multipliers: &windows,
            warmup: 1000,
        };
        let all_on = GatingState::all_on(chip.vr_sites().len());
        let base = analyzer.analyze(&chip, &model, &all_on, &inputs).unwrap();
        // OracT-like: keep only memory-side VRs in every core domain.
        let mut gated = all_on.clone();
        for domain in chip.domains() {
            for &v in domain.vrs() {
                if chip.vr_site(v).neighborhood() == floorplan::VrNeighborhood::Logic {
                    gated.set(v, false).unwrap();
                }
            }
        }
        // L3 domains have only memory VRs — all still on; core domains
        // run on 3 of 9.
        let worse = analyzer.analyze(&chip, &model, &gated, &inputs).unwrap();
        assert!(
            worse.max_fraction() > 1.3 * base.max_fraction(),
            "gated {} vs all-on {}",
            worse.max_percent(),
            base.max_percent()
        );
    }

    #[test]
    fn domains_over_threshold_detection() {
        let report = NoiseReport::from_fractions(vec![0.05, 0.12, 0.09, 0.15]);
        assert_eq!(report.domains_over(0.10), vec![DomainId(1), DomainId(3)]);
        assert!((report.max_percent() - 15.0).abs() < 1e-12);
        assert_eq!(report.fractions().len(), 4);
    }

    #[test]
    fn analysis_reports_ir_solve_stats_and_emits_telemetry() {
        use simkit::telemetry::{EventKind, Telemetry};

        let (chip, model, mut analyzer) = setup();
        let (tel, sink) = Telemetry::recorder();
        analyzer.set_telemetry(tel);
        let powers = vec![Watts::new(1.0); chip.blocks().len()];
        let windows: Vec<Vec<f64>> = (0..chip.domains().len())
            .map(|_| step_window(2000, 1500, 0.2))
            .collect();
        let gating = GatingState::all_on(chip.vr_sites().len());
        let report = analyzer
            .analyze(
                &chip,
                &model,
                &gating,
                &WindowInputs {
                    block_powers: &powers,
                    domain_multipliers: &windows,
                    warmup: 1000,
                },
            )
            .unwrap();
        let solve = report.ir_solve_stats();
        assert_eq!(solve.solves as usize, chip.domains().len());
        assert!(solve.iterations > 0, "IR solve iterations were dropped");
        assert!(solve.max_residual.is_finite() && solve.max_residual <= 1e-9);
        assert_eq!(sink.count_kind(EventKind::Solve), 1);
        assert_eq!(sink.count_kind(EventKind::Gauge), 1);
        assert!(sink.events().iter().any(|e| e.name == "pdn.noise_max_pct"));
    }

    #[test]
    fn analysis_is_deterministic() {
        let (chip, model, analyzer) = setup();
        let mut rng = DeterministicRng::new(5);
        let powers: Vec<Watts> = chip
            .blocks()
            .iter()
            .map(|_| Watts::new(1.0 + rng.uniform_f64()))
            .collect();
        let windows: Vec<Vec<f64>> = (0..chip.domains().len())
            .map(|_| step_window(2000, 1500, 0.2))
            .collect();
        let inputs = WindowInputs {
            block_powers: &powers,
            domain_multipliers: &windows,
            warmup: 1000,
        };
        let gating = GatingState::all_on(chip.vr_sites().len());
        let a = analyzer.analyze(&chip, &model, &gating, &inputs).unwrap();
        let b = analyzer.analyze(&chip, &model, &gating, &inputs).unwrap();
        assert_eq!(a, b);
    }
}
