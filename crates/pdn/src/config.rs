//! PDN model configuration.

use simkit::linalg::SolverBackend;
use simkit::units::Volts;

/// Electrical parameters of the on-chip power-delivery network.
///
/// Defaults are calibrated so that the reference chip under the `all-on`
/// baseline exhibits a maximum voltage noise of ≈ 13 % of nominal Vdd
/// (the paper's Fig. 11 all-on level), split between static IR drop and
/// transient di/dt noise.
#[derive(Debug, Clone, PartialEq)]
pub struct PdnConfig {
    /// Nominal supply voltage.
    pub vdd: Volts,
    /// Local-grid cell edge length, mm.
    pub cell_mm: f64,
    /// Effective sheet resistance of the local power grid, Ω per square.
    pub r_sheet_ohm: f64,
    /// Internal (output) resistance of one active component regulator, Ω.
    pub r_vr_ohm: f64,
    /// Lumped global-grid resistance from the C4 pads to regulator
    /// inputs, Ω (multiplies total chip current).
    pub r_global_ohm: f64,
    /// Characteristic transient impedance of a domain with
    /// [`PdnConfig::z_reference_active`] regulators active, Ω (scales the
    /// di/dt kernel).
    pub z_transient_ohm: f64,
    /// Active-regulator count at which `z_transient_ohm` is calibrated;
    /// the effective impedance scales as `sqrt(reference / n_active)` —
    /// each active regulator adds output conductance in parallel, while
    /// bypassed regulators' decoupling stays on the rail.
    pub z_reference_active: f64,
    /// Ring-down period of the transient response, cycles.
    pub ring_period_cycles: f64,
    /// Passive decay constant of the transient response, cycles (before
    /// the regulator control loop reacts).
    pub passive_decay_cycles: f64,
    /// Solver family for the per-domain IR-drop systems.
    ///
    /// Constructors default this to [`SolverBackend::env_default`]
    /// (`SIMKIT_SOLVER` override, else [`SolverBackend::Auto`]). `Auto`
    /// and `Direct` factor each domain's grid once and refactor only when
    /// a gating change patches the matrix values; `Cg` (and
    /// `GaussSeidel`, which the PDN maps to CG — the grids have no
    /// Gauss–Seidel path) keep the previous iterative behaviour.
    pub solver: SolverBackend,
}

impl PdnConfig {
    /// The calibrated reference configuration.
    pub fn reference() -> Self {
        PdnConfig {
            vdd: Volts::new(1.03),
            cell_mm: 0.25,
            r_sheet_ohm: 0.008,
            r_vr_ohm: 0.003,
            r_global_ohm: 0.0001,
            z_transient_ohm: 0.034,
            z_reference_active: 9.0,
            ring_period_cycles: 40.0,
            passive_decay_cycles: 90.0,
            solver: SolverBackend::env_default(),
        }
    }

    /// Appends every field as canonical `(<prefix><name>, value)` pairs
    /// for content hashing (floats render with `{:e}`).
    pub fn config_fields(&self, prefix: &str, out: &mut Vec<(String, String)>) {
        for (name, value) in [
            ("vdd", self.vdd.get()),
            ("cell_mm", self.cell_mm),
            ("r_sheet_ohm", self.r_sheet_ohm),
            ("r_vr_ohm", self.r_vr_ohm),
            ("r_global_ohm", self.r_global_ohm),
            ("z_transient_ohm", self.z_transient_ohm),
            ("z_reference_active", self.z_reference_active),
            ("ring_period_cycles", self.ring_period_cycles),
            ("passive_decay_cycles", self.passive_decay_cycles),
        ] {
            out.push((format!("{prefix}{name}"), format!("{value:e}")));
        }
        out.push((format!("{prefix}solver"), self.solver.name().to_string()));
    }
}

impl Default for PdnConfig {
    fn default() -> Self {
        PdnConfig::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_are_positive() {
        let c = PdnConfig::reference();
        assert!(c.vdd.get() > 0.0);
        assert!(c.cell_mm > 0.0);
        assert!(c.r_sheet_ohm > 0.0);
        assert!(c.r_vr_ohm > 0.0);
        assert!(c.r_global_ohm > 0.0);
        assert!(c.z_transient_ohm > 0.0);
        assert!(c.z_reference_active >= 1.0);
        assert!(c.ring_period_cycles > 1.0);
        assert!(c.passive_decay_cycles > 1.0);
    }

    #[test]
    fn default_is_reference() {
        assert_eq!(PdnConfig::default(), PdnConfig::reference());
    }
}
