//! VoltSpot-style power-delivery-network modelling for the ThermoGater
//! reproduction.
//!
//! The paper extends VoltSpot to quantify how thermally-aware regulator
//! gating affects voltage noise: gating the regulator closest to a hot
//! logic block forces its current through longer grid paths (higher IR
//! drop) and weakens the local transient response. This crate models both
//! effects:
//!
//! * [`PdnModel`] — per-Vdd-domain nodal DC grids. Each domain's local
//!   power grid is discretised into cells connected by rail resistances;
//!   **active** regulators provide low-impedance paths to the regulated
//!   supply, blocks inject their load currents, and a conjugate-gradient
//!   solve yields the static IR-drop map. A lumped global-grid term
//!   (C4 pads → regulator inputs) adds the chip-wide component.
//! * [`transient`] — cycle-resolution di/dt noise over sampled 2 K-cycle
//!   windows (the paper's VoltSpot sampling methodology), via an
//!   underdamped impulse-response kernel whose magnitude shrinks with the
//!   number of active regulators and with regulator response speed (the
//!   LDO-vs-FIVR distinction of Fig. 15).
//! * [`NoiseAnalyzer`] — combines both into the per-domain maximum
//!   voltage-noise percentages reported in Figs. 11/14/15.
//! * [`EmergencyDetector`] / [`EmergencyPredictor`] — the 10 %-of-Vdd
//!   voltage-emergency definition of Section 6.2.4 and the ~90 %-accurate
//!   Reddi-style predictor PracVT deploys.
//! * [`placement`] — the "Deep Optimization"-like iterative regulator
//!   placement of Section 5.
//!
//! # Examples
//!
//! ```
//! use pdn::{PdnConfig, PdnModel};
//! use floorplan::reference::power8_like;
//! use vreg::GatingState;
//! use simkit::units::Watts;
//!
//! let chip = power8_like();
//! let model = PdnModel::new(&chip, PdnConfig::default());
//! let powers = vec![Watts::new(1.5); chip.blocks().len()];
//! let all_on = GatingState::all_on(chip.vr_sites().len());
//! let report = model.ir_drop(&all_on, &powers)?;
//! assert!(report.chip_max_fraction() > 0.0);
//! # Ok::<(), simkit::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod emergency;
mod grid;
mod noise;
pub mod placement;
pub mod transient;

pub use config::PdnConfig;
pub use emergency::{EmergencyDetector, EmergencyPredictor};
pub use grid::{IrReport, PdnModel};
pub use noise::{NoiseAnalyzer, NoiseReport, WindowInputs};
