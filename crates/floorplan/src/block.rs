//! Functional-unit blocks.

use simkit::Rect;
use std::fmt;

/// Identifier of a [`Block`] within a [`crate::Floorplan`].
///
/// Indices are dense: the block with `BlockId(i)` is the `i`-th entry of
/// [`crate::Floorplan::blocks`], so power/thermal traces can use plain
/// vectors indexed by block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// The microarchitectural role of a block.
///
/// The distinction that matters to ThermoGater is *logic vs. memory*:
/// logic units are power-hungry and noise-critical, on-chip memory blocks
/// are cooler — the tension Figs. 12–13 of the paper revolve around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum UnitKind {
    /// Instruction fetch unit (includes the L1 instruction cache).
    InstructionFetch,
    /// Instruction scheduling unit.
    InstructionSchedule,
    /// Execution unit.
    Execution,
    /// Load/store unit (includes the L1 data cache).
    LoadStore,
    /// Private per-core L2 cache.
    L2Cache,
    /// Shared L3 cache bank.
    L3Cache,
    /// Network-on-chip.
    Noc,
    /// Memory controller.
    MemoryController,
}

impl UnitKind {
    /// Whether this unit is a logic block (vs. an on-chip memory block).
    ///
    /// The NOC and memory controllers count as logic: they are active
    /// switching fabric, not storage arrays.
    pub fn is_logic(self) -> bool {
        !matches!(self, UnitKind::L2Cache | UnitKind::L3Cache)
    }

    /// Whether this unit is an on-chip memory block.
    pub fn is_memory(self) -> bool {
        !self.is_logic()
    }

    /// Short display label matching the paper's floorplan figure.
    pub fn label(self) -> &'static str {
        match self {
            UnitKind::InstructionFetch => "IFU",
            UnitKind::InstructionSchedule => "ISU",
            UnitKind::Execution => "EXU",
            UnitKind::LoadStore => "LSU",
            UnitKind::L2Cache => "L2",
            UnitKind::L3Cache => "L3",
            UnitKind::Noc => "NOC",
            UnitKind::MemoryController => "MC",
        }
    }
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A placed functional unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    id: BlockId,
    name: String,
    kind: UnitKind,
    rect: Rect,
}

impl Block {
    /// Creates a block. Normally called through
    /// [`crate::FloorplanBuilder::add_block`], which assigns the id.
    pub(crate) fn new(id: BlockId, name: impl Into<String>, kind: UnitKind, rect: Rect) -> Self {
        Block {
            id,
            name: name.into(),
            kind,
            rect,
        }
    }

    /// Dense identifier of this block.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// Human-readable name, e.g. `"core3.EXU"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Microarchitectural role.
    pub fn kind(&self) -> UnitKind {
        self.kind
    }

    /// Placement on the die.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Area in square millimeters.
    pub fn area_mm2(&self) -> f64 {
        self.rect.area_mm2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_memory_partition_is_total() {
        let kinds = [
            UnitKind::InstructionFetch,
            UnitKind::InstructionSchedule,
            UnitKind::Execution,
            UnitKind::LoadStore,
            UnitKind::L2Cache,
            UnitKind::L3Cache,
            UnitKind::Noc,
            UnitKind::MemoryController,
        ];
        for kind in kinds {
            assert_ne!(kind.is_logic(), kind.is_memory(), "{kind} must be one");
        }
    }

    #[test]
    fn caches_are_memory() {
        assert!(UnitKind::L2Cache.is_memory());
        assert!(UnitKind::L3Cache.is_memory());
        assert!(UnitKind::Execution.is_logic());
        assert!(UnitKind::Noc.is_logic());
    }

    #[test]
    fn labels_match_paper_floorplan() {
        assert_eq!(UnitKind::InstructionFetch.label(), "IFU");
        assert_eq!(UnitKind::LoadStore.to_string(), "LSU");
        assert_eq!(UnitKind::MemoryController.label(), "MC");
    }

    #[test]
    fn block_accessors() {
        let rect = Rect::from_mm(0.0, 0.0, 2.0, 3.0);
        let b = Block::new(BlockId(4), "core0.L2", UnitKind::L2Cache, rect);
        assert_eq!(b.id(), BlockId(4));
        assert_eq!(b.name(), "core0.L2");
        assert_eq!(b.kind(), UnitKind::L2Cache);
        assert!((b.area_mm2() - 6.0).abs() < 1e-9);
        assert_eq!(format!("{}", b.id()), "B4");
    }
}
