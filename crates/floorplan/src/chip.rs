//! The immutable, validated floorplan.

use crate::block::{Block, BlockId};
use crate::domain::{DomainId, VddDomain};
use crate::vr_site::{VrId, VrSite};
use simkit::{Error, Point, Rect, Result};

/// A complete chip description: die outline, functional-unit blocks,
/// Vdd-domains, and component-regulator sites.
///
/// Construct one through [`crate::FloorplanBuilder`] or take the paper's
/// reference chip from [`crate::reference::power8_like`]. All collections
/// are densely indexed by their id newtypes, so simulation state can live
/// in plain vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    die: Rect,
    blocks: Vec<Block>,
    domains: Vec<VddDomain>,
    vr_sites: Vec<VrSite>,
}

impl Floorplan {
    pub(crate) fn from_parts(
        die: Rect,
        blocks: Vec<Block>,
        domains: Vec<VddDomain>,
        vr_sites: Vec<VrSite>,
    ) -> Result<Self> {
        if blocks.is_empty() {
            return Err(Error::invalid_argument("floorplan has no blocks"));
        }
        Ok(Floorplan {
            die,
            blocks,
            domains,
            vr_sites,
        })
    }

    /// Die outline.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// All blocks, indexable by [`BlockId`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// All Vdd-domains, indexable by [`DomainId`].
    pub fn domains(&self) -> &[VddDomain] {
        &self.domains
    }

    /// All regulator sites, indexable by [`VrId`].
    pub fn vr_sites(&self) -> &[VrSite] {
        &self.vr_sites
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics when the id does not belong to this floorplan.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// The domain with the given id.
    ///
    /// # Panics
    ///
    /// Panics when the id does not belong to this floorplan.
    pub fn domain(&self, id: DomainId) -> &VddDomain {
        &self.domains[id.0]
    }

    /// The regulator site with the given id.
    ///
    /// # Panics
    ///
    /// Panics when the id does not belong to this floorplan.
    pub fn vr_site(&self, id: VrId) -> &VrSite {
        &self.vr_sites[id.0]
    }

    /// The domain a regulator belongs to.
    ///
    /// # Panics
    ///
    /// Panics when the id does not belong to this floorplan.
    pub fn domain_of_vr(&self, id: VrId) -> &VddDomain {
        self.domain(self.vr_site(id).domain())
    }

    /// The block covering `point`, if any (blocks never overlap).
    pub fn block_at(&self, point: Point) -> Option<&Block> {
        self.blocks.iter().find(|b| b.rect().contains(point))
    }

    /// The block whose outline is closest to `point` (the block itself
    /// when the point is inside one).
    ///
    /// Returns `None` only for an empty floorplan, which
    /// [`crate::FloorplanBuilder::build`] never produces.
    pub fn nearest_block(&self, point: Point) -> Option<&Block> {
        self.blocks.iter().min_by(|a, b| {
            let da = rect_distance(a.rect(), point);
            let db = rect_distance(b.rect(), point);
            da.partial_cmp(&db).expect("finite distances")
        })
    }

    /// Total die area in mm².
    pub fn die_area_mm2(&self) -> f64 {
        self.die.area_mm2()
    }

    /// Sum of all block areas in mm².
    pub fn occupied_area_mm2(&self) -> f64 {
        self.blocks.iter().map(Block::area_mm2).sum()
    }

    /// Relocates a regulator site — used by the PDN placement optimiser
    /// (Section 5 of the paper moves VRs one by one to minimise the
    /// maximum voltage noise).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when the new center is outside
    /// the die.
    pub fn move_vr(&mut self, id: VrId, center: Point) -> Result<()> {
        if !self.die.contains(center) {
            return Err(Error::invalid_argument("VR center outside the die"));
        }
        self.vr_sites[id.0].set_center(center);
        Ok(())
    }
}

fn rect_distance(rect: Rect, p: Point) -> f64 {
    let dx = (rect.origin.x.get() - p.x.get())
        .max(p.x.get() - rect.right().get())
        .max(0.0);
    let dy = (rect.origin.y.get() - p.y.get())
        .max(p.y.get() - rect.top().get())
        .max(0.0);
    dx.hypot(dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::UnitKind;
    use crate::builder::FloorplanBuilder;
    use crate::domain::DomainKind;

    fn tiny_chip() -> Floorplan {
        let mut b = FloorplanBuilder::new(Rect::from_mm(0.0, 0.0, 10.0, 10.0));
        let d = b.add_domain("core0", DomainKind::Core);
        b.add_block(
            d,
            "EXU",
            UnitKind::Execution,
            Rect::from_mm(0.0, 0.0, 5.0, 10.0),
        )
        .unwrap();
        b.add_block(
            d,
            "L2",
            UnitKind::L2Cache,
            Rect::from_mm(5.0, 0.0, 5.0, 10.0),
        )
        .unwrap();
        b.add_vr(d, Point::from_mm(2.5, 5.0), 0.04).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookup_by_ids() {
        let chip = tiny_chip();
        assert_eq!(chip.block(BlockId(0)).name(), "EXU");
        assert_eq!(chip.domain(DomainId(0)).name(), "core0");
        assert_eq!(chip.vr_site(VrId(0)).domain(), DomainId(0));
        assert_eq!(chip.domain_of_vr(VrId(0)).name(), "core0");
    }

    #[test]
    fn block_at_point() {
        let chip = tiny_chip();
        assert_eq!(
            chip.block_at(Point::from_mm(1.0, 1.0)).unwrap().name(),
            "EXU"
        );
        assert_eq!(
            chip.block_at(Point::from_mm(7.0, 1.0)).unwrap().name(),
            "L2"
        );
        assert!(chip.block_at(Point::from_mm(15.0, 1.0)).is_none());
    }

    #[test]
    fn nearest_block_outside() {
        let chip = tiny_chip();
        // Point just right of the die is nearest to L2.
        let near = chip.nearest_block(Point::from_mm(10.5, 5.0)).unwrap();
        assert_eq!(near.name(), "L2");
    }

    #[test]
    fn areas() {
        let chip = tiny_chip();
        assert!((chip.die_area_mm2() - 100.0).abs() < 1e-9);
        assert!((chip.occupied_area_mm2() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn move_vr_validates_bounds() {
        let mut chip = tiny_chip();
        chip.move_vr(VrId(0), Point::from_mm(8.0, 8.0)).unwrap();
        assert!((chip.vr_site(VrId(0)).center().x.as_mm() - 8.0).abs() < 1e-9);
        assert!(chip.move_vr(VrId(0), Point::from_mm(20.0, 5.0)).is_err());
    }
}
