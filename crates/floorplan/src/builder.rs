//! Incremental construction of validated floorplans.

use crate::block::{Block, BlockId, UnitKind};
use crate::chip::Floorplan;
use crate::domain::{DomainId, DomainKind, VddDomain};
use crate::vr_site::{VrId, VrNeighborhood, VrSite};
use simkit::{Error, Point, Rect, Result};

/// Builder for a [`Floorplan`].
///
/// # Examples
///
/// ```
/// use floorplan::{FloorplanBuilder, UnitKind, DomainKind};
/// use simkit::Rect;
///
/// let mut b = FloorplanBuilder::new(Rect::from_mm(0.0, 0.0, 10.0, 10.0));
/// let d = b.add_domain("core0", DomainKind::Core);
/// b.add_block(d, "core0.EXU", UnitKind::Execution, Rect::from_mm(0.0, 0.0, 5.0, 10.0))?;
/// b.add_block(d, "core0.L2", UnitKind::L2Cache, Rect::from_mm(5.0, 0.0, 5.0, 10.0))?;
/// b.add_vr(d, simkit::Point::from_mm(2.5, 5.0), 0.04)?;
/// let chip = b.build()?;
/// assert_eq!(chip.blocks().len(), 2);
/// # Ok::<(), simkit::Error>(())
/// ```
#[derive(Debug)]
pub struct FloorplanBuilder {
    die: Rect,
    blocks: Vec<Block>,
    domains: Vec<VddDomain>,
    vr_sites: Vec<VrSite>,
}

impl FloorplanBuilder {
    /// Starts a floorplan with the given die outline.
    pub fn new(die: Rect) -> Self {
        FloorplanBuilder {
            die,
            blocks: Vec::new(),
            domains: Vec::new(),
            vr_sites: Vec::new(),
        }
    }

    /// Registers a new Vdd-domain and returns its id.
    pub fn add_domain(&mut self, name: impl Into<String>, kind: DomainKind) -> DomainId {
        let id = DomainId(self.domains.len());
        self.domains.push(VddDomain::new(id, name, kind));
        id
    }

    /// Places a functional-unit block inside `domain`.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidArgument`] when the block pokes outside the die,
    ///   has non-positive area, or overlaps an existing block;
    /// * [`Error::InvalidArgument`] when `domain` is unknown.
    pub fn add_block(
        &mut self,
        domain: DomainId,
        name: impl Into<String>,
        kind: UnitKind,
        rect: Rect,
    ) -> Result<BlockId> {
        let name = name.into();
        if rect.area() <= 0.0 {
            return Err(Error::invalid_argument(format!(
                "block {name} has non-positive area"
            )));
        }
        const EPS: f64 = 1e-9;
        if rect.origin.x.get() < self.die.origin.x.get() - EPS
            || rect.origin.y.get() < self.die.origin.y.get() - EPS
            || rect.right().get() > self.die.right().get() + EPS
            || rect.top().get() > self.die.top().get() + EPS
        {
            return Err(Error::invalid_argument(format!(
                "block {name} extends outside the die"
            )));
        }
        for existing in &self.blocks {
            // Tolerate hairline numerical overlaps from mm arithmetic.
            if existing.rect().intersection_area(&rect) > 1e-12 {
                return Err(Error::invalid_argument(format!(
                    "block {name} overlaps {}",
                    existing.name()
                )));
            }
        }
        let dom = self
            .domains
            .get_mut(domain.0)
            .ok_or_else(|| Error::invalid_argument(format!("unknown domain {domain}")))?;
        let id = BlockId(self.blocks.len());
        dom.push_block(id);
        self.blocks.push(Block::new(id, name, kind, rect));
        Ok(id)
    }

    /// Places a component voltage regulator inside `domain` at `center`
    /// with the given footprint area (mm²). The regulator's
    /// logic/memory neighborhood is derived from the nearest block of its
    /// domain at build time.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidArgument`] when `domain` is unknown, the center
    ///   lies outside the die, or the area is non-positive.
    pub fn add_vr(&mut self, domain: DomainId, center: Point, area_mm2: f64) -> Result<VrId> {
        if area_mm2 <= 0.0 {
            return Err(Error::invalid_argument("VR area must be positive"));
        }
        if !self.die.contains(center) {
            return Err(Error::invalid_argument(format!(
                "VR center ({:.3}, {:.3}) mm outside the die",
                center.x.as_mm(),
                center.y.as_mm()
            )));
        }
        let dom = self
            .domains
            .get_mut(domain.0)
            .ok_or_else(|| Error::invalid_argument(format!("unknown domain {domain}")))?;
        let id = VrId(self.vr_sites.len());
        dom.push_vr(id);
        // Neighborhood is finalised in build(); placeholder until then.
        self.vr_sites.push(VrSite::new(
            id,
            domain,
            center,
            area_mm2,
            VrNeighborhood::Logic,
        ));
        Ok(id)
    }

    /// Validates the assembled plan and produces the immutable
    /// [`Floorplan`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when a domain ends up with no
    /// blocks, when the floorplan has no regulators at all, or when a
    /// regulator's domain has no blocks to classify it against.
    pub fn build(mut self) -> Result<Floorplan> {
        for dom in &self.domains {
            if dom.blocks().is_empty() {
                return Err(Error::invalid_argument(format!(
                    "domain {} has no blocks",
                    dom.name()
                )));
            }
        }
        // Classify each VR by the kind of the nearest block in its domain.
        let neighborhoods: Vec<VrNeighborhood> = self
            .vr_sites
            .iter()
            .map(|site| {
                let dom = &self.domains[site.domain().0];
                let nearest = dom
                    .blocks()
                    .iter()
                    .map(|&bid| &self.blocks[bid.0])
                    .min_by(|a, b| {
                        let da = block_distance(a.rect(), site.center());
                        let db = block_distance(b.rect(), site.center());
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("domain verified non-empty");
                if nearest.kind().is_memory() {
                    VrNeighborhood::Memory
                } else {
                    VrNeighborhood::Logic
                }
            })
            .collect();
        for (site, hood) in self.vr_sites.iter_mut().zip(neighborhoods) {
            *site = VrSite::new(
                site.id(),
                site.domain(),
                site.center(),
                site.area_mm2(),
                hood,
            );
        }
        Floorplan::from_parts(self.die, self.blocks, self.domains, self.vr_sites)
    }
}

/// Distance from a point to a rectangle (zero when inside).
fn block_distance(rect: Rect, p: Point) -> f64 {
    let dx = (rect.origin.x.get() - p.x.get())
        .max(p.x.get() - rect.right().get())
        .max(0.0);
    let dy = (rect.origin.y.get() - p.y.get())
        .max(p.y.get() - rect.top().get())
        .max(0.0);
    dx.hypot(dy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> Rect {
        Rect::from_mm(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn rejects_block_outside_die() {
        let mut b = FloorplanBuilder::new(die());
        let d = b.add_domain("d", DomainKind::Core);
        let err = b
            .add_block(
                d,
                "x",
                UnitKind::Execution,
                Rect::from_mm(8.0, 8.0, 5.0, 5.0),
            )
            .unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn rejects_overlapping_blocks() {
        let mut b = FloorplanBuilder::new(die());
        let d = b.add_domain("d", DomainKind::Core);
        b.add_block(
            d,
            "a",
            UnitKind::Execution,
            Rect::from_mm(0.0, 0.0, 5.0, 5.0),
        )
        .unwrap();
        let err = b
            .add_block(
                d,
                "b",
                UnitKind::LoadStore,
                Rect::from_mm(4.0, 4.0, 5.0, 5.0),
            )
            .unwrap_err();
        assert!(err.to_string().contains("overlaps"));
    }

    #[test]
    fn abutting_blocks_are_fine() {
        let mut b = FloorplanBuilder::new(die());
        let d = b.add_domain("d", DomainKind::Core);
        b.add_block(
            d,
            "a",
            UnitKind::Execution,
            Rect::from_mm(0.0, 0.0, 5.0, 10.0),
        )
        .unwrap();
        b.add_block(
            d,
            "b",
            UnitKind::LoadStore,
            Rect::from_mm(5.0, 0.0, 5.0, 10.0),
        )
        .unwrap();
    }

    #[test]
    fn rejects_vr_outside_die() {
        let mut b = FloorplanBuilder::new(die());
        let d = b.add_domain("d", DomainKind::Core);
        assert!(b.add_vr(d, Point::from_mm(11.0, 5.0), 0.04).is_err());
        assert!(b.add_vr(d, Point::from_mm(5.0, 5.0), 0.0).is_err());
    }

    #[test]
    fn rejects_unknown_domain() {
        let mut b = FloorplanBuilder::new(die());
        let err = b
            .add_block(
                DomainId(3),
                "x",
                UnitKind::Execution,
                Rect::from_mm(0.0, 0.0, 1.0, 1.0),
            )
            .unwrap_err();
        assert!(err.to_string().contains("unknown domain"));
    }

    #[test]
    fn empty_domain_fails_build() {
        let mut b = FloorplanBuilder::new(die());
        b.add_domain("empty", DomainKind::Core);
        assert!(b.build().is_err());
    }

    #[test]
    fn vr_neighborhood_classified_by_nearest_block() {
        let mut b = FloorplanBuilder::new(die());
        let d = b.add_domain("core", DomainKind::Core);
        b.add_block(
            d,
            "EXU",
            UnitKind::Execution,
            Rect::from_mm(0.0, 0.0, 10.0, 5.0),
        )
        .unwrap();
        b.add_block(
            d,
            "L2",
            UnitKind::L2Cache,
            Rect::from_mm(0.0, 5.0, 10.0, 5.0),
        )
        .unwrap();
        let logic_vr = b.add_vr(d, Point::from_mm(5.0, 1.0), 0.04).unwrap();
        let mem_vr = b.add_vr(d, Point::from_mm(5.0, 9.0), 0.04).unwrap();
        let chip = b.build().unwrap();
        assert_eq!(chip.vr_site(logic_vr).neighborhood(), VrNeighborhood::Logic);
        assert_eq!(chip.vr_site(mem_vr).neighborhood(), VrNeighborhood::Memory);
    }

    #[test]
    fn point_rect_distance() {
        let r = Rect::from_mm(1.0, 1.0, 2.0, 2.0);
        // Inside → 0.
        assert_eq!(block_distance(r, Point::from_mm(2.0, 2.0)), 0.0);
        // Left of the rect → horizontal gap.
        let d = block_distance(r, Point::from_mm(0.0, 2.0));
        assert!((d - 1e-3).abs() < 1e-12);
        // Diagonal corner gap.
        let d = block_distance(r, Point::from_mm(0.0, 0.0));
        assert!((d - (2e-6f64).sqrt()).abs() < 1e-12);
    }
}
