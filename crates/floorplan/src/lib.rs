//! Chip floorplans for the ThermoGater reproduction.
//!
//! A [`Floorplan`] describes the die outline, the functional-unit
//! [`Block`]s placed on it, the [`VddDomain`]s that partition those blocks,
//! and the [`VrSite`]s where distributed component voltage regulators sit.
//! The reference chip the paper evaluates — an 8-core POWER8-like part
//! with a per-core IFU/ISU/EXU/LSU/L2 layout, eight L3 banks, a NOC
//! column, two memory controllers, and 96 regulators spread over 16
//! Vdd-domains — is produced by [`reference::power8_like`].
//!
//! # Examples
//!
//! ```
//! use floorplan::reference;
//!
//! let chip = reference::power8_like();
//! assert_eq!(chip.domains().len(), 16);
//! assert_eq!(chip.vr_sites().len(), 96);
//! // Die area matches Table 1 of the paper: 441 mm².
//! assert!((chip.die().area_mm2() - 441.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod builder;
mod chip;
mod domain;
pub mod reference;
mod vr_site;

pub use block::{Block, BlockId, UnitKind};
pub use builder::FloorplanBuilder;
pub use chip::Floorplan;
pub use domain::{DomainId, DomainKind, VddDomain};
pub use vr_site::{VrId, VrNeighborhood, VrSite};
