//! The paper's reference chip: an 8-core POWER8-like processor.
//!
//! Geometry follows Table 1 and Fig. 4 of the paper:
//!
//! * 441 mm² die (21 × 21 mm) at 22 nm, 150 W TDP, Vdd = 1.03 V;
//! * 8 cores in two rows of four; each core holds an ISU, EXU, IFU, LSU
//!   (logic) and a private L2 strip (memory);
//! * a bottom uncore band with 8 L3 banks in two columns, a central NOC
//!   column, and a memory controller at each edge;
//! * 16 Vdd-domains — one per core (9 component VRs each) and one per L3
//!   bank (3 component VRs each) — for 96 VRs total, uniformly placed;
//! * every VR occupies 0.04 mm².

use crate::block::UnitKind;
use crate::builder::FloorplanBuilder;
use crate::chip::Floorplan;
use crate::domain::DomainKind;
use simkit::{Point, Rect};

/// Die edge length in millimeters (21 × 21 mm = 441 mm², Table 1).
pub const DIE_MM: f64 = 21.0;
/// Component-regulator footprint in mm² (Section 5).
pub const VR_AREA_MM2: f64 = 0.04;
/// Component regulators per core Vdd-domain (Section 5).
pub const CORE_VR_COUNT: usize = 9;
/// Component regulators per L3-bank Vdd-domain (Section 5).
pub const L3_VR_COUNT: usize = 3;
/// Number of cores.
pub const CORE_COUNT: usize = 8;
/// Number of L3 banks.
pub const L3_BANK_COUNT: usize = 8;
/// Total component regulators on the chip.
pub const TOTAL_VR_COUNT: usize = CORE_COUNT * CORE_VR_COUNT + L3_BANK_COUNT * L3_VR_COUNT;

const CORE_W: f64 = DIE_MM / 4.0; // 5.25 mm
const CORE_H: f64 = 6.0;
const CORE_ROW0_Y: f64 = 15.0;
const CORE_ROW1_Y: f64 = 9.0;
const UNCORE_H: f64 = 9.0;
const MC_W: f64 = 1.5;
const NOC_W: f64 = 2.0;
const L3_REGION_W: f64 = (DIE_MM - 2.0 * MC_W - NOC_W) / 2.0; // 8 mm
const L3_BANK_H: f64 = UNCORE_H / 4.0; // 2.25 mm

/// Builds the default POWER8-like reference chip.
///
/// # Examples
///
/// ```
/// let chip = floorplan::reference::power8_like();
/// assert_eq!(chip.vr_sites().len(), floorplan::reference::TOTAL_VR_COUNT);
/// let core_domains = chip
///     .domains()
///     .iter()
///     .filter(|d| d.kind() == floorplan::DomainKind::Core)
///     .count();
/// assert_eq!(core_domains, 8);
/// ```
///
/// # Panics
///
/// Never panics for the built-in geometry; the internal builder calls are
/// all statically valid.
pub fn power8_like() -> Floorplan {
    power8_like_with_vr_counts(CORE_VR_COUNT, L3_VR_COUNT)
}

/// Builds the reference chip with a custom number of component
/// regulators per core domain and per L3-bank domain — the knob behind
/// the paper's footnote 2 observation that "a lower regulator count
/// worsens both the thermal and the voltage noise profile."
///
/// Regulators are placed on a uniform grid inside each domain region
/// (columns × rows chosen nearest to square).
///
/// # Examples
///
/// ```
/// // A sparser network: 6 VRs per core, 2 per L3 bank.
/// let chip = floorplan::reference::power8_like_with_vr_counts(6, 2);
/// assert_eq!(chip.vr_sites().len(), 8 * 6 + 8 * 2);
/// ```
///
/// # Panics
///
/// Panics when either count is zero.
pub fn power8_like_with_vr_counts(core_vrs: usize, l3_vrs: usize) -> Floorplan {
    assert!(core_vrs > 0 && l3_vrs > 0, "VR counts must be positive");
    let mut b = FloorplanBuilder::new(Rect::from_mm(0.0, 0.0, DIE_MM, DIE_MM));

    // --- Cores: two rows of four -------------------------------------
    for core in 0..CORE_COUNT {
        let col = core % 4;
        let row = core / 4;
        let cx = col as f64 * CORE_W;
        let cy = if row == 0 { CORE_ROW0_Y } else { CORE_ROW1_Y };
        let name = format!("core{core}");
        let d = b.add_domain(&name, DomainKind::Core);

        let half_w = CORE_W / 2.0;
        // Top row of logic: ISU | EXU.
        b.add_block(
            d,
            format!("{name}.ISU"),
            UnitKind::InstructionSchedule,
            Rect::from_mm(cx, cy + 4.0, half_w, 2.0),
        )
        .expect("static geometry");
        b.add_block(
            d,
            format!("{name}.EXU"),
            UnitKind::Execution,
            Rect::from_mm(cx + half_w, cy + 4.0, half_w, 2.0),
        )
        .expect("static geometry");
        // Middle row of logic: IFU | LSU.
        b.add_block(
            d,
            format!("{name}.IFU"),
            UnitKind::InstructionFetch,
            Rect::from_mm(cx, cy + 2.0, half_w, 2.0),
        )
        .expect("static geometry");
        b.add_block(
            d,
            format!("{name}.LSU"),
            UnitKind::LoadStore,
            Rect::from_mm(cx + half_w, cy + 2.0, half_w, 2.0),
        )
        .expect("static geometry");
        // Bottom strip: private L2.
        b.add_block(
            d,
            format!("{name}.L2"),
            UnitKind::L2Cache,
            Rect::from_mm(cx, cy, CORE_W, 2.0),
        )
        .expect("static geometry");

        // Uniform grid of regulators over the core.
        for (px, py) in uniform_grid(cx, cy, CORE_W, CORE_H, core_vrs) {
            b.add_vr(d, Point::from_mm(px, py), VR_AREA_MM2)
                .expect("static geometry");
        }
    }

    // --- Uncore band: L3 banks, NOC, memory controllers --------------
    let l3_left_x = MC_W;
    let l3_right_x = MC_W + L3_REGION_W + NOC_W;
    for bank in 0..L3_BANK_COUNT {
        let col = bank / 4; // 0 = left column, 1 = right column
        let row = bank % 4;
        let bx = if col == 0 { l3_left_x } else { l3_right_x };
        let by = row as f64 * L3_BANK_H;
        let name = format!("l3bank{bank}");
        let d = b.add_domain(&name, DomainKind::L3Bank);
        b.add_block(
            d,
            format!("{name}.L3"),
            UnitKind::L3Cache,
            Rect::from_mm(bx, by, L3_REGION_W, L3_BANK_H),
        )
        .expect("static geometry");

        // Uncore slices: the NOC is split across the two column-adjacent
        // bottom banks, each MC attaches to its column's top bank, so all
        // 16 domains stay exactly one-per-core / one-per-L3-bank.
        match (col, row) {
            (0, 0) => {
                b.add_block(
                    d,
                    "noc.lower",
                    UnitKind::Noc,
                    Rect::from_mm(MC_W + L3_REGION_W, 0.0, NOC_W, UNCORE_H / 2.0),
                )
                .expect("static geometry");
            }
            (1, 0) => {
                b.add_block(
                    d,
                    "noc.upper",
                    UnitKind::Noc,
                    Rect::from_mm(MC_W + L3_REGION_W, UNCORE_H / 2.0, NOC_W, UNCORE_H / 2.0),
                )
                .expect("static geometry");
            }
            (0, 3) => {
                b.add_block(
                    d,
                    "mc.west",
                    UnitKind::MemoryController,
                    Rect::from_mm(0.0, 0.0, MC_W, UNCORE_H),
                )
                .expect("static geometry");
            }
            (1, 3) => {
                b.add_block(
                    d,
                    "mc.east",
                    UnitKind::MemoryController,
                    Rect::from_mm(DIE_MM - MC_W, 0.0, MC_W, UNCORE_H),
                )
                .expect("static geometry");
            }
            _ => {}
        }

        // Regulators in a uniform grid across the bank.
        for (px, py) in uniform_grid(bx, by, L3_REGION_W, L3_BANK_H, l3_vrs) {
            b.add_vr(d, Point::from_mm(px, py), VR_AREA_MM2)
                .expect("static geometry");
        }
    }

    b.build().expect("reference floorplan is statically valid")
}

/// `count` uniformly spread grid points inside a `w × h` mm region at
/// `(x0, y0)`, columns × rows chosen nearest to the region's aspect
/// ratio.
fn uniform_grid(x0: f64, y0: f64, w: f64, h: f64, count: usize) -> Vec<(f64, f64)> {
    // Pick the column count whose grid best matches the aspect ratio
    // while covering exactly `count` sites.
    let mut cols = ((count as f64 * w / h).sqrt().round() as usize).clamp(1, count);
    while !count.is_multiple_of(cols) {
        // Prefer exact factorisations (3×3, 3×2, 4×3, …); fall back by
        // decreasing the column count (1 always divides).
        cols -= 1;
    }
    let rows = count / cols;
    let mut out = Vec::with_capacity(count);
    for gy in 0..rows {
        for gx in 0..cols {
            let px = x0 + w * (2.0 * gx as f64 + 1.0) / (2.0 * cols as f64);
            let py = y0 + h * (2.0 * gy as f64 + 1.0) / (2.0 * rows as f64);
            out.push((px, py));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::UnitKind;
    use crate::domain::DomainKind;
    use crate::vr_site::VrNeighborhood;

    #[test]
    fn counts_match_paper() {
        let chip = power8_like();
        assert_eq!(chip.domains().len(), 16);
        assert_eq!(chip.vr_sites().len(), 96);
        let cores = chip
            .domains()
            .iter()
            .filter(|d| d.kind() == DomainKind::Core)
            .count();
        assert_eq!(cores, 8);
        for d in chip.domains() {
            match d.kind() {
                DomainKind::Core => assert_eq!(d.vr_count(), CORE_VR_COUNT),
                DomainKind::L3Bank => assert_eq!(d.vr_count(), L3_VR_COUNT),
            }
        }
    }

    #[test]
    fn die_area_is_441mm2() {
        let chip = power8_like();
        assert!((chip.die_area_mm2() - 441.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_tile_the_die_exactly() {
        // Cores cover 21×12, uncore band covers 21×9 — the whole die.
        let chip = power8_like();
        assert!((chip.occupied_area_mm2() - 441.0).abs() < 1e-6);
    }

    #[test]
    fn each_core_has_five_units() {
        let chip = power8_like();
        for d in chip
            .domains()
            .iter()
            .filter(|d| d.kind() == DomainKind::Core)
        {
            assert_eq!(d.blocks().len(), 5, "domain {}", d.name());
            let kinds: Vec<_> = d.blocks().iter().map(|&b| chip.block(b).kind()).collect();
            assert!(kinds.contains(&UnitKind::InstructionFetch));
            assert!(kinds.contains(&UnitKind::InstructionSchedule));
            assert!(kinds.contains(&UnitKind::Execution));
            assert!(kinds.contains(&UnitKind::LoadStore));
            assert!(kinds.contains(&UnitKind::L2Cache));
        }
    }

    #[test]
    fn core_vr_neighborhoods_split_six_logic_three_memory() {
        let chip = power8_like();
        for d in chip
            .domains()
            .iter()
            .filter(|d| d.kind() == DomainKind::Core)
        {
            let logic = d
                .vrs()
                .iter()
                .filter(|&&v| chip.vr_site(v).neighborhood() == VrNeighborhood::Logic)
                .count();
            assert_eq!(logic, 6, "domain {}", d.name());
        }
    }

    #[test]
    fn l3_vrs_are_memory_neighborhood() {
        let chip = power8_like();
        for d in chip
            .domains()
            .iter()
            .filter(|d| d.kind() == DomainKind::L3Bank)
        {
            for &v in d.vrs() {
                assert_eq!(chip.vr_site(v).neighborhood(), VrNeighborhood::Memory);
            }
        }
    }

    #[test]
    fn every_vr_sits_inside_its_domain_footprint() {
        let chip = power8_like();
        for site in chip.vr_sites() {
            let dom = chip.domain(site.domain());
            // The nearest block overall must belong to the same domain for
            // core VRs (L3 domains also own NOC/MC slices elsewhere, so
            // only check containment in the union for cores).
            if dom.kind() == DomainKind::Core {
                let hit = dom
                    .blocks()
                    .iter()
                    .any(|&bid| chip.block(bid).rect().contains(site.center()));
                assert!(hit, "VR {} outside its core domain", site.id());
            }
        }
    }

    #[test]
    fn vr_ids_are_dense_and_ordered() {
        let chip = power8_like();
        for (i, site) in chip.vr_sites().iter().enumerate() {
            assert_eq!(site.id().0, i);
        }
        // Core domains come first (72 VRs), then L3 banks (24).
        assert_eq!(chip.vr_site(crate::VrId(0)).domain(), crate::DomainId(0));
        assert_eq!(chip.vr_site(crate::VrId(72)).domain(), crate::DomainId(8));
    }

    #[test]
    fn noc_and_mcs_present_once() {
        let chip = power8_like();
        let nocs = chip
            .blocks()
            .iter()
            .filter(|b| b.kind() == UnitKind::Noc)
            .count();
        let mcs = chip
            .blocks()
            .iter()
            .filter(|b| b.kind() == UnitKind::MemoryController)
            .count();
        assert_eq!(nocs, 2);
        assert_eq!(mcs, 2);
    }

    #[test]
    fn custom_vr_counts_build_valid_chips() {
        for (core, l3) in [(4, 2), (6, 2), (12, 4), (1, 1)] {
            let chip = power8_like_with_vr_counts(core, l3);
            assert_eq!(chip.vr_sites().len(), 8 * core + 8 * l3);
            for d in chip.domains() {
                match d.kind() {
                    DomainKind::Core => assert_eq!(d.vr_count(), core),
                    DomainKind::L3Bank => assert_eq!(d.vr_count(), l3),
                }
            }
        }
    }

    #[test]
    fn default_counts_match_the_generic_builder() {
        // The parametric path must reproduce the canonical chip exactly
        // (cached experiment results depend on identical placement).
        let a = power8_like();
        let b = power8_like_with_vr_counts(CORE_VR_COUNT, L3_VR_COUNT);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_grid_spreads_points_inside_region() {
        let pts = uniform_grid(2.0, 3.0, 6.0, 4.0, 6);
        assert_eq!(pts.len(), 6);
        for &(x, y) in &pts {
            assert!(x > 2.0 && x < 8.0);
            assert!(y > 3.0 && y < 7.0);
        }
        // Prime counts degrade to a single column/row but still fit.
        let pts = uniform_grid(0.0, 0.0, 10.0, 1.0, 7);
        assert_eq!(pts.len(), 7);
    }

    #[test]
    #[should_panic(expected = "VR counts must be positive")]
    fn zero_vr_count_panics() {
        power8_like_with_vr_counts(0, 3);
    }

    #[test]
    fn total_vr_area_is_small() {
        let chip = power8_like();
        let total: f64 = chip.vr_sites().iter().map(|s| s.area_mm2()).sum();
        assert!((total - 96.0 * 0.04).abs() < 1e-9);
        assert!(total / chip.die_area_mm2() < 0.01);
    }
}
