//! Physical sites of component voltage regulators.

use crate::domain::DomainId;
use simkit::{units::Meters, Point, Rect};
use std::fmt;

/// Identifier of a [`VrSite`] within a [`crate::Floorplan`].
///
/// Indices are dense and chip-global (the paper's reference chip numbers
/// its 96 regulators 0..95), matching [`crate::Floorplan::vr_sites`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VrId(pub usize);

impl fmt::Display for VrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VR{}", self.0)
    }
}

/// What kind of circuitry dominates a regulator's immediate surroundings.
///
/// Fig. 13 of the paper bins regulators into "supplying logic units" vs.
/// "supplying on-chip memory blocks"; this classification is fixed by the
/// floorplan (the nearest block under/around the site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VrNeighborhood {
    /// Nearest to logic (IFU/ISU/EXU/LSU/NOC/MC).
    Logic,
    /// Nearest to on-chip memory (L2/L3).
    Memory,
}

/// The physical site of one component voltage regulator.
///
/// Sites are geometry only; the electrical model (efficiency curves,
/// gating state) lives in the `vreg` crate and is indexed by [`VrId`].
#[derive(Debug, Clone, PartialEq)]
pub struct VrSite {
    id: VrId,
    domain: DomainId,
    center: Point,
    area_mm2: f64,
    neighborhood: VrNeighborhood,
}

impl VrSite {
    pub(crate) fn new(
        id: VrId,
        domain: DomainId,
        center: Point,
        area_mm2: f64,
        neighborhood: VrNeighborhood,
    ) -> Self {
        VrSite {
            id,
            domain,
            center,
            area_mm2,
            neighborhood,
        }
    }

    /// Dense chip-global identifier.
    pub fn id(&self) -> VrId {
        self.id
    }

    /// The Vdd-domain this regulator belongs to.
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// Center of the regulator footprint.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Footprint area in square millimeters (0.04 mm² in the paper).
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// Whether the site neighbors logic or memory circuitry.
    pub fn neighborhood(&self) -> VrNeighborhood {
        self.neighborhood
    }

    /// The square footprint rectangle centered on [`VrSite::center`].
    pub fn footprint(&self) -> Rect {
        let side = Meters::from_mm(self.area_mm2.sqrt());
        Rect::new(
            Point::new(self.center.x - side / 2.0, self.center.y - side / 2.0),
            side,
            side,
        )
    }

    /// Relocates the site (used by placement optimisation).
    pub(crate) fn set_center(&mut self, center: Point) {
        self.center = center;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_is_centered_square_of_right_area() {
        let site = VrSite::new(
            VrId(3),
            DomainId(1),
            Point::from_mm(5.0, 5.0),
            0.04,
            VrNeighborhood::Logic,
        );
        let fp = site.footprint();
        assert!((fp.area_mm2() - 0.04).abs() < 1e-9);
        let c = fp.center();
        assert!((c.x.as_mm() - 5.0).abs() < 1e-9);
        assert!((c.y.as_mm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn accessors() {
        let site = VrSite::new(
            VrId(7),
            DomainId(2),
            Point::from_mm(1.0, 2.0),
            0.04,
            VrNeighborhood::Memory,
        );
        assert_eq!(site.id(), VrId(7));
        assert_eq!(site.domain(), DomainId(2));
        assert_eq!(site.neighborhood(), VrNeighborhood::Memory);
        assert_eq!(site.id().to_string(), "VR7");
    }
}
