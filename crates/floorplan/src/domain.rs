//! Vdd-domains: the granularity at which voltage is regulated and at which
//! ThermoGater makes per-domain gating decisions.

use crate::block::BlockId;
use crate::vr_site::VrId;
use std::fmt;

/// Identifier of a [`VddDomain`] within a [`crate::Floorplan`].
///
/// Indices are dense, matching [`crate::Floorplan::domains`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub usize);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// What a Vdd-domain supplies.
///
/// The paper's reference chip has one domain per core (core logic + its
/// private L2) and one per L3 bank (plus its share of NOC/MC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DomainKind {
    /// A core plus its private caches: 9 component regulators.
    Core,
    /// An L3 bank (plus uncore slice): 3 component regulators.
    L3Bank,
}

/// A voltage domain: a set of blocks supplied by a parallel network of
/// component regulators.
#[derive(Debug, Clone, PartialEq)]
pub struct VddDomain {
    id: DomainId,
    name: String,
    kind: DomainKind,
    blocks: Vec<BlockId>,
    vrs: Vec<VrId>,
}

impl VddDomain {
    pub(crate) fn new(id: DomainId, name: impl Into<String>, kind: DomainKind) -> Self {
        VddDomain {
            id,
            name: name.into(),
            kind,
            blocks: Vec::new(),
            vrs: Vec::new(),
        }
    }

    pub(crate) fn push_block(&mut self, block: BlockId) {
        self.blocks.push(block);
    }

    pub(crate) fn push_vr(&mut self, vr: VrId) {
        self.vrs.push(vr);
    }

    /// Dense identifier.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// Human-readable name, e.g. `"core3"` or `"l3bank5"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a core or L3-bank domain.
    pub fn kind(&self) -> DomainKind {
        self.kind
    }

    /// Blocks supplied by this domain, in insertion order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Component regulators of this domain, in insertion order.
    pub fn vrs(&self) -> &[VrId] {
        &self.vrs
    }

    /// Number of component regulators.
    pub fn vr_count(&self) -> usize {
        self.vrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_collects_blocks_and_vrs() {
        let mut d = VddDomain::new(DomainId(2), "core2", DomainKind::Core);
        d.push_block(BlockId(10));
        d.push_block(BlockId(11));
        d.push_vr(VrId(5));
        assert_eq!(d.id(), DomainId(2));
        assert_eq!(d.name(), "core2");
        assert_eq!(d.kind(), DomainKind::Core);
        assert_eq!(d.blocks(), &[BlockId(10), BlockId(11)]);
        assert_eq!(d.vrs(), &[VrId(5)]);
        assert_eq!(d.vr_count(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DomainId(7).to_string(), "D7");
    }
}
