//! Integrated voltage-regulator models for the ThermoGater reproduction.
//!
//! This crate supplies the electrical side of distributed on-chip voltage
//! regulation:
//!
//! * [`EfficiencyCurve`] — η vs. output-current characteristics with the
//!   shape of Fig. 1/2/5 of the paper;
//! * [`RegulatorDesign`] — named industrial design points (Intel-FIVR-like
//!   buck, IBM-POWER8-like LDO, switched-capacitor) with peak efficiency,
//!   output power density, and response time;
//! * [`RegulatorBank`] — a parallel network of identical component
//!   regulators inside one Vdd-domain, the object regulator gating acts
//!   on: it computes the number of active regulators required to sustain
//!   peak efficiency (`n_on`), splits load current, and accounts
//!   conversion loss per regulator;
//! * [`GatingState`] — which component regulators are currently on;
//! * [`survey`] — the ISSCC 2015 survey dataset behind Fig. 1;
//! * [`loss`] — conversion-loss helpers and cooling-limit constants for
//!   the Section 2 case study.
//!
//! # Examples
//!
//! ```
//! use vreg::{RegulatorBank, RegulatorDesign};
//! use simkit::units::Amps;
//!
//! // A per-core domain: 9 FIVR-like phases, 1.5 A each at peak efficiency.
//! let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
//! assert_eq!(bank.required_active(Amps::new(4.0)), 3);
//! // Gating sustains (near-)peak efficiency at partial load:
//! let eta = bank.efficiency(Amps::new(4.0), 3).unwrap();
//! assert!(eta > 0.88);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod curve;
mod design;
mod gating;
mod hetero;
pub mod loss;
pub mod survey;

pub use bank::RegulatorBank;
pub use curve::EfficiencyCurve;
pub use design::{RegulatorDesign, RegulatorTopology};
pub use gating::GatingState;
pub use hetero::HeterogeneousBank;
