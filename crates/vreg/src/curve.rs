//! Regulator conversion-efficiency curves.

use simkit::units::Amps;
use simkit::{Error, PiecewiseLinear, Result};

/// The canonical normalized shape of an integrated regulator's η vs.
/// I_out characteristic, as a fraction of peak efficiency over the load
/// ratio `I_out / I_peak`.
///
/// The shape follows the curves of Fig. 1/2/5 of the paper (and the
/// underlying Intel FIVR disclosure): efficiency climbs steeply out of
/// light load, flattens as it approaches the design point, and droops
/// gently in overload.
const NORMALIZED_SHAPE: &[(f64, f64)] = &[
    (0.000, 0.30),
    (0.010, 0.46),
    (0.025, 0.56),
    (0.050, 0.67),
    (0.100, 0.78),
    (0.200, 0.872),
    (0.300, 0.920),
    (0.400, 0.950),
    (0.550, 0.975),
    (0.700, 0.990),
    (0.850, 0.998),
    (1.000, 1.000),
    (1.150, 0.995),
    (1.300, 0.983),
    (1.500, 0.960),
];

/// Conversion efficiency η as a function of the regulator's output load
/// current.
///
/// # Examples
///
/// ```
/// use vreg::EfficiencyCurve;
/// use simkit::units::Amps;
///
/// // A single FIVR-like phase: 90 % peak at 1.5 A.
/// let curve = EfficiencyCurve::scaled_reference(0.90, Amps::new(1.5))?;
/// assert!((curve.peak_efficiency() - 0.90).abs() < 1e-12);
/// assert!((curve.peak_current().get() - 1.5).abs() < 1e-12);
/// // Light load hurts efficiency:
/// assert!(curve.eval(Amps::new(0.1)) < 0.85);
/// # Ok::<(), simkit::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyCurve {
    eta: PiecewiseLinear,
    peak_current: Amps,
    peak_efficiency: f64,
}

impl EfficiencyCurve {
    /// Builds a curve from explicit `(I_out in amps, η in [0, 1])` points.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidArgument`] when any η is outside `(0, 1]` or the
    ///   current breakpoints are not strictly increasing;
    /// * [`Error::EmptyDomain`] when no points are given.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self> {
        if points
            .iter()
            .any(|&(_, eta)| !(0.0..=1.0).contains(&eta) || eta == 0.0)
        {
            return Err(Error::invalid_argument("η must lie in (0, 1]"));
        }
        let eta = PiecewiseLinear::new(points)?;
        let (peak_i, peak_eta) = eta.argmax();
        Ok(EfficiencyCurve {
            eta,
            peak_current: Amps::new(peak_i),
            peak_efficiency: peak_eta,
        })
    }

    /// Builds the canonical reference shape scaled to reach
    /// `peak_efficiency` at `peak_current`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `peak_efficiency` is outside
    /// `(0, 1]` or `peak_current` is not positive.
    pub fn scaled_reference(peak_efficiency: f64, peak_current: Amps) -> Result<Self> {
        if !(0.0..=1.0).contains(&peak_efficiency) || peak_efficiency == 0.0 {
            return Err(Error::invalid_argument("peak efficiency must be in (0, 1]"));
        }
        if peak_current.get() <= 0.0 {
            return Err(Error::invalid_argument("peak current must be positive"));
        }
        let points = NORMALIZED_SHAPE
            .iter()
            .map(|&(ratio, eta_frac)| (ratio * peak_current.get(), eta_frac * peak_efficiency))
            .collect();
        EfficiencyCurve::from_points(points)
    }

    /// Efficiency at the given load current (clamped at the table edges).
    pub fn eval(&self, i_out: Amps) -> f64 {
        self.eta.eval(i_out.get())
    }

    /// Load current at which peak efficiency is reached.
    pub fn peak_current(&self) -> Amps {
        self.peak_current
    }

    /// The peak efficiency η_peak.
    pub fn peak_efficiency(&self) -> f64 {
        self.peak_efficiency
    }

    /// The supported current domain `[min, max]` of the underlying table.
    pub fn current_domain(&self) -> (Amps, Amps) {
        let (lo, hi) = self.eta.domain();
        (Amps::new(lo), Amps::new(hi))
    }

    /// The breakpoints of the underlying piecewise-linear table as
    /// `(amps, η)` pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        self.eta.points()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fivr_phase() -> EfficiencyCurve {
        EfficiencyCurve::scaled_reference(0.90, Amps::new(1.5)).unwrap()
    }

    #[test]
    fn peak_is_where_it_should_be() {
        let c = fivr_phase();
        assert!((c.peak_efficiency() - 0.90).abs() < 1e-12);
        assert!((c.peak_current().get() - 1.5).abs() < 1e-12);
        assert!((c.eval(Amps::new(1.5)) - 0.90).abs() < 1e-12);
    }

    #[test]
    fn efficiency_monotone_up_to_peak() {
        let c = fivr_phase();
        let mut prev = 0.0;
        for k in 1..=30 {
            let i = Amps::new(1.5 * k as f64 / 30.0);
            let eta = c.eval(i);
            assert!(eta >= prev, "η not monotone at {i}");
            prev = eta;
        }
    }

    #[test]
    fn efficiency_droops_past_peak() {
        let c = fivr_phase();
        assert!(c.eval(Amps::new(2.0)) < c.peak_efficiency());
        assert!(c.eval(Amps::new(2.25)) < c.eval(Amps::new(2.0)));
    }

    #[test]
    fn light_load_is_inefficient() {
        let c = fivr_phase();
        // At ~1 % load the curve sits below half of peak + a bit: the Fig 1
        // designs report 40-60 % there.
        let eta = c.eval(Amps::new(0.015));
        assert!(eta < 0.50, "η at 1 % load was {eta}");
        assert!(eta > 0.30);
    }

    #[test]
    fn clamps_at_zero_current() {
        let c = fivr_phase();
        assert!((c.eval(Amps::ZERO) - 0.30 * 0.90).abs() < 1e-12);
    }

    #[test]
    fn from_points_validates_eta_range() {
        assert!(EfficiencyCurve::from_points(vec![(0.0, 0.5), (1.0, 1.2)]).is_err());
        assert!(EfficiencyCurve::from_points(vec![(0.0, 0.0)]).is_err());
        assert!(EfficiencyCurve::from_points(vec![]).is_err());
    }

    #[test]
    fn scaled_reference_validates() {
        assert!(EfficiencyCurve::scaled_reference(0.0, Amps::new(1.0)).is_err());
        assert!(EfficiencyCurve::scaled_reference(1.1, Amps::new(1.0)).is_err());
        assert!(EfficiencyCurve::scaled_reference(0.9, Amps::ZERO).is_err());
    }

    #[test]
    fn custom_curve_peak_detection() {
        let c = EfficiencyCurve::from_points(vec![(0.0, 0.4), (2.0, 0.85), (4.0, 0.6)]).unwrap();
        assert_eq!(c.peak_current(), Amps::new(2.0));
        assert!((c.peak_efficiency() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn domain_is_scaled() {
        let c = fivr_phase();
        let (lo, hi) = c.current_domain();
        assert_eq!(lo, Amps::ZERO);
        assert!((hi.get() - 2.25).abs() < 1e-12);
    }
}
