//! The ISSCC 2015 regulator survey behind Fig. 1 of the paper.
//!
//! Fig. 1 plots the reported conversion efficiency of eight recent,
//! highly optimized integrated regulators over output load currents
//! spanning seven decades (0.01 mA – 10 A). The exact measured curves are
//! only published as figures; this module encodes representative
//! breakpoint tables reconstructed from each paper's headline numbers
//! (peak efficiency, rated load range), which is sufficient to regenerate
//! the figure's shape: every design peaks somewhere in its rated range and
//! degrades off-peak.

use crate::curve::EfficiencyCurve;

/// One surveyed design: citation tag, description, and its η(I_out)
/// curve with currents in **amps**.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyEntry {
    /// Citation tag as printed in Fig. 1 (e.g. `"[15]"`).
    pub tag: &'static str,
    /// Short description of the design.
    pub description: &'static str,
    /// Reported efficiency curve.
    pub curve: EfficiencyCurve,
}

/// Returns the eight surveyed ISSCC 2015 designs of Fig. 1.
///
/// # Examples
///
/// ```
/// let survey = vreg::survey::isscc2015();
/// assert_eq!(survey.len(), 8);
/// // Every design peaks between 40 % and 95 %:
/// for entry in &survey {
///     let peak = entry.curve.peak_efficiency();
///     assert!(peak > 0.40 && peak < 0.95, "{} peak {peak}", entry.tag);
/// }
/// ```
pub fn isscc2015() -> Vec<SurveyEntry> {
    let mk = |points: &[(f64, f64)]| {
        EfficiencyCurve::from_points(points.to_vec()).expect("static survey tables are valid")
    };
    vec![
        SurveyEntry {
            tag: "[15]",
            description: "Kim et al. — 4-phase time-based buck, 87% peak",
            curve: mk(&[
                (0.001, 0.55),
                (0.005, 0.68),
                (0.020, 0.78),
                (0.080, 0.85),
                (0.200, 0.87),
                (0.500, 0.84),
                (1.000, 0.78),
            ]),
        },
        SurveyEntry {
            tag: "[29]",
            description: "Park et al. — biomedical PWM buck, >80% in µA loads",
            curve: mk(&[
                (0.000045, 0.62),
                (0.000200, 0.74),
                (0.000800, 0.81),
                (0.002000, 0.83),
                (0.004000, 0.81),
                (0.010000, 0.72),
            ]),
        },
        SurveyEntry {
            tag: "[37]",
            description: "Su et al. — single-inductor multiple-output buck, 90% peak",
            curve: mk(&[
                (0.010, 0.60),
                (0.050, 0.75),
                (0.200, 0.85),
                (0.600, 0.90),
                (1.500, 0.87),
                (3.000, 0.80),
            ]),
        },
        SurveyEntry {
            tag: "[36]",
            description: "Song et al. — 4-phase GaN DC-DC, 8.4 W",
            curve: mk(&[
                (0.050, 0.58),
                (0.200, 0.74),
                (0.800, 0.86),
                (2.000, 0.91),
                (5.000, 0.88),
                (8.000, 0.83),
            ]),
        },
        SurveyEntry {
            tag: "[31]",
            description: "Schaef et al. — 3-phase resonant SC, 85% at 0.91 W/mm²",
            curve: mk(&[
                (0.020, 0.55),
                (0.100, 0.72),
                (0.400, 0.82),
                (1.000, 0.85),
                (2.000, 0.82),
                (4.000, 0.74),
            ]),
        },
        SurveyEntry {
            tag: "[1]",
            description: "Andersen et al. — feedforward SC, 10 W in 32 nm SOI",
            curve: mk(&[
                (0.100, 0.60),
                (0.500, 0.76),
                (2.000, 0.85),
                (6.000, 0.88),
                (10.000, 0.86),
                (15.000, 0.80),
            ]),
        },
        SurveyEntry {
            tag: "[26]",
            description: "Lu et al. — 123-phase converter ring with fast DVS",
            curve: mk(&[
                (0.010, 0.52),
                (0.060, 0.68),
                (0.300, 0.79),
                (1.000, 0.83),
                (3.000, 0.80),
                (6.000, 0.72),
            ]),
        },
        SurveyEntry {
            tag: "[14]",
            description: "Jiang et al. — 2/3-phase fully integrated SC in bulk CMOS",
            curve: mk(&[
                (0.0005, 0.50),
                (0.0030, 0.64),
                (0.0150, 0.74),
                (0.0600, 0.80),
                (0.2000, 0.77),
                (0.5000, 0.68),
            ]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::units::Amps;

    #[test]
    fn survey_has_eight_entries_with_unique_tags() {
        let survey = isscc2015();
        assert_eq!(survey.len(), 8);
        let mut tags: Vec<_> = survey.iter().map(|e| e.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 8);
    }

    #[test]
    fn currents_span_fig1_axis() {
        // Fig. 1's x-axis runs from 0.01 mA to 10 A; the survey must cover
        // several decades on both ends.
        let survey = isscc2015();
        let min_i = survey
            .iter()
            .map(|e| e.curve.current_domain().0.get())
            .fold(f64::INFINITY, f64::min);
        let max_i = survey
            .iter()
            .map(|e| e.curve.current_domain().1.get())
            .fold(0.0, f64::max);
        assert!(min_i < 1e-4, "min {min_i}");
        assert!(max_i > 5.0, "max {max_i}");
    }

    #[test]
    fn every_design_degrades_off_peak() {
        for entry in isscc2015() {
            let peak_i = entry.curve.peak_current();
            let peak = entry.curve.peak_efficiency();
            let (lo, hi) = entry.curve.current_domain();
            let at_lo = entry.curve.eval(lo);
            let at_hi = entry.curve.eval(hi);
            assert!(at_lo < peak, "{} flat at light load", entry.tag);
            assert!(at_hi < peak, "{} flat at overload", entry.tag);
            assert!(peak_i > lo && peak_i < hi, "{} peak at edge", entry.tag);
        }
    }

    #[test]
    fn efficiencies_match_fig1_band() {
        // Fig. 1's y-axis runs 40–90 %+; all sampled efficiencies must
        // stay within a sensible band.
        for entry in isscc2015() {
            for &(i, _) in entry.curve.points() {
                let eta = entry.curve.eval(Amps::new(i));
                assert!((0.40..=0.95).contains(&eta), "{} η {eta}", entry.tag);
            }
        }
    }
}
