//! A parallel network of identical component regulators in one
//! Vdd-domain — the object that regulator gating reconfigures.

use crate::design::RegulatorDesign;
use simkit::units::{Amps, Volts, Watts};
use simkit::{Error, Result};

/// A Vdd-domain's bank of `total` electrically identical component
/// regulators connected in parallel.
///
/// Active regulators share the domain's load current evenly (the phases
/// of a multi-phase regulator interleave by construction; POWER8
/// microregulators balance via their common output grid). The bank knows
/// how many regulators must be on to supply a demand at peak efficiency,
/// and what conversion loss each active regulator dissipates.
///
/// # Examples
///
/// ```
/// use vreg::{RegulatorBank, RegulatorDesign};
/// use simkit::units::{Amps, Volts};
///
/// let bank = RegulatorBank::new(RegulatorDesign::fivr(), 9);
/// let n_on = bank.required_active(Amps::new(7.0));
/// assert_eq!(n_on, 5);
/// let loss = bank.per_regulator_loss(Amps::new(7.0), n_on, Volts::new(1.03))?;
/// assert!(loss.get() > 0.0);
/// # Ok::<(), simkit::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegulatorBank {
    design: RegulatorDesign,
    total: usize,
}

impl RegulatorBank {
    /// Creates a bank of `total` component regulators of one design.
    ///
    /// # Panics
    ///
    /// Panics when `total` is zero.
    pub fn new(design: RegulatorDesign, total: usize) -> Self {
        assert!(total > 0, "a bank needs at least one regulator");
        RegulatorBank { design, total }
    }

    /// The common component-regulator design.
    pub fn design(&self) -> &RegulatorDesign {
        &self.design
    }

    /// Number of component regulators in the bank.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Maximum current the full bank can deliver (at the curve's edge,
    /// past peak efficiency).
    pub fn max_current(&self) -> Amps {
        let (_, hi) = self.design.curve().current_domain();
        hi * self.total as f64
    }

    /// Minimum number of active regulators that can supply `demand` while
    /// operating at (or as close as possible to) peak efficiency — the
    /// `n_on` of the paper.
    ///
    /// Each component regulator peaks at `I_peak`; loading the active set
    /// so that each carries at most `I_peak` keeps everyone on the flat
    /// top of its curve, so `n_on = ceil(demand / I_peak)`, clamped to
    /// `[1, total]`. Zero or negative demand still keeps one regulator on
    /// (the domain is never unpowered).
    pub fn required_active(&self, demand: Amps) -> usize {
        if demand.get() <= 0.0 {
            return 1;
        }
        let n = (demand.get() / self.design.peak_current().get()).ceil() as usize;
        n.clamp(1, self.total)
    }

    /// Per-regulator load current when `n_on` regulators share `demand`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `n_on` is zero or exceeds
    /// the bank size.
    pub fn per_regulator_current(&self, demand: Amps, n_on: usize) -> Result<Amps> {
        self.validate_n_on(n_on)?;
        Ok(Amps::new(demand.get().max(0.0) / n_on as f64))
    }

    /// Effective conversion efficiency of the bank when `n_on` regulators
    /// share `demand` evenly — every active regulator operates at the
    /// same point of the common curve, so the bank efficiency equals the
    /// per-regulator efficiency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `n_on` is invalid.
    pub fn efficiency(&self, demand: Amps, n_on: usize) -> Result<f64> {
        let share = self.per_regulator_current(demand, n_on)?;
        Ok(self.design.curve().eval(share))
    }

    /// Conversion loss dissipated by **each** active regulator
    /// (Eqn. 1 of the paper: `P_loss = P_out · (1/η − 1)` split over the
    /// active set).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `n_on` is invalid.
    pub fn per_regulator_loss(&self, demand: Amps, n_on: usize, vdd: Volts) -> Result<Watts> {
        let share = self.per_regulator_current(demand, n_on)?;
        let eta = self.design.curve().eval(share);
        let pout = vdd * share;
        Ok(pout * (1.0 / eta - 1.0))
    }

    /// Total conversion loss over the whole active set.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `n_on` is invalid.
    pub fn total_loss(&self, demand: Amps, n_on: usize, vdd: Volts) -> Result<Watts> {
        Ok(self.per_regulator_loss(demand, n_on, vdd)? * n_on as f64)
    }

    /// The bank's *effective* efficiency curve under ideal gating: for a
    /// sweep of demands, the efficiency achieved when `n_on` is chosen by
    /// [`RegulatorBank::required_active`]. This is the near-flat dotted
    /// line of Fig. 2/5.
    ///
    /// Returns `(demand amps, η)` pairs for `samples` points spanning
    /// `(0, max]`.
    pub fn effective_curve(&self, max_demand: Amps, samples: usize) -> Vec<(f64, f64)> {
        (1..=samples)
            .map(|k| {
                let demand = max_demand * (k as f64 / samples as f64);
                let n_on = self.required_active(demand);
                let eta = self
                    .efficiency(demand, n_on)
                    .expect("required_active yields valid n_on");
                (demand.get(), eta)
            })
            .collect()
    }

    fn validate_n_on(&self, n_on: usize) -> Result<()> {
        if n_on == 0 || n_on > self.total {
            return Err(Error::invalid_argument(format!(
                "n_on {n_on} outside [1, {}]",
                self.total
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::RegulatorDesign;

    fn core_bank() -> RegulatorBank {
        RegulatorBank::new(RegulatorDesign::fivr(), 9)
    }

    #[test]
    fn required_active_rounds_up() {
        let bank = core_bank();
        // 1.5 A per phase at peak.
        assert_eq!(bank.required_active(Amps::new(0.1)), 1);
        assert_eq!(bank.required_active(Amps::new(1.5)), 1);
        assert_eq!(bank.required_active(Amps::new(1.51)), 2);
        assert_eq!(bank.required_active(Amps::new(13.4)), 9);
    }

    #[test]
    fn required_active_clamps_to_bank_size() {
        let bank = core_bank();
        assert_eq!(bank.required_active(Amps::new(100.0)), 9);
    }

    #[test]
    fn zero_demand_keeps_one_on() {
        let bank = core_bank();
        assert_eq!(bank.required_active(Amps::ZERO), 1);
        assert_eq!(bank.required_active(Amps::new(-1.0)), 1);
    }

    #[test]
    fn even_current_sharing() {
        let bank = core_bank();
        let share = bank.per_regulator_current(Amps::new(6.0), 4).unwrap();
        assert!((share.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gating_beats_all_on_at_light_load() {
        // The central premise of Fig. 7: at light load, keeping all
        // regulators on wastes conversion efficiency.
        let bank = core_bank();
        let demand = Amps::new(2.0);
        let gated = bank
            .efficiency(demand, bank.required_active(demand))
            .unwrap();
        let all_on = bank.efficiency(demand, 9).unwrap();
        assert!(gated > all_on + 0.05, "gated {gated} vs all-on {all_on}");
    }

    #[test]
    fn effective_curve_is_near_flat() {
        let bank = core_bank();
        let curve = bank.effective_curve(Amps::new(13.5), 100);
        // Past the first phase's ramp-up region, gating holds efficiency
        // within a few percent of peak.
        let floor = curve
            .iter()
            .filter(|&&(i, _)| i > 1.0)
            .map(|&(_, eta)| eta)
            .fold(f64::INFINITY, f64::min);
        assert!(floor > 0.85, "effective-curve floor {floor}");
    }

    #[test]
    fn per_regulator_loss_matches_eqn1() {
        let bank = core_bank();
        let vdd = Volts::new(1.03);
        let demand = Amps::new(1.5);
        let loss = bank.per_regulator_loss(demand, 1, vdd).unwrap();
        // At peak: Pout = 1.03 × 1.5 = 1.545 W, η = 0.9 → loss ≈ 0.1717 W.
        let expected = 1.03 * 1.5 * (1.0 / 0.9 - 1.0);
        assert!((loss.get() - expected).abs() < 1e-9);
    }

    #[test]
    fn total_loss_scales_with_active_set() {
        let bank = core_bank();
        let vdd = Volts::new(1.03);
        let total = bank.total_loss(Amps::new(3.0), 2, vdd).unwrap();
        let per = bank.per_regulator_loss(Amps::new(3.0), 2, vdd).unwrap();
        assert!((total.get() - 2.0 * per.get()).abs() < 1e-12);
    }

    #[test]
    fn invalid_n_on_is_rejected() {
        let bank = core_bank();
        assert!(bank.efficiency(Amps::new(1.0), 0).is_err());
        assert!(bank.efficiency(Amps::new(1.0), 10).is_err());
    }

    #[test]
    fn max_current_covers_tdp_class_demand() {
        let bank = core_bank();
        assert!(bank.max_current().get() > 13.5);
    }

    #[test]
    #[should_panic(expected = "at least one regulator")]
    fn zero_size_bank_panics() {
        RegulatorBank::new(RegulatorDesign::fivr(), 0);
    }
}
