//! Conversion-loss accounting and cooling limits.
//!
//! Implements Eqn. 1 of the paper — `P_loss = P_out · (1/η − 1)` — and the
//! Section 2 case study that motivates the whole work: at Haswell's
//! reported 33.6 W/mm² output density and 90 % peak efficiency, the loss
//! density of 3.7 W/mm² already exceeds the ~1.5 W/mm² air-cooling limit.

use simkit::units::Watts;

/// Air-cooling heat-flux limit, W/mm² (Huang et al.).
pub const AIR_COOLING_LIMIT_W_MM2: f64 = 1.5;

/// Microchannel (liquid) cooling heat-flux limit, W/mm².
pub const MICROCHANNEL_COOLING_LIMIT_W_MM2: f64 = 7.9;

/// Conversion loss for a given output power and efficiency —
/// Eqn. 1: `P_loss = P_out × (1/η − 1)`.
///
/// # Panics
///
/// Panics in debug builds when `eta` is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use vreg::loss::conversion_loss;
/// use simkit::units::Watts;
///
/// let loss = conversion_loss(Watts::new(9.0), 0.9);
/// assert!((loss.get() - 1.0).abs() < 1e-12);
/// ```
pub fn conversion_loss(p_out: Watts, eta: f64) -> Watts {
    debug_assert!(eta > 0.0 && eta <= 1.0, "η outside (0, 1]: {eta}");
    p_out * (1.0 / eta - 1.0)
}

/// Input power drawn from the upstream converter for a given output power
/// and efficiency: `P_in = P_out / η`.
///
/// # Panics
///
/// Panics in debug builds when `eta` is outside `(0, 1]`.
pub fn input_power(p_out: Watts, eta: f64) -> Watts {
    debug_assert!(eta > 0.0 && eta <= 1.0, "η outside (0, 1]: {eta}");
    p_out / eta
}

/// Loss heat-flux density in W/mm² for a regulator of the given footprint.
pub fn loss_density_w_mm2(p_loss: Watts, area_mm2: f64) -> f64 {
    debug_assert!(area_mm2 > 0.0);
    p_loss.get() / area_mm2
}

/// Whether a loss density exceeds the air-cooling limit — the paper's
/// criterion for a regulator being able to cause a thermal emergency on
/// its own.
pub fn exceeds_air_cooling(loss_density_w_mm2: f64) -> bool {
    loss_density_w_mm2 > AIR_COOLING_LIMIT_W_MM2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqn1_at_90_percent() {
        // η = 0.9 → loss is 1/9 of output power.
        let loss = conversion_loss(Watts::new(90.0), 0.9);
        assert!((loss.get() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn perfect_efficiency_has_no_loss() {
        assert_eq!(conversion_loss(Watts::new(50.0), 1.0), Watts::ZERO);
    }

    #[test]
    fn input_power_is_output_over_eta() {
        let pin = input_power(Watts::new(45.0), 0.9);
        assert!((pin.get() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn haswell_case_study() {
        // Section 2: P_out/area = 33.6 W/mm², η_peak = 90 % →
        // loss density ≈ 3.7 W/mm², above air cooling but below
        // microchannel cooling.
        let area_mm2 = 1.0;
        let p_out = Watts::new(33.6);
        let loss = conversion_loss(p_out, 0.90);
        let density = loss_density_w_mm2(loss, area_mm2);
        assert!((density - 3.733).abs() < 0.01, "density {density}");
        assert!(exceeds_air_cooling(density));
        assert!(density < MICROCHANNEL_COOLING_LIMIT_W_MM2);
    }

    #[test]
    fn low_density_is_coolable() {
        assert!(!exceeds_air_cooling(1.0));
    }
}
