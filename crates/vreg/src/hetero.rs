//! Heterogeneous regulator networks.
//!
//! Section 3.1 of the paper notes that the component regulators of a
//! distributed power delivery network "can be homogeneous or
//! heterogeneous in terms of circuit topology and other electrical
//! characteristics" (after Vaisband & Friedman). A
//! [`HeterogeneousBank`] mixes different designs in one Vdd-domain:
//! e.g. a couple of large, efficient buck phases for the base load plus
//! small fast LDOs for trimming — and generalises the gating arithmetic
//! of [`crate::RegulatorBank`] to that setting.

use crate::design::RegulatorDesign;
use simkit::units::{Amps, Volts, Watts};
use simkit::{Error, Result};

/// A parallel network of *different* component regulators in one domain.
///
/// Active members share the load current in proportion to their peak
/// currents, so every active member operates at the same fraction of its
/// own design point — the policy that keeps a mixed network at its
/// collective peak efficiency.
///
/// # Examples
///
/// ```
/// use vreg::{HeterogeneousBank, RegulatorDesign};
/// use simkit::units::Amps;
///
/// // Two big buck phases + two small LDO trimmers.
/// let bank = HeterogeneousBank::new(vec![
///     RegulatorDesign::fivr(),
///     RegulatorDesign::fivr(),
///     RegulatorDesign::power8_ldo(),
///     RegulatorDesign::power8_ldo(),
/// ]);
/// let active = bank.required_active(Amps::new(2.0));
/// assert!(!active.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneousBank {
    members: Vec<RegulatorDesign>,
}

impl HeterogeneousBank {
    /// Creates a bank from the member designs (order defines member
    /// indices).
    ///
    /// # Panics
    ///
    /// Panics when `members` is empty.
    pub fn new(members: Vec<RegulatorDesign>) -> Self {
        assert!(!members.is_empty(), "a bank needs at least one regulator");
        HeterogeneousBank { members }
    }

    /// The member designs.
    pub fn members(&self) -> &[RegulatorDesign] {
        &self.members
    }

    /// Number of member regulators.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the bank has no members (never true — construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Sum of the members' peak currents — the demand the whole bank can
    /// carry at collective peak efficiency.
    pub fn peak_capacity(&self) -> Amps {
        self.members.iter().map(|m| m.peak_current()).sum()
    }

    /// The minimal member subset (by index) that can carry `demand` at
    /// peak efficiency: members are activated in descending peak-current
    /// order (big phases first, small trimmers last) until the summed
    /// peak capacity covers the demand. At least one member stays on.
    pub fn required_active(&self, demand: Amps) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.members.len()).collect();
        order.sort_by(|&a, &b| {
            self.members[b]
                .peak_current()
                .partial_cmp(&self.members[a].peak_current())
                .expect("finite currents")
                .then(a.cmp(&b))
        });
        let mut active = Vec::new();
        let mut capacity = Amps::ZERO;
        for idx in order {
            active.push(idx);
            capacity += self.members[idx].peak_current();
            if capacity.get() >= demand.get() {
                break;
            }
        }
        active.sort_unstable();
        active
    }

    /// Per-member load currents when the members in `active` share
    /// `demand` proportionally to their peak currents. Inactive members
    /// carry zero.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `active` is empty or
    /// contains an out-of-range or duplicate index.
    pub fn share_currents(&self, demand: Amps, active: &[usize]) -> Result<Vec<Amps>> {
        self.validate_active(active)?;
        let capacity: f64 = active
            .iter()
            .map(|&i| self.members[i].peak_current().get())
            .sum();
        let mut shares = vec![Amps::ZERO; self.members.len()];
        let demand = demand.get().max(0.0);
        for &i in active {
            let fraction = self.members[i].peak_current().get() / capacity;
            shares[i] = Amps::new(demand * fraction);
        }
        Ok(shares)
    }

    /// The bank's effective conversion efficiency for `demand` over the
    /// given active set (output power over input power, aggregated over
    /// members at their individual operating points).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `active` is invalid.
    pub fn efficiency(&self, demand: Amps, active: &[usize]) -> Result<f64> {
        let shares = self.share_currents(demand, active)?;
        if demand.get() <= 0.0 {
            // No load: define efficiency as the active members' mean
            // light-load efficiency.
            let mean = active
                .iter()
                .map(|&i| self.members[i].curve().eval(Amps::ZERO))
                .sum::<f64>()
                / active.len() as f64;
            return Ok(mean);
        }
        let mut pout = 0.0;
        let mut pin = 0.0;
        for &i in active {
            let share = shares[i].get();
            if share == 0.0 {
                continue;
            }
            let eta = self.members[i].curve().eval(shares[i]);
            pout += share;
            pin += share / eta;
        }
        Ok(pout / pin)
    }

    /// Per-member conversion losses (watts) for `demand` over `active`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `active` is invalid.
    pub fn member_losses(&self, demand: Amps, active: &[usize], vdd: Volts) -> Result<Vec<Watts>> {
        let shares = self.share_currents(demand, active)?;
        Ok(shares
            .iter()
            .enumerate()
            .map(|(i, &share)| {
                if share.get() == 0.0 {
                    Watts::ZERO
                } else {
                    let eta = self.members[i].curve().eval(share);
                    (vdd * share) * (1.0 / eta - 1.0)
                }
            })
            .collect())
    }

    fn validate_active(&self, active: &[usize]) -> Result<()> {
        if active.is_empty() {
            return Err(Error::invalid_argument("active set must not be empty"));
        }
        let mut seen = vec![false; self.members.len()];
        for &i in active {
            if i >= self.members.len() {
                return Err(Error::invalid_argument(format!(
                    "member {i} outside bank of {}",
                    self.members.len()
                )));
            }
            if seen[i] {
                return Err(Error::invalid_argument(format!("duplicate member {i}")));
            }
            seen[i] = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::EfficiencyCurve;
    use crate::design::RegulatorTopology;
    use simkit::units::Seconds;

    /// A small trimmer design: 0.5 A at 85 % peak.
    fn trimmer() -> RegulatorDesign {
        RegulatorDesign::new(
            "trim",
            RegulatorTopology::LowDropout,
            EfficiencyCurve::scaled_reference(0.85, Amps::new(0.5)).unwrap(),
            20.0,
            Seconds::from_nanos(1.0),
        )
    }

    fn mixed_bank() -> HeterogeneousBank {
        HeterogeneousBank::new(vec![
            RegulatorDesign::fivr(), // 1.5 A
            RegulatorDesign::fivr(), // 1.5 A
            trimmer(),               // 0.5 A
            trimmer(),               // 0.5 A
        ])
    }

    #[test]
    fn capacity_sums_members() {
        let bank = mixed_bank();
        assert!((bank.peak_capacity().get() - 4.0).abs() < 1e-12);
        assert_eq!(bank.len(), 4);
        assert!(!bank.is_empty());
    }

    #[test]
    fn required_active_prefers_big_phases() {
        let bank = mixed_bank();
        // 1 A fits in one big phase.
        assert_eq!(bank.required_active(Amps::new(1.0)), vec![0]);
        // 2.5 A needs both big phases.
        assert_eq!(bank.required_active(Amps::new(2.5)), vec![0, 1]);
        // 3.2 A pulls in a trimmer.
        assert_eq!(bank.required_active(Amps::new(3.2)), vec![0, 1, 2]);
        // Zero demand keeps one regulator on.
        assert_eq!(bank.required_active(Amps::ZERO).len(), 1);
    }

    #[test]
    fn shares_are_proportional_to_peaks() {
        let bank = mixed_bank();
        let shares = bank.share_currents(Amps::new(3.5), &[0, 1, 2]).unwrap();
        // Capacities 1.5/1.5/0.5 → shares 1.5, 1.5, 0.5.
        assert!((shares[0].get() - 1.5).abs() < 1e-12);
        assert!((shares[1].get() - 1.5).abs() < 1e-12);
        assert!((shares[2].get() - 0.5).abs() < 1e-12);
        assert_eq!(shares[3], Amps::ZERO);
        // Conservation.
        let total: f64 = shares.iter().map(|s| s.get()).sum();
        assert!((total - 3.5).abs() < 1e-12);
    }

    #[test]
    fn full_load_runs_everyone_at_their_peak() {
        let bank = mixed_bank();
        let active = vec![0, 1, 2, 3];
        let eta = bank.efficiency(bank.peak_capacity(), &active).unwrap();
        // Aggregated: between the trimmer's 85 % and the bucks' 90 %.
        assert!(eta > 0.85 && eta < 0.90, "η {eta}");
    }

    #[test]
    fn gating_helps_mixed_banks_too() {
        let bank = mixed_bank();
        let demand = Amps::new(1.2);
        let gated = bank
            .efficiency(demand, &bank.required_active(demand))
            .unwrap();
        let all_on = bank.efficiency(demand, &[0, 1, 2, 3]).unwrap();
        assert!(gated > all_on, "gated {gated} vs all-on {all_on}");
    }

    #[test]
    fn losses_match_efficiency_accounting() {
        let bank = mixed_bank();
        let vdd = Volts::new(1.03);
        let demand = Amps::new(3.0);
        let active = vec![0, 1, 2, 3];
        let losses = bank.member_losses(demand, &active, vdd).unwrap();
        let total_loss: f64 = losses.iter().map(|l| l.get()).sum();
        let eta = bank.efficiency(demand, &active).unwrap();
        let pout = vdd.get() * demand.get();
        let expected = pout * (1.0 / eta - 1.0);
        assert!((total_loss - expected).abs() < 1e-9);
    }

    #[test]
    fn invalid_active_sets_are_rejected() {
        let bank = mixed_bank();
        assert!(bank.share_currents(Amps::new(1.0), &[]).is_err());
        assert!(bank.share_currents(Amps::new(1.0), &[7]).is_err());
        assert!(bank.share_currents(Amps::new(1.0), &[0, 0]).is_err());
    }

    #[test]
    fn zero_demand_efficiency_is_light_load() {
        let bank = mixed_bank();
        let eta = bank.efficiency(Amps::ZERO, &[0]).unwrap();
        // Light-load efficiency of one buck phase.
        assert!(eta < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one regulator")]
    fn empty_bank_panics() {
        HeterogeneousBank::new(vec![]);
    }
}
