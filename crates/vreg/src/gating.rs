//! Per-domain regulator on/off state.

use floorplan::VrId;
use simkit::{Error, Result};

/// The on/off state of every component regulator on the chip.
///
/// Indexed by the chip-global [`VrId`] of the `floorplan` crate. Policies
/// produce a new `GatingState` at every decision point; the engine diffs
/// consecutive states to know which regulators toggled.
///
/// # Examples
///
/// ```
/// use vreg::GatingState;
/// use floorplan::VrId;
///
/// let mut state = GatingState::all_on(4);
/// state.set(VrId(2), false)?;
/// assert!(!state.is_on(VrId(2)));
/// assert_eq!(state.active_count(), 3);
/// # Ok::<(), simkit::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatingState {
    on: Vec<bool>,
}

impl GatingState {
    /// All `count` regulators on — the paper's `all-on` baseline.
    pub fn all_on(count: usize) -> Self {
        GatingState {
            on: vec![true; count],
        }
    }

    /// All `count` regulators off (the `off-chip` baseline, where on-chip
    /// regulators contribute no conversion-loss heat).
    pub fn all_off(count: usize) -> Self {
        GatingState {
            on: vec![false; count],
        }
    }

    /// Number of regulators tracked.
    pub fn len(&self) -> usize {
        self.on.len()
    }

    /// Whether the state tracks no regulators.
    pub fn is_empty(&self) -> bool {
        self.on.is_empty()
    }

    /// Whether regulator `id` is on.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn is_on(&self, id: VrId) -> bool {
        self.on[id.0]
    }

    /// Sets regulator `id` on or off.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `id` is out of range.
    pub fn set(&mut self, id: VrId, on: bool) -> Result<()> {
        let len = self.on.len();
        let slot = self.on.get_mut(id.0).ok_or_else(|| {
            Error::invalid_argument(format!("{id} outside gating state of {len}"))
        })?;
        *slot = on;
        Ok(())
    }

    /// Total number of active regulators.
    pub fn active_count(&self) -> usize {
        self.on.iter().filter(|&&b| b).count()
    }

    /// Number of active regulators among `ids` (e.g. one domain's set).
    pub fn active_among(&self, ids: &[VrId]) -> usize {
        ids.iter().filter(|&&id| self.is_on(id)).count()
    }

    /// Iterator over the ids of all active regulators.
    pub fn iter_on(&self) -> impl Iterator<Item = VrId> + '_ {
        self.on
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| VrId(i))
    }

    /// Ids that changed between `before` and `self`, as
    /// `(id, now_on)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the two states track a
    /// different number of regulators.
    pub fn diff(&self, before: &GatingState) -> Result<Vec<(VrId, bool)>> {
        if self.on.len() != before.on.len() {
            return Err(Error::DimensionMismatch {
                expected: self.on.len(),
                actual: before.on.len(),
            });
        }
        Ok(self
            .on
            .iter()
            .zip(&before.on)
            .enumerate()
            .filter(|(_, (now, was))| now != was)
            .map(|(i, (&now, _))| (VrId(i), now))
            .collect())
    }

    /// Counts of regulators that changed between `before` and `self`,
    /// as `(turned_on, turned_off)` — the allocation-free companion of
    /// [`GatingState::diff`] used by per-decision telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the two states track a
    /// different number of regulators.
    pub fn diff_counts(&self, before: &GatingState) -> Result<(usize, usize)> {
        if self.on.len() != before.on.len() {
            return Err(Error::DimensionMismatch {
                expected: self.on.len(),
                actual: before.on.len(),
            });
        }
        let mut turned_on = 0;
        let mut turned_off = 0;
        for (&now, &was) in self.on.iter().zip(&before.on) {
            if now && !was {
                turned_on += 1;
            } else if !now && was {
                turned_off += 1;
            }
        }
        Ok((turned_on, turned_off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_on_and_all_off() {
        let on = GatingState::all_on(5);
        assert_eq!(on.active_count(), 5);
        let off = GatingState::all_off(5);
        assert_eq!(off.active_count(), 0);
        assert_eq!(on.len(), 5);
        assert!(!on.is_empty());
    }

    #[test]
    fn set_and_query() {
        let mut s = GatingState::all_off(3);
        s.set(VrId(1), true).unwrap();
        assert!(s.is_on(VrId(1)));
        assert!(!s.is_on(VrId(0)));
        assert_eq!(s.active_count(), 1);
    }

    #[test]
    fn set_out_of_range_errors() {
        let mut s = GatingState::all_on(2);
        assert!(s.set(VrId(2), false).is_err());
    }

    #[test]
    fn active_among_subset() {
        let mut s = GatingState::all_on(6);
        s.set(VrId(0), false).unwrap();
        s.set(VrId(4), false).unwrap();
        assert_eq!(s.active_among(&[VrId(0), VrId(1), VrId(4)]), 1);
    }

    #[test]
    fn iter_on_lists_active_ids() {
        let mut s = GatingState::all_off(4);
        s.set(VrId(1), true).unwrap();
        s.set(VrId(3), true).unwrap();
        let ids: Vec<_> = s.iter_on().collect();
        assert_eq!(ids, vec![VrId(1), VrId(3)]);
    }

    #[test]
    fn diff_reports_toggles() {
        let before = GatingState::all_on(3);
        let mut after = before.clone();
        after.set(VrId(2), false).unwrap();
        let changes = after.diff(&before).unwrap();
        assert_eq!(changes, vec![(VrId(2), false)]);
    }

    #[test]
    fn diff_size_mismatch_errors() {
        let a = GatingState::all_on(2);
        let b = GatingState::all_on(3);
        assert!(a.diff(&b).is_err());
        assert!(a.diff_counts(&b).is_err());
    }

    #[test]
    fn diff_counts_match_diff() {
        let before = GatingState::all_on(5);
        let mut after = before.clone();
        after.set(VrId(0), false).unwrap();
        after.set(VrId(3), false).unwrap();
        assert_eq!(after.diff_counts(&before).unwrap(), (0, 2));
        assert_eq!(before.diff_counts(&after).unwrap(), (2, 0));
        let mut mixed = before.clone();
        mixed.set(VrId(1), false).unwrap();
        let mut other = GatingState::all_off(5);
        other.set(VrId(1), true).unwrap();
        let (on, off) = other.diff_counts(&mixed).unwrap();
        assert_eq!(on + off, other.diff(&mixed).unwrap().len());
        assert_eq!((on, off), (1, 4));
    }
}
