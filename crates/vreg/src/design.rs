//! Named industrial regulator design points.

use crate::curve::EfficiencyCurve;
use simkit::units::{Amps, Seconds};

/// Circuit topology of an integrated regulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RegulatorTopology {
    /// Inductor-based buck converter (Intel FIVR keeps the inductors on
    /// package; regulation itself is on-chip).
    Buck,
    /// Switched-capacitor converter.
    SwitchedCapacitor,
    /// Linear low-dropout regulator (IBM POWER8 microregulators).
    LowDropout,
}

impl RegulatorTopology {
    /// Stable lowercase tag (content hashing, telemetry field values).
    pub fn tag(self) -> &'static str {
        match self {
            RegulatorTopology::Buck => "buck",
            RegulatorTopology::SwitchedCapacitor => "sc",
            RegulatorTopology::LowDropout => "ldo",
        }
    }
}

/// One component regulator design: the electrical parameters ThermoGater
/// and the thermal/noise models need.
///
/// The two headline design points of the paper are available as
/// constructors: [`RegulatorDesign::fivr`] (Intel-Haswell-like buck,
/// η_peak = 90 %, 33.6 W/mm²) and [`RegulatorDesign::power8_ldo`]
/// (IBM-POWER8-like digital LDO, η_peak = 90.5 %, 34.5 W/mm²). Per
/// Section 6.4 both are calibrated to the *same* efficiency-curve shape;
/// they differ in power density and response time (the LDO responds
/// faster, which lowers transient voltage noise — Fig. 15).
#[derive(Debug, Clone, PartialEq)]
pub struct RegulatorDesign {
    name: String,
    topology: RegulatorTopology,
    curve: EfficiencyCurve,
    pout_per_area_w_mm2: f64,
    response_time: Seconds,
}

impl RegulatorDesign {
    /// Creates a custom design.
    ///
    /// `pout_per_area_w_mm2` is the output power density at full load;
    /// `response_time` is the control-loop latency to a load transient.
    pub fn new(
        name: impl Into<String>,
        topology: RegulatorTopology,
        curve: EfficiencyCurve,
        pout_per_area_w_mm2: f64,
        response_time: Seconds,
    ) -> Self {
        RegulatorDesign {
            name: name.into(),
            topology,
            curve,
            pout_per_area_w_mm2,
            response_time,
        }
    }

    /// Intel-Haswell-FIVR-like multi-phase buck design point: one phase
    /// delivers ~1.5 A at η_peak = 90 %; output power density
    /// 33.6 W/mm² (Kurd et al., ISSCC'14).
    pub fn fivr() -> Self {
        RegulatorDesign {
            name: "FIVR".to_string(),
            topology: RegulatorTopology::Buck,
            curve: EfficiencyCurve::scaled_reference(0.90, Amps::new(1.5))
                .expect("static parameters"),
            pout_per_area_w_mm2: 33.6,
            response_time: Seconds::from_nanos(15.0),
        }
    }

    /// IBM-POWER8-like digital LDO microregulator design point:
    /// η_peak = 90.5 %, 34.5 W/mm² (Toprak-Deniz et al., ISSCC'14),
    /// calibrated to the same curve shape as FIVR per Section 6.4 of the
    /// paper, with a sub-nanosecond response.
    pub fn power8_ldo() -> Self {
        RegulatorDesign {
            name: "POWER8-LDO".to_string(),
            topology: RegulatorTopology::LowDropout,
            curve: EfficiencyCurve::scaled_reference(0.905, Amps::new(1.5))
                .expect("static parameters"),
            pout_per_area_w_mm2: 34.5,
            response_time: Seconds::from_nanos(0.8),
        }
    }

    /// A representative on-chip switched-capacitor design point
    /// (Andersen et al.: 86 % at 4.6 W/mm²).
    pub fn switched_capacitor() -> Self {
        RegulatorDesign {
            name: "SC".to_string(),
            topology: RegulatorTopology::SwitchedCapacitor,
            curve: EfficiencyCurve::scaled_reference(0.86, Amps::new(1.2))
                .expect("static parameters"),
            pout_per_area_w_mm2: 4.6,
            response_time: Seconds::from_nanos(5.0),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Circuit topology.
    pub fn topology(&self) -> RegulatorTopology {
        self.topology
    }

    /// Per-component-regulator efficiency curve.
    pub fn curve(&self) -> &EfficiencyCurve {
        &self.curve
    }

    /// Peak conversion efficiency η_peak.
    pub fn peak_efficiency(&self) -> f64 {
        self.curve.peak_efficiency()
    }

    /// Load current at which one component regulator reaches η_peak.
    pub fn peak_current(&self) -> Amps {
        self.curve.peak_current()
    }

    /// Output power density at full load, in W/mm².
    pub fn pout_per_area_w_mm2(&self) -> f64 {
        self.pout_per_area_w_mm2
    }

    /// Control-loop response time to a load transient.
    pub fn response_time(&self) -> Seconds {
        self.response_time
    }

    /// Appends every parameter — including the full efficiency-curve
    /// point list — as canonical `(<prefix><name>, value)` pairs for
    /// content hashing (floats render with `{:e}`).
    pub fn config_fields(&self, prefix: &str, out: &mut Vec<(String, String)>) {
        out.push((format!("{prefix}name"), self.name.clone()));
        out.push((format!("{prefix}topology"), self.topology.tag().to_string()));
        out.push((
            format!("{prefix}pout_per_area_w_mm2"),
            format!("{:e}", self.pout_per_area_w_mm2),
        ));
        out.push((
            format!("{prefix}response_time"),
            format!("{:e}", self.response_time.get()),
        ));
        let points: Vec<String> = self
            .curve
            .points()
            .iter()
            .map(|&(i, eta)| format!("{i:e}:{eta:e}"))
            .collect();
        out.push((format!("{prefix}curve.points"), points.join(" ")));
        out.push((
            format!("{prefix}curve.peak_current"),
            format!("{:e}", self.curve.peak_current().get()),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fivr_matches_paper_parameters() {
        let d = RegulatorDesign::fivr();
        assert_eq!(d.topology(), RegulatorTopology::Buck);
        assert!((d.peak_efficiency() - 0.90).abs() < 1e-12);
        assert!((d.pout_per_area_w_mm2() - 33.6).abs() < 1e-12);
    }

    #[test]
    fn ldo_matches_paper_parameters() {
        let d = RegulatorDesign::power8_ldo();
        assert_eq!(d.topology(), RegulatorTopology::LowDropout);
        assert!((d.peak_efficiency() - 0.905).abs() < 1e-12);
        assert!((d.pout_per_area_w_mm2() - 34.5).abs() < 1e-12);
    }

    #[test]
    fn ldo_responds_faster_than_fivr() {
        assert!(
            RegulatorDesign::power8_ldo().response_time() < RegulatorDesign::fivr().response_time()
        );
    }

    #[test]
    fn designs_share_curve_shape_per_section_6_4() {
        // The LDO curve is the same normalized shape: its efficiency at
        // half the peak current relative to peak matches FIVR's.
        let fivr = RegulatorDesign::fivr();
        let ldo = RegulatorDesign::power8_ldo();
        let r_fivr = fivr.curve().eval(Amps::new(0.75)) / fivr.peak_efficiency();
        let r_ldo = ldo.curve().eval(Amps::new(0.75)) / ldo.peak_efficiency();
        assert!((r_fivr - r_ldo).abs() < 1e-9);
    }

    #[test]
    fn custom_design_roundtrip() {
        let curve = EfficiencyCurve::scaled_reference(0.8, Amps::new(2.0)).unwrap();
        let d = RegulatorDesign::new(
            "test",
            RegulatorTopology::SwitchedCapacitor,
            curve,
            10.0,
            Seconds::from_nanos(3.0),
        );
        assert_eq!(d.name(), "test");
        assert_eq!(d.peak_current(), Amps::new(2.0));
    }
}
