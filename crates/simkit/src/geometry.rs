//! Planar geometry for floorplans and grid discretisation.
//!
//! All coordinates are in meters (see [`crate::units::Meters`] for the
//! millimeter constructors floorplans usually prefer). The origin is the
//! lower-left corner of the die; `x` grows rightwards, `y` upwards.

use crate::units::Meters;

/// A point on the die surface.
///
/// # Examples
///
/// ```
/// use simkit::{Point, units::Meters};
///
/// let a = Point::from_mm(0.0, 0.0);
/// let b = Point::from_mm(3.0, 4.0);
/// assert!((a.distance(b).as_mm() - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Meters,
    /// Vertical coordinate.
    pub y: Meters,
}

impl Point {
    /// Creates a point from meter coordinates.
    pub const fn new(x: Meters, y: Meters) -> Self {
        Point { x, y }
    }

    /// Creates a point from millimeter coordinates.
    pub fn from_mm(x_mm: f64, y_mm: f64) -> Self {
        Point {
            x: Meters::from_mm(x_mm),
            y: Meters::from_mm(y_mm),
        }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> Meters {
        let dx = self.x.get() - other.x.get();
        let dy = self.y.get() - other.y.get();
        Meters::new(dx.hypot(dy))
    }

    /// Manhattan (L1) distance to another point.
    ///
    /// Power-grid current flows along orthogonal rails, so the effective
    /// electrical distance between a regulator and its load is closer to
    /// L1 than to Euclidean distance.
    pub fn manhattan_distance(self, other: Point) -> Meters {
        let dx = (self.x.get() - other.x.get()).abs();
        let dy = (self.y.get() - other.y.get()).abs();
        Meters::new(dx + dy)
    }
}

/// An axis-aligned rectangle, defined by its lower-left corner and size.
///
/// # Examples
///
/// ```
/// use simkit::Rect;
///
/// let r = Rect::from_mm(0.0, 0.0, 10.0, 5.0);
/// assert!((r.area_mm2() - 50.0).abs() < 1e-9);
/// assert!(r.contains(simkit::Point::from_mm(5.0, 2.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left corner.
    pub origin: Point,
    /// Horizontal extent.
    pub width: Meters,
    /// Vertical extent.
    pub height: Meters,
}

impl Rect {
    /// Creates a rectangle from meter dimensions.
    pub const fn new(origin: Point, width: Meters, height: Meters) -> Self {
        Rect {
            origin,
            width,
            height,
        }
    }

    /// Creates a rectangle from millimeter coordinates
    /// `(x, y, width, height)`.
    pub fn from_mm(x_mm: f64, y_mm: f64, w_mm: f64, h_mm: f64) -> Self {
        Rect {
            origin: Point::from_mm(x_mm, y_mm),
            width: Meters::from_mm(w_mm),
            height: Meters::from_mm(h_mm),
        }
    }

    /// The x coordinate of the right edge.
    pub fn right(&self) -> Meters {
        self.origin.x + self.width
    }

    /// The y coordinate of the top edge.
    pub fn top(&self) -> Meters {
        self.origin.y + self.height
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        Point {
            x: self.origin.x + self.width / 2.0,
            y: self.origin.y + self.height / 2.0,
        }
    }

    /// Area in square meters.
    pub fn area(&self) -> f64 {
        self.width.get() * self.height.get()
    }

    /// Area in square millimeters (the unit the paper reports).
    pub fn area_mm2(&self) -> f64 {
        self.width.as_mm() * self.height.as_mm()
    }

    /// Whether the point lies inside the rectangle (edges inclusive on the
    /// lower-left, exclusive on the upper-right, so adjacent tiles never
    /// both claim a shared boundary point).
    pub fn contains(&self, p: Point) -> bool {
        p.x.get() >= self.origin.x.get()
            && p.x.get() < self.right().get()
            && p.y.get() >= self.origin.y.get()
            && p.y.get() < self.top().get()
    }

    /// Area of overlap with another rectangle, in square meters.
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let x_overlap = (self.right().get().min(other.right().get())
            - self.origin.x.get().max(other.origin.x.get()))
        .max(0.0);
        let y_overlap = (self.top().get().min(other.top().get())
            - self.origin.y.get().max(other.origin.y.get()))
        .max(0.0);
        x_overlap * y_overlap
    }

    /// Whether the two rectangles overlap with non-zero area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.intersection_area(other) > 0.0
    }

    /// Subdivides this rectangle into an `nx × ny` uniform grid of tiles,
    /// returned row-major from the lower-left.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero.
    pub fn tiles(&self, nx: usize, ny: usize) -> Vec<Rect> {
        assert!(nx > 0 && ny > 0, "tile counts must be positive");
        let tw = self.width / nx as f64;
        let th = self.height / ny as f64;
        let mut out = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                out.push(Rect {
                    origin: Point {
                        x: self.origin.x + tw * i as f64,
                        y: self.origin.y + th * j as f64,
                    },
                    width: tw,
                    height: th,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_euclidean_and_manhattan() {
        let a = Point::from_mm(1.0, 1.0);
        let b = Point::from_mm(4.0, 5.0);
        assert!((a.distance(b).as_mm() - 5.0).abs() < 1e-9);
        assert!((a.manhattan_distance(b).as_mm() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn center_and_edges() {
        let r = Rect::from_mm(2.0, 4.0, 10.0, 6.0);
        let c = r.center();
        assert!((c.x.as_mm() - 7.0).abs() < 1e-9);
        assert!((c.y.as_mm() - 7.0).abs() < 1e-9);
        assert!((r.right().as_mm() - 12.0).abs() < 1e-9);
        assert!((r.top().as_mm() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn containment_is_half_open() {
        let r = Rect::from_mm(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(Point::from_mm(0.0, 0.0)));
        assert!(!r.contains(Point::from_mm(1.0, 1.0)));
        assert!(r.contains(Point::from_mm(0.999, 0.999)));
    }

    #[test]
    fn intersection_area_partial_overlap() {
        let a = Rect::from_mm(0.0, 0.0, 4.0, 4.0);
        let b = Rect::from_mm(2.0, 2.0, 4.0, 4.0);
        let overlap_mm2 = a.intersection_area(&b) * 1e6;
        assert!((overlap_mm2 - 4.0).abs() < 1e-9);
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersection_area_disjoint_is_zero() {
        let a = Rect::from_mm(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_mm(2.0, 2.0, 1.0, 1.0);
        assert_eq!(a.intersection_area(&b), 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn tiles_cover_parent_exactly() {
        let r = Rect::from_mm(0.0, 0.0, 8.0, 4.0);
        let tiles = r.tiles(4, 2);
        assert_eq!(tiles.len(), 8);
        let total: f64 = tiles.iter().map(Rect::area).sum();
        assert!((total - r.area()).abs() < 1e-12);
        // Row-major from the lower-left: first tile starts at origin.
        assert_eq!(tiles[0].origin, r.origin);
        // Last tile's top-right is the parent's top-right.
        let last = tiles.last().unwrap();
        assert!((last.right().get() - r.right().get()).abs() < 1e-12);
        assert!((last.top().get() - r.top().get()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tile counts")]
    fn tiles_zero_panics() {
        Rect::from_mm(0.0, 0.0, 1.0, 1.0).tiles(0, 2);
    }
}
