//! Sparse direct LDLᵀ factorization for symmetric positive definite
//! systems that are solved many times.
//!
//! The iterative solvers in [`super`] pay O(iterations · nnz) per solve.
//! When the same matrix — or the same sparsity pattern with patched
//! values — is solved thousands of times (transient thermal stepping,
//! per-domain PDN IR drop inside the noise loop, steady-state feedback
//! iterations), a direct method amortises one factorization into
//! O(nnz(L)) triangular solves. This module provides that path with no
//! external dependencies:
//!
//! * [`min_degree_ordering`] — a greedy minimum-degree fill-reducing
//!   ordering over the CSR pattern, with dense "hub" rows (a heat-sink
//!   node coupled to every spreader cell) pinned to the end of the
//!   elimination order so they cannot trigger catastrophic fill;
//! * [`LdltFactor::new`] — elimination-tree symbolic analysis plus an
//!   up-looking numeric LDLᵀ factorization (Davis' `LDL` algorithm);
//! * [`LdltFactor::refactor`] — the values-only fast path: reuses the
//!   ordering, elimination tree, and the L pattern, re-running just the
//!   numeric pass with zero allocation;
//! * [`LdltFactor::solve_into`] / [`LdltFactor::solve_multi`] —
//!   allocation-free permute → forward → diagonal → backward → unpermute
//!   solves into caller-provided buffers, single or batched
//!   right-hand-sides.
//!
//! [`SolverBackend`] names the solver families; configs thread it through
//! the thermal, PDN, and engine layers, and the `SIMKIT_SOLVER`
//! environment variable overrides it globally.

use super::{CsrMatrix, SolveStats};
use crate::error::{Error, Result};

/// Solver family used for the SPD systems in the thermal and PDN models.
///
/// `Auto` defers the choice to the call site's measured break-even policy
/// (see DESIGN.md §11 and BENCH.md):
///
/// * PDN domain solves factor immediately — the ungated IR systems are
///   ill-conditioned enough that cold CG needs thousands of iterations,
///   and the factor is reused across every gating state via
///   [`LdltFactor::refactor`];
/// * thermal steady-state scratches count solves and switch to the
///   direct path once [`DIRECT_BREAK_EVEN`] solves have gone through the
///   same matrix;
/// * thermal transient steppers pin warm-started CG: at simulation time
///   steps the `C/Δt` diagonal dominates the stencil couplings, so a
///   warm iterative step converges in a handful of iterations and beats
///   streaming the full factor through a triangular solve.
///
/// The `SIMKIT_SOLVER` environment variable (`auto | direct | cg | gs`)
/// overrides the configured value everywhere a config constructor
/// consults [`SolverBackend::env_default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Pick per call site: direct where measurement says factoring wins
    /// (PDN, steady solves past break-even), warm iterative otherwise.
    #[default]
    Auto,
    /// Sparse LDLᵀ factorization with cached symbolic structure.
    Direct,
    /// Jacobi-preconditioned conjugate gradient.
    Cg,
    /// Geometric-multigrid-preconditioned conjugate gradient
    /// ([`crate::linalg::MultigridPreconditioner`]): grid-size-independent
    /// iteration counts, the backend of choice for grids an order of
    /// magnitude finer than the paper's configs.
    Mgcg,
    /// Colored Gauss–Seidel sweeps (transient stepping only; steady and
    /// PDN solves fall back to CG, which shares their tolerances).
    GaussSeidel,
}

/// Break-even solve count for [`SolverBackend::Auto`]: a scratch that has
/// carried this many iterative solves of one fixed matrix factors it and
/// switches to the direct path.
///
/// Calibrated by measurement on the 32×32 thermal conductance matrix
/// (n = 2049, see BENCH.md): a factorization costs ≈29 ms — dominated by
/// the fill-reducing ordering, the numeric pass is ≈2.7 ms — while one
/// steady CG solve costs ≈1.35 ms and one triangular solve ≈0.15 ms, so
/// the factor pays for itself after ≈29 / (1.35 − 0.15) ≈ 24 further
/// solves. A matrix solved fewer times than this stays on the iterative
/// path; long leakage-feedback loops and oracle preview sweeps clear the
/// threshold and get the ≈9× per-solve speedup.
pub const DIRECT_BREAK_EVEN: usize = 24;

impl SolverBackend {
    /// Parses a backend name as accepted by `SIMKIT_SOLVER`.
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(SolverBackend::Auto),
            "direct" | "ldlt" => Some(SolverBackend::Direct),
            "cg" => Some(SolverBackend::Cg),
            "mgcg" | "multigrid" => Some(SolverBackend::Mgcg),
            "gs" | "gauss-seidel" | "gauss_seidel" => Some(SolverBackend::GaussSeidel),
            _ => None,
        }
    }

    /// The backend requested by the `SIMKIT_SOLVER` environment variable,
    /// or `None` when unset or unparseable.
    pub fn from_env() -> Option<Self> {
        std::env::var("SIMKIT_SOLVER")
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// Default for config constructors: the `SIMKIT_SOLVER` override when
    /// present, [`SolverBackend::Auto`] otherwise.
    pub fn env_default() -> Self {
        Self::from_env().unwrap_or_default()
    }

    /// Stable lowercase name (telemetry field value, CLI echo).
    pub fn name(self) -> &'static str {
        match self {
            SolverBackend::Auto => "auto",
            SolverBackend::Direct => "direct",
            SolverBackend::Cg => "cg",
            SolverBackend::Mgcg => "mgcg",
            SolverBackend::GaussSeidel => "gs",
        }
    }
}

impl std::fmt::Display for SolverBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Degree at or above which a row counts as a "hub" for
/// [`min_degree_ordering`]: hubs are excluded from the minimum-degree
/// graph and eliminated last, so a dense coupling row (the heat-sink node
/// touches every spreader cell) cannot blow up the quotient-graph update
/// cost or the fill of earlier columns.
fn hub_threshold(n: usize) -> usize {
    16.max((n as f64).sqrt() as usize)
}

/// Greedy minimum-degree fill-reducing ordering over the symmetric CSR
/// pattern. Returns the permutation `perm` where `perm[k]` is the
/// original index eliminated at step `k`.
///
/// The algorithm maintains the explicit elimination graph: eliminating
/// the minimum-degree node connects its neighbours into a clique. Ties
/// break on the lower node index, so the ordering is deterministic. Rows
/// whose degree reaches [`hub_threshold`] are pinned after all ordinary
/// rows (in index order); grid stencils never get there, so for the
/// thermal and PDN matrices this only moves the dense sink row last.
pub fn min_degree_ordering(matrix: &CsrMatrix) -> Vec<usize> {
    let n = matrix.rows();
    let threshold = hub_threshold(n);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut is_hub = vec![false; n];
    for (row, hub) in is_hub.iter_mut().enumerate() {
        let degree = matrix.row_entries(row).filter(|&(c, _)| c != row).count();
        *hub = degree >= threshold;
    }
    for row in 0..n {
        if is_hub[row] {
            continue;
        }
        adj[row] = matrix
            .row_entries(row)
            .map(|(c, _)| c)
            .filter(|&c| c != row && !is_hub[c])
            .collect();
        adj[row].sort_unstable();
        adj[row].dedup();
    }

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = (0..n)
        .filter(|&v| !is_hub[v])
        .map(|v| Reverse((adj[v].len(), v)))
        .collect();
    let mut eliminated = vec![false; n];
    let mut perm = Vec::with_capacity(n);
    let mut clique: Vec<usize> = Vec::new();
    let mut merged: Vec<usize> = Vec::new();
    while let Some(Reverse((degree, u))) = heap.pop() {
        if eliminated[u] || degree != adj[u].len() {
            continue; // stale heap entry; the live one is elsewhere
        }
        eliminated[u] = true;
        perm.push(u);
        clique.clear();
        clique.extend(adj[u].iter().copied().filter(|&v| !eliminated[v]));
        for &v in &clique {
            // adj[v] ← (adj[v] ∪ clique) \ {u, v}; both inputs are sorted.
            merged.clear();
            let (a, b) = (&adj[v], &clique);
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                let next = match (a.get(i), b.get(j)) {
                    (Some(&x), Some(&y)) if x == y => {
                        i += 1;
                        j += 1;
                        x
                    }
                    (Some(&x), Some(&y)) if x < y => {
                        i += 1;
                        x
                    }
                    (Some(_), Some(&y)) => {
                        j += 1;
                        y
                    }
                    (Some(&x), None) => {
                        i += 1;
                        x
                    }
                    (None, Some(&y)) => {
                        j += 1;
                        y
                    }
                    (None, None) => unreachable!(),
                };
                if next != u && next != v && !eliminated[next] {
                    merged.push(next);
                }
            }
            std::mem::swap(&mut adj[v], &mut merged);
            heap.push(Reverse((adj[v].len(), v)));
        }
        adj[u] = Vec::new();
    }
    perm.extend((0..n).filter(|&v| is_hub[v]));
    perm
}

/// Scratch buffer for [`LdltFactor::solve_into`]: one permuted work
/// vector, grown on first use and reused afterwards.
#[derive(Debug, Clone, Default)]
pub struct LdltWorkspace {
    w: Vec<f64>,
}

impl LdltWorkspace {
    /// An empty workspace; sized on first solve.
    pub fn new() -> Self {
        LdltWorkspace::default()
    }

    /// Capacity of the work buffer — stable across repeated same-size
    /// solves, which is how tests pin down the zero-allocation property.
    pub fn capacity(&self) -> usize {
        self.w.capacity()
    }

    fn ensure(&mut self, n: usize) {
        if self.w.len() < n {
            self.w.resize(n, 0.0);
        }
    }
}

/// A sparse LDLᵀ factorization `P·A·Pᵀ = L·D·Lᵀ` of a symmetric positive
/// definite [`CsrMatrix`].
///
/// The ordering `P` ([`min_degree_ordering`]), the elimination tree, and
/// the pattern of `L` depend only on the sparsity pattern, so they are
/// computed once in [`LdltFactor::new`] and reused by
/// [`LdltFactor::refactor`] when only the values change (the PDN patches
/// regulator conductances per gating decision). All numeric scratch lives
/// inside the factor, so refactorization and solves allocate nothing.
#[derive(Debug, Clone)]
pub struct LdltFactor {
    n: usize,
    nnz_a: usize,
    /// `perm[k]` = original row eliminated at step `k`.
    perm: Vec<usize>,
    /// Inverse permutation: `iperm[perm[k]] == k`.
    iperm: Vec<usize>,
    /// Elimination tree: parent of column `k`, `usize::MAX` at roots.
    parent: Vec<usize>,
    /// Column pointers of L (strictly lower triangular part).
    lp: Vec<usize>,
    /// Row indices of L, column-major within `lp` windows.
    li: Vec<usize>,
    /// Values of L matching `li`.
    lx: Vec<f64>,
    /// The diagonal D.
    d: Vec<f64>,
    // Numeric-pass scratch, kept so `refactor` is allocation-free.
    y: Vec<f64>,
    flag: Vec<usize>,
    pattern: Vec<usize>,
    lnz_next: Vec<usize>,
}

impl LdltFactor {
    /// Orders, symbolically analyses, and numerically factors `matrix`.
    ///
    /// `matrix` must be symmetric; only entries with permuted column ≤
    /// row are read, which covers both triangles of a symmetric matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] — `matrix` is not square;
    /// * [`Error::SingularMatrix`] — a row stores no diagonal entry;
    /// * [`Error::NotPositiveDefinite`] — a pivot `D[k]` is not a
    ///   positive finite number.
    pub fn new(matrix: &CsrMatrix) -> Result<Self> {
        if matrix.rows() != matrix.cols() {
            return Err(Error::DimensionMismatch {
                expected: matrix.rows(),
                actual: matrix.cols(),
            });
        }
        let n = matrix.rows();
        // Pivot pre-check: every row needs a stored diagonal, exactly as
        // the iterative solvers require. `diag_indices` is the same
        // single-pass scan the Jacobi preconditioner caches.
        if let Some(i) = matrix.diag_indices().iter().position(|slot| slot.is_none()) {
            return Err(Error::SingularMatrix { index: i });
        }
        let perm = min_degree_ordering(matrix);
        let mut iperm = vec![0usize; n];
        for (k, &orig) in perm.iter().enumerate() {
            iperm[orig] = k;
        }

        // Symbolic analysis: elimination tree + per-column counts of L,
        // by following partial etree paths (Davis, "Direct Methods for
        // Sparse Linear Systems", algorithm LDL).
        let mut parent = vec![usize::MAX; n];
        let mut flag = vec![usize::MAX; n];
        let mut counts = vec![0usize; n];
        for k in 0..n {
            flag[k] = k;
            for (col, _) in matrix.row_entries(perm[k]) {
                let mut i = iperm[col];
                while i < k && flag[i] != k {
                    if parent[i] == usize::MAX {
                        parent[i] = k;
                    }
                    counts[i] += 1; // L(k, i) is structurally nonzero
                    flag[i] = k;
                    i = parent[i];
                }
            }
        }
        let mut lp = vec![0usize; n + 1];
        for k in 0..n {
            lp[k + 1] = lp[k] + counts[k];
        }
        let lnz = lp[n];

        let mut factor = LdltFactor {
            n,
            nnz_a: matrix.nnz(),
            perm,
            iperm,
            parent,
            lp,
            li: vec![0usize; lnz],
            lx: vec![0.0; lnz],
            d: vec![0.0; n],
            y: vec![0.0; n],
            flag,
            pattern: vec![0usize; n],
            lnz_next: vec![0usize; n],
        };
        factor.numeric(matrix)?;
        Ok(factor)
    }

    /// Re-runs the numeric factorization against new values with the
    /// cached ordering, elimination tree, and L pattern. Allocation-free.
    ///
    /// The caller must pass a matrix with the same sparsity pattern the
    /// factor was built from — the contract of patching values through
    /// [`CsrMatrix::values_mut`]. Dimensions and nnz are checked; a
    /// different pattern of equal size is the caller's bug.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] — size or nnz differs from the
    ///   factored matrix;
    /// * [`Error::NotPositiveDefinite`] — a pivot is not positive finite.
    pub fn refactor(&mut self, matrix: &CsrMatrix) -> Result<()> {
        if matrix.rows() != self.n || matrix.cols() != self.n || matrix.nnz() != self.nnz_a {
            return Err(Error::DimensionMismatch {
                expected: self.n,
                actual: matrix.rows(),
            });
        }
        self.numeric(matrix)
    }

    /// Up-looking numeric pass: computes row `k` of L from rows `< k`
    /// via the elimination-tree reach, in one sweep over the matrix.
    fn numeric(&mut self, matrix: &CsrMatrix) -> Result<()> {
        let n = self.n;
        self.flag.iter_mut().for_each(|f| *f = usize::MAX);
        self.y.iter_mut().for_each(|y| *y = 0.0);
        for k in 0..n {
            self.flag[k] = k;
            self.lnz_next[k] = self.lp[k];
            // Scatter permuted row k (columns ≤ k) into y, collecting the
            // nonzero pattern of L's row k in topological order: each
            // etree path is pushed onto the low end of `pattern` and
            // popped onto the high end, so ancestors come out last.
            let mut top = n;
            let mut len = 0usize;
            for (col, val) in matrix.row_entries(self.perm[k]) {
                let j = self.iperm[col];
                if j > k {
                    continue; // upper triangle of the permuted matrix
                }
                self.y[j] += val;
                let mut i = j;
                while self.flag[i] != k {
                    self.pattern[len] = i;
                    len += 1;
                    self.flag[i] = k;
                    i = self.parent[i];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    self.pattern[top] = self.pattern[len];
                }
            }
            let mut dk = self.y[k];
            self.y[k] = 0.0;
            for idx in top..n {
                let i = self.pattern[idx];
                let yi = self.y[i];
                self.y[i] = 0.0;
                let l_ki = yi / self.d[i];
                for p in self.lp[i]..self.lnz_next[i] {
                    self.y[self.li[p]] -= self.lx[p] * yi;
                }
                dk -= l_ki * yi;
                let slot = self.lnz_next[i];
                self.li[slot] = k;
                self.lx[slot] = l_ki;
                self.lnz_next[i] = slot + 1;
            }
            if !(dk.is_finite() && dk > 0.0) {
                return Err(Error::NotPositiveDefinite {
                    index: self.perm[k],
                    pivot: dk,
                });
            }
            self.d[k] = dk;
        }
        Ok(())
    }

    /// Dimension of the factored system.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Stored nonzeros in the strictly lower triangle of L.
    pub fn lnz(&self) -> usize {
        self.lp[self.n]
    }

    /// The fill-reducing permutation (`perm[k]` = original index
    /// eliminated at step `k`).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A·x = b` through the factorization: permute, forward
    /// substitution with L, diagonal scaling, backward substitution with
    /// Lᵀ, unpermute. Allocation-free once `ws` is sized.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `b` or `x` differs from
    /// the factored dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64], ws: &mut LdltWorkspace) -> Result<()> {
        for len in [b.len(), x.len()] {
            if len != self.n {
                return Err(Error::DimensionMismatch {
                    expected: self.n,
                    actual: len,
                });
            }
        }
        ws.ensure(self.n);
        let w = &mut ws.w[..self.n];
        for (k, &orig) in self.perm.iter().enumerate() {
            w[k] = b[orig];
        }
        for j in 0..self.n {
            let wj = w[j];
            for p in self.lp[j]..self.lp[j + 1] {
                w[self.li[p]] -= self.lx[p] * wj;
            }
        }
        for (wj, dj) in w.iter_mut().zip(&self.d) {
            *wj /= dj;
        }
        for j in (0..self.n).rev() {
            let mut wj = w[j];
            for p in self.lp[j]..self.lp[j + 1] {
                wj -= self.lx[p] * w[self.li[p]];
            }
            w[j] = wj;
        }
        for (k, &orig) in self.perm.iter().enumerate() {
            x[orig] = w[k];
        }
        Ok(())
    }

    /// Multi-right-hand-side [`solve_into`](LdltFactor::solve_into):
    /// `b` and `x` hold `b.len() / n` concatenated vectors of length `n`
    /// each, solved in order through the same workspace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `b` and `x` differ in
    /// length or are not a whole number of `n`-vectors.
    pub fn solve_multi(&self, b: &[f64], x: &mut [f64], ws: &mut LdltWorkspace) -> Result<()> {
        if b.len() != x.len() || !b.len().is_multiple_of(self.n.max(1)) {
            return Err(Error::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
            });
        }
        for (bc, xc) in b.chunks_exact(self.n).zip(x.chunks_exact_mut(self.n)) {
            self.solve_into(bc, xc, ws)?;
        }
        Ok(())
    }

    /// [`SolveStats`] for a completed direct solve: one "iteration" and
    /// the true relative residual (one extra matrix pass) so direct and
    /// iterative backends aggregate into the same solver profiles.
    pub fn stats_for(matrix: &CsrMatrix, b: &[f64], x: &[f64]) -> SolveStats {
        SolveStats {
            iterations: 1,
            residual: matrix.relative_residual(b, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{vec_ops, TripletBuilder};
    use super::*;
    use crate::rng::DeterministicRng;

    /// SPD tridiagonal [−1, 2.5, −1].
    fn tridiag(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.5);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    /// 2-D 5-point grid Laplacian with a grounded diagonal, plus an
    /// optional dense sink row coupled to every cell — the thermal
    /// matrix shape.
    fn grid_laplacian(nx: usize, ny: usize, sink: bool) -> CsrMatrix {
        let cells = nx * ny;
        let n = cells + usize::from(sink);
        let mut b = TripletBuilder::new(n, n);
        for j in 0..ny {
            for i in 0..nx {
                let at = j * nx + i;
                let mut degree = 0;
                let mut couple = |other: usize, b: &mut TripletBuilder| {
                    b.add(at, other, -1.0);
                    degree += 1;
                };
                if i > 0 {
                    couple(at - 1, &mut b);
                }
                if i + 1 < nx {
                    couple(at + 1, &mut b);
                }
                if j > 0 {
                    couple(at - nx, &mut b);
                }
                if j + 1 < ny {
                    couple(at + nx, &mut b);
                }
                b.add(at, at, degree as f64 + 0.5 + f64::from(sink) * 0.2);
                if sink {
                    b.add(at, cells, -0.2);
                    b.add(cells, at, -0.2);
                }
            }
        }
        if sink {
            b.add(cells, cells, 0.2 * cells as f64 + 1.0);
        }
        b.build()
    }

    /// Random SPD matrix: Aᵀ·A-free construction — random symmetric
    /// off-diagonals with a dominant diagonal.
    fn random_spd(n: usize, rng: &mut DeterministicRng) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        let mut row_sums = vec![0.0f64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.bernoulli(0.2) {
                    let v = -rng.uniform_range(0.1, 1.0);
                    b.add(i, j, v);
                    b.add(j, i, v);
                    row_sums[i] += v.abs();
                    row_sums[j] += v.abs();
                }
            }
        }
        for (i, s) in row_sums.iter().enumerate() {
            b.add(i, i, s + rng.uniform_range(0.5, 1.5));
        }
        b.build()
    }

    fn assert_valid_permutation(perm: &[usize], n: usize) {
        assert_eq!(perm.len(), n);
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n, "index {p} out of range");
            assert!(!seen[p], "index {p} repeated");
            seen[p] = true;
        }
    }

    /// nnz(L) under a given ordering, via the same symbolic analysis the
    /// factor runs — used to compare fill across orderings.
    fn symbolic_fill(matrix: &CsrMatrix, perm: &[usize]) -> usize {
        let n = matrix.rows();
        let mut iperm = vec![0usize; n];
        for (k, &orig) in perm.iter().enumerate() {
            iperm[orig] = k;
        }
        let mut parent = vec![usize::MAX; n];
        let mut flag = vec![usize::MAX; n];
        let mut lnz = 0usize;
        for k in 0..n {
            flag[k] = k;
            for (col, _) in matrix.row_entries(perm[k]) {
                let mut i = iperm[col];
                while i < k && flag[i] != k {
                    if parent[i] == usize::MAX {
                        parent[i] = k;
                    }
                    lnz += 1;
                    flag[i] = k;
                    i = parent[i];
                }
            }
        }
        lnz
    }

    #[test]
    fn ordering_is_a_valid_permutation() {
        let mut rng = DeterministicRng::new(0x0D0E);
        for n in [1, 2, 3, 17, 40] {
            let m = random_spd(n, &mut rng);
            assert_valid_permutation(&min_degree_ordering(&m), n);
        }
        let m = grid_laplacian(8, 7, true);
        assert_valid_permutation(&min_degree_ordering(&m), 8 * 7 + 1);
    }

    #[test]
    fn ordering_reduces_fill_on_grids() {
        let m = grid_laplacian(16, 16, false);
        let n = m.rows();
        let identity: Vec<usize> = (0..n).collect();
        let natural = symbolic_fill(&m, &identity);
        let ordered = symbolic_fill(&m, &min_degree_ordering(&m));
        // Natural order on an nx×ny grid fills the whole band (~nx per
        // column); minimum degree must beat it by a wide margin.
        assert!(
            ordered * 2 < natural,
            "min-degree fill {ordered} vs natural {natural}"
        );
    }

    #[test]
    fn ordering_pins_dense_hub_last() {
        let m = grid_laplacian(20, 20, true);
        let n = m.rows();
        let perm = min_degree_ordering(&m);
        assert_eq!(perm[n - 1], n - 1, "sink row must be eliminated last");
        // And fill stays grid-like: far below the n·√n of a band factor.
        let lnz = symbolic_fill(&m, &perm);
        assert!(
            lnz < 12 * n,
            "hub-last min-degree fill {lnz} too large for n={n}"
        );
    }

    #[test]
    fn factorization_round_trips_l_d_lt() {
        let mut rng = DeterministicRng::new(0x1D17);
        for n in [1, 2, 5, 24, 60] {
            let m = random_spd(n, &mut rng);
            let f = LdltFactor::new(&m).unwrap();
            // Reconstruct P·A·Pᵀ = L·D·Lᵀ densely and compare entrywise.
            let mut recon = vec![vec![0.0f64; n]; n];
            for (k, recon_row) in recon.iter_mut().enumerate() {
                recon_row[k] = f.d[k];
            }
            // recon = L·D·Lᵀ with L unit lower triangular stored by columns.
            let mut l = vec![vec![0.0f64; n]; n];
            for (j, lrow) in l.iter_mut().enumerate() {
                lrow[j] = 1.0;
            }
            for (j, w) in f.lp.windows(2).enumerate() {
                for p in w[0]..w[1] {
                    l[f.li[p]][j] = f.lx[p];
                }
            }
            for (r, recon_row) in recon.iter_mut().enumerate() {
                for (c, out) in recon_row.iter_mut().enumerate() {
                    *out = (0..n).map(|t| l[r][t] * f.d[t] * l[c][t]).sum();
                }
            }
            for (r, recon_row) in recon.iter().enumerate() {
                for (c, &got) in recon_row.iter().enumerate() {
                    let want = m.get(f.perm[r], f.perm[c]);
                    assert!(
                        (got - want).abs() < 1e-10,
                        "n={n} ({r},{c}): got {got}, want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn direct_solve_matches_cg() {
        let mut rng = DeterministicRng::new(0x50D1);
        for n in [1, 3, 30, 80] {
            let m = random_spd(n, &mut rng);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.5).collect();
            let b = m.mul_vec(&x_true).unwrap();
            let f = LdltFactor::new(&m).unwrap();
            let mut ws = LdltWorkspace::new();
            let mut x = vec![0.0; n];
            f.solve_into(&b, &mut x, &mut ws).unwrap();
            assert!(
                vec_ops::max_abs_diff(&x, &x_true) < 1e-9,
                "n={n}: direct error {}",
                vec_ops::max_abs_diff(&x, &x_true)
            );
            let cg = m.solve_cg(&b, None, 1e-12, 10_000).unwrap();
            assert!(vec_ops::max_abs_diff(&x, &cg) < 1e-8);
        }
    }

    #[test]
    fn solve_on_thermal_shaped_matrix() {
        let m = grid_laplacian(12, 9, true);
        let n = m.rows();
        let x_true: Vec<f64> = (0..n).map(|i| 40.0 + (i as f64 * 0.11).cos()).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let f = LdltFactor::new(&m).unwrap();
        let mut ws = LdltWorkspace::new();
        let mut x = vec![0.0; n];
        f.solve_into(&b, &mut x, &mut ws).unwrap();
        assert!(vec_ops::max_abs_diff(&x, &x_true) < 1e-9);
        assert!(m.relative_residual(&b, &x) < 1e-12);
    }

    #[test]
    fn refactor_tracks_new_values() {
        let mut m = tridiag(40);
        let mut f = LdltFactor::new(&m).unwrap();
        let lnz = f.lnz();
        // Strengthen the diagonal in place (pattern unchanged) and refactor.
        let diag_idx: Vec<usize> = m.diag_indices().into_iter().map(Option::unwrap).collect();
        for &k in &diag_idx {
            m.values_mut()[k] = 4.0;
        }
        f.refactor(&m).unwrap();
        assert_eq!(f.lnz(), lnz, "refactor must not change the pattern");
        let x_true: Vec<f64> = (0..40).map(|i| i as f64 * 0.05).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let mut ws = LdltWorkspace::new();
        let mut x = vec![0.0; 40];
        f.solve_into(&b, &mut x, &mut ws).unwrap();
        assert!(vec_ops::max_abs_diff(&x, &x_true) < 1e-10);
    }

    #[test]
    fn refactor_and_solve_are_allocation_free() {
        let m = tridiag(64);
        let mut f = LdltFactor::new(&m).unwrap();
        let b = vec![1.0; 64];
        let mut x = vec![0.0; 64];
        let mut ws = LdltWorkspace::new();
        f.solve_into(&b, &mut x, &mut ws).unwrap();
        let cap = ws.capacity();
        let (li_ptr, lx_ptr) = (f.li.as_ptr(), f.lx.as_ptr());
        for _ in 0..10 {
            f.refactor(&m).unwrap();
            f.solve_into(&b, &mut x, &mut ws).unwrap();
        }
        assert_eq!(ws.capacity(), cap);
        assert_eq!(f.li.as_ptr(), li_ptr, "refactor reallocated L indices");
        assert_eq!(f.lx.as_ptr(), lx_ptr, "refactor reallocated L values");
    }

    #[test]
    fn non_spd_matrix_is_rejected_by_name() {
        // Indefinite: negative diagonal entry.
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 1, -2.0);
        let err = LdltFactor::new(&b.build()).unwrap_err();
        assert!(
            matches!(err, Error::NotPositiveDefinite { index: 1, pivot } if pivot < 0.0),
            "got {err:?}"
        );
        // Indefinite through elimination: off-diagonal dominates.
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 1, 3.0);
        b.add(1, 0, 3.0);
        b.add(1, 1, 1.0);
        let err = LdltFactor::new(&b.build()).unwrap_err();
        assert!(matches!(err, Error::NotPositiveDefinite { .. }), "{err:?}");
        // Structurally missing diagonal is singular, not merely non-SPD.
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 0, 1.0);
        let err = LdltFactor::new(&b.build()).unwrap_err();
        assert!(matches!(err, Error::SingularMatrix { index: 1 }), "{err:?}");
    }

    #[test]
    fn one_by_one_and_disconnected_nodes() {
        // 1×1 system.
        let mut b = TripletBuilder::new(1, 1);
        b.add(0, 0, 4.0);
        let m = b.build();
        let f = LdltFactor::new(&m).unwrap();
        let mut ws = LdltWorkspace::new();
        let mut x = vec![0.0];
        f.solve_into(&[2.0], &mut x, &mut ws).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-15);
        // Grid with a disconnected (diagonal-only) node in the middle.
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 0, 2.0);
        b.add(0, 2, -1.0);
        b.add(2, 0, -1.0);
        b.add(1, 1, 3.0);
        b.add(2, 2, 2.0);
        let m = b.build();
        let f = LdltFactor::new(&m).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let rhs = m.mul_vec(&x_true).unwrap();
        let mut x = vec![0.0; 3];
        f.solve_into(&rhs, &mut x, &mut ws).unwrap();
        assert!(vec_ops::max_abs_diff(&x, &x_true) < 1e-12);
    }

    #[test]
    fn solve_multi_matches_repeated_single_solves() {
        let m = tridiag(20);
        let f = LdltFactor::new(&m).unwrap();
        let mut ws = LdltWorkspace::new();
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut batched = vec![0.0; 60];
        f.solve_multi(&b, &mut batched, &mut ws).unwrap();
        for (bc, xc) in b.chunks_exact(20).zip(batched.chunks_exact(20)) {
            let mut single = vec![0.0; 20];
            f.solve_into(bc, &mut single, &mut ws).unwrap();
            assert_eq!(single.as_slice(), xc);
        }
        assert!(matches!(
            f.solve_multi(&b[..30], &mut batched[..30], &mut ws),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_rejects_different_pattern() {
        let f = LdltFactor::new(&tridiag(10));
        let mut f = f.unwrap();
        assert!(matches!(
            f.refactor(&tridiag(11)),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn backend_parsing_and_names() {
        assert_eq!(SolverBackend::parse("direct"), Some(SolverBackend::Direct));
        assert_eq!(SolverBackend::parse("LDLT"), Some(SolverBackend::Direct));
        assert_eq!(SolverBackend::parse(" cg "), Some(SolverBackend::Cg));
        assert_eq!(
            SolverBackend::parse("gauss-seidel"),
            Some(SolverBackend::GaussSeidel)
        );
        assert_eq!(SolverBackend::parse("auto"), Some(SolverBackend::Auto));
        assert_eq!(SolverBackend::parse("mgcg"), Some(SolverBackend::Mgcg));
        assert_eq!(SolverBackend::parse("Multigrid"), Some(SolverBackend::Mgcg));
        assert_eq!(SolverBackend::parse("nope"), None);
        assert_eq!(SolverBackend::default(), SolverBackend::Auto);
        for b in [
            SolverBackend::Auto,
            SolverBackend::Direct,
            SolverBackend::Cg,
            SolverBackend::Mgcg,
            SolverBackend::GaussSeidel,
        ] {
            assert_eq!(SolverBackend::parse(b.name()), Some(b));
        }
    }
}
