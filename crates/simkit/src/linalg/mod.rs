//! Sparse linear algebra for the thermal RC network and PDN solvers.
//!
//! The thermal model discretises the die into a grid whose conductance
//! matrix is sparse, symmetric, and positive definite; the PDN's grid
//! conductance matrix has the same structure. Two solvers cover both:
//!
//! * [`CsrMatrix::solve_cg`] — conjugate gradient with Jacobi
//!   preconditioning, for steady-state solves;
//! * [`CsrMatrix::solve_gauss_seidel`] — Gauss–Seidel sweeps with optional
//!   successive over-relaxation, for backward-Euler transient steps where
//!   an excellent initial guess (the previous step) is available.
//!
//! Both solvers have workspace-based variants for hot loops that must not
//! allocate: [`CsrMatrix::solve_cg_with`] takes a [`CgWorkspace`] and a
//! pre-built [`JacobiPreconditioner`], and
//! [`CsrMatrix::solve_gauss_seidel_colored`] takes a [`GsWorkspace`]
//! holding a multicolor (red-black on grid stencils) row ordering plus the
//! cached inverse diagonal. Build the workspaces once per matrix, then
//! solve thousands of times with zero heap traffic.
//!
//! For systems that are solved many times with a fixed sparsity pattern —
//! transient thermal stepping, per-domain PDN IR drop, steady-state
//! feedback loops — the [`direct`] submodule adds a dependency-free sparse
//! LDLᵀ factorization ([`LdltFactor`]) with a fill-reducing minimum-degree
//! ordering, a values-only [`LdltFactor::refactor`] fast path, and
//! allocation-free triangular solves. For grids one to two orders of
//! magnitude finer — where Jacobi-CG iteration counts grow with the grid
//! diameter and LDLᵀ fill-in grows superlinearly — the [`multigrid`]
//! submodule adds a geometric multigrid V-cycle preconditioner
//! ([`MultigridPreconditioner`]) whose iteration counts are essentially
//! grid-size independent; CG is generic over the [`Preconditioner`]
//! trait, so both preconditioners share one solver. [`SolverBackend`]
//! names the solver families so higher layers (thermal, PDN, engine
//! configs) can select one or defer to the break-even
//! [`SolverBackend::Auto`] policy.

pub mod direct;
pub mod multigrid;

pub use direct::{LdltFactor, LdltWorkspace, SolverBackend, DIRECT_BREAK_EVEN};
pub use multigrid::{GridGeometry, MultigridPreconditioner};

use crate::error::{Error, Result};

/// Convergence statistics of one iterative solve.
///
/// Every solver in this module returns one of these on success, and the
/// failure paths embed the same numbers in [`Error::NonConverged`] — no
/// more `NaN` placeholders. `residual` is the **relative** residual
/// `‖b − A·x‖₂ / ‖b‖₂` at exit, so values are comparable across solves
/// of different scales.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Iterations (CG) or sweeps (Gauss–Seidel) performed.
    pub iterations: usize,
    /// Relative residual `‖b − A·x‖₂ / ‖b‖₂` at exit.
    pub residual: f64,
}

/// Dense vector helpers used by the solvers.
pub mod vec_ops {
    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when lengths differ.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Euclidean norm.
    pub fn norm(a: &[f64]) -> f64 {
        dot(a, a).sqrt()
    }

    /// `y ← y + alpha·x`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when lengths differ.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Maximum absolute difference between two vectors.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when lengths differ.
    pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// Builder that accumulates `(row, col, value)` triplets; duplicate
/// coordinates are summed, which makes assembling finite-difference
/// stencils convenient.
///
/// # Examples
///
/// ```
/// use simkit::linalg::TripletBuilder;
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.add(0, 0, 2.0);
/// b.add(0, 0, 1.0); // accumulates to 3.0
/// b.add(1, 1, 4.0);
/// let m = b.build();
/// assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for an `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; repeated coordinates accumulate.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "triplet out of bounds");
        self.entries.push((row, col, value));
    }

    /// Assembles the CSR matrix.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);
        let mut current_row = 0;
        // After sorting, duplicates are adjacent: an entry merges into its
        // predecessor exactly when both share the same (row, col). Tracking
        // that coordinate directly is the whole invariant — no need to
        // reverse-engineer it from row_ptr/col_idx state.
        let mut last_coord = None;
        for (r, c, v) in self.entries {
            if last_coord == Some((r, c)) {
                *values.last_mut().expect("duplicate follows an entry") += v;
                continue;
            }
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            col_idx.push(c);
            values.push(v);
            last_coord = Some((r, c));
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 1.0);
        }
        b.build()
    }

    /// Value at `(row, col)`; zero when the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let range = self.row_ptr[row]..self.row_ptr[row + 1];
        for k in range {
            if self.col_idx[k] == col {
                return self.values[k];
            }
        }
        0.0
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(Error::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        Ok(y)
    }

    /// Matrix-vector product writing into a caller-provided buffer
    /// (avoids allocation inside solver loops).
    ///
    /// Each row's gather runs in four independent accumulator lanes
    /// (4-wide blocking over the row's entries) so the autovectorizer can
    /// keep the multiply-adds in SIMD registers instead of serialising
    /// them through one scalar dependency chain; the remainder entries
    /// (< 4) fall back to a scalar tail. Summation order therefore
    /// differs from the naive loop by round-off only.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when dimensions do not match.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        for (row, out) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[row];
            let hi = self.row_ptr[row + 1];
            let vals = &self.values[lo..hi];
            let cols = &self.col_idx[lo..hi];
            let mut vc = vals.chunks_exact(4);
            let mut cc = cols.chunks_exact(4);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
            for (v, c) in vc.by_ref().zip(cc.by_ref()) {
                a0 += v[0] * x[c[0]];
                a1 += v[1] * x[c[1]];
                a2 += v[2] * x[c[2]];
                a3 += v[3] * x[c[3]];
            }
            let mut acc = (a0 + a2) + (a1 + a3);
            for (v, &c) in vc.remainder().iter().zip(cc.remainder()) {
                acc += v * x[c];
            }
            *out = acc;
        }
    }

    /// Matrix product `self · other`, assembled row-by-row with a dense
    /// accumulator (classic CSR SpGEMM). Used to form the Galerkin coarse
    /// operators `R·A·P` of the [`multigrid`] hierarchy; exact zeros that
    /// arise from cancellation are kept so the product's pattern is
    /// reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `self.cols != other.rows`.
    pub fn multiply(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.cols != other.rows {
            return Err(Error::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let m = other.cols;
        let mut acc = vec![0.0f64; m];
        // Per-row membership marker: `mark[col] == row` iff `col` is
        // already in `touched` for the current row. O(1) insert test.
        let mut mark = vec![usize::MAX; m];
        let mut touched: Vec<usize> = Vec::new();
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in 0..self.rows {
            touched.clear();
            for ka in self.row_ptr[row]..self.row_ptr[row + 1] {
                let a = self.values[ka];
                let mid = self.col_idx[ka];
                for kb in other.row_ptr[mid]..other.row_ptr[mid + 1] {
                    let col = other.col_idx[kb];
                    if mark[col] != row {
                        mark[col] = row;
                        touched.push(col);
                    }
                    acc[col] += a * other.values[kb];
                }
            }
            touched.sort_unstable();
            for &col in &touched {
                col_idx.push(col);
                values.push(acc[col]);
                acc[col] = 0.0;
            }
            row_ptr.push(col_idx.len());
        }
        Ok(CsrMatrix {
            rows: self.rows,
            cols: m,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// The transpose, as a new CSR matrix (one counting pass plus one
    /// scatter pass; entries stay sorted per row).
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for row in 0..self.rows {
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                let c = self.col_idx[k];
                col_idx[cursor[c]] = row;
                values[cursor[c]] = self.values[k];
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Iterates the stored `(column, value)` entries of one row.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row out of bounds");
        let range = self.row_ptr[row]..self.row_ptr[row + 1];
        range.map(move |k| (self.col_idx[k], self.values[k]))
    }

    /// Iterates every stored `(row, column, value)` entry.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows)
            .flat_map(move |row| self.row_entries(row).map(move |(col, val)| (row, col, val)))
    }

    /// Extracts the diagonal in one pass over the stored entries (no
    /// per-row `get` scan).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        let mut diag = vec![0.0; n];
        for (i, d) in diag.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    *d = self.values[k];
                    break;
                }
            }
        }
        diag
    }

    /// Index into [`CsrMatrix::values`] of each diagonal entry, computed
    /// in one pass; `None` where the pattern stores no diagonal.
    ///
    /// Callers that repeatedly need the diagonal of a matrix whose values
    /// change but whose pattern is fixed (the Jacobi preconditioner, the
    /// LDLᵀ pivot check) cache these indices once and gather in O(n)
    /// afterwards.
    pub fn diag_indices(&self) -> Vec<Option<usize>> {
        let n = self.rows.min(self.cols);
        let mut idx = vec![None; n];
        for (i, slot) in idx.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    *slot = Some(k);
                    break;
                }
            }
        }
        idx
    }

    /// Whether `cached` are valid diagonal entry indices for this matrix:
    /// `cached[i]` must point at a stored entry `(i, i)`. O(n).
    fn diag_indices_valid(&self, cached: &[usize]) -> bool {
        let n = self.rows.min(self.cols);
        cached.len() == n
            && cached.iter().enumerate().all(|(i, &k)| {
                k >= self.row_ptr[i] && k < self.row_ptr[i + 1] && self.col_idx[k] == i
            })
    }

    /// The stored values, in row-major CSR order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (the sparsity pattern is fixed).
    ///
    /// Callers that cache an assembled matrix and patch a few entries per
    /// solve (e.g. the PDN's per-configuration regulator conductances) use
    /// this together with [`CsrMatrix::entry_index`] to avoid re-assembly.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Index into [`CsrMatrix::values`] of the stored entry at
    /// `(row, col)`, or `None` when the pattern has no such entry.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    pub fn entry_index(&self, row: usize, col: usize) -> Option<usize> {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        (self.row_ptr[row]..self.row_ptr[row + 1]).find(|&k| self.col_idx[k] == col)
    }

    /// Solves `A·x = b` by preconditioned conjugate gradient. `A` must be
    /// symmetric positive definite (true for grid conductance matrices with
    /// a grounding/ambient connection on every diagonal).
    ///
    /// `x0` seeds the iteration when provided.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] — `b` length differs from `rows`;
    /// * [`Error::SingularMatrix`] — a zero diagonal entry defeats the
    ///   Jacobi preconditioner;
    /// * [`Error::NonConverged`] — tolerance not met in `max_iter`.
    pub fn solve_cg(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
        tolerance: f64,
        max_iter: usize,
    ) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(Error::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let pre = JacobiPreconditioner::new(self)?;
        let mut ws = CgWorkspace::new();
        let mut x = match x0 {
            Some(seed) if seed.len() == self.rows => seed.to_vec(),
            _ => vec![0.0; self.rows],
        };
        self.solve_cg_with(b, &mut x, &pre, &mut ws, tolerance, max_iter)?;
        Ok(x)
    }

    /// Allocation-free preconditioned conjugate gradient: `x` carries the
    /// initial guess in and the solution out, the preconditioner is built
    /// once per matrix, and all scratch vectors live in `ws` (grown on
    /// first use, reused afterwards). Returns the iteration count and
    /// final relative residual as [`SolveStats`].
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] — `b`, `x`, or the preconditioner
    ///   does not match `rows`;
    /// * [`Error::NonConverged`] — tolerance not met in `max_iter`.
    pub fn solve_cg_with<P: Preconditioner + ?Sized>(
        &self,
        b: &[f64],
        x: &mut [f64],
        pre: &P,
        ws: &mut CgWorkspace,
        tolerance: f64,
        max_iter: usize,
    ) -> Result<SolveStats> {
        let n = self.rows;
        for len in [b.len(), x.len(), pre.dim()] {
            if len != n {
                return Err(Error::DimensionMismatch {
                    expected: n,
                    actual: len,
                });
            }
        }
        ws.ensure(n);
        let CgWorkspace { r, z, p, ap } = ws;
        self.mul_vec_into(x, r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let b_norm = vec_ops::norm(b).max(f64::MIN_POSITIVE);
        let initial_rel = vec_ops::norm(r) / b_norm;
        if initial_rel <= tolerance {
            return Ok(SolveStats {
                iterations: 0,
                residual: initial_rel,
            });
        }
        pre.apply_into(r, z);
        p.copy_from_slice(z);
        let mut rz = vec_ops::dot(r, z);
        for iteration in 0..max_iter {
            self.mul_vec_into(p, ap);
            let denom = vec_ops::dot(p, ap);
            if denom.abs() < f64::MIN_POSITIVE {
                return Err(Error::NonConverged {
                    iterations: iteration,
                    residual: vec_ops::norm(r) / b_norm,
                });
            }
            let alpha = rz / denom;
            vec_ops::axpy(alpha, p, x);
            vec_ops::axpy(-alpha, ap, r);
            let rel = vec_ops::norm(r) / b_norm;
            if rel <= tolerance {
                return Ok(SolveStats {
                    iterations: iteration + 1,
                    residual: rel,
                });
            }
            pre.apply_into(r, z);
            let rz_new = vec_ops::dot(r, z);
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        Err(Error::NonConverged {
            iterations: max_iter,
            residual: vec_ops::norm(r) / b_norm,
        })
    }

    /// Relative residual `‖b − A·x‖₂ / ‖b‖₂` of a candidate solution,
    /// computed in one pass over the matrix with no allocation (scalar
    /// accumulators only) — cheap enough for the transient hot loop,
    /// where it costs about one extra Gauss–Seidel sweep.
    pub fn relative_residual(&self, b: &[f64], x: &[f64]) -> f64 {
        debug_assert_eq!(b.len(), self.rows);
        debug_assert_eq!(x.len(), self.rows);
        let mut num_sq = 0.0;
        let mut den_sq = 0.0;
        for (row, &b_row) in b.iter().enumerate().take(self.rows) {
            let mut ax = 0.0;
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                ax += self.values[k] * x[self.col_idx[k]];
            }
            let r = b_row - ax;
            num_sq += r * r;
            den_sq += b_row * b_row;
        }
        num_sq.sqrt() / den_sq.sqrt().max(f64::MIN_POSITIVE)
    }

    /// Solves `A·x = b` in place by Gauss–Seidel sweeps with relaxation
    /// factor `omega` (1.0 = plain Gauss–Seidel; 1 < ω < 2 = SOR).
    /// Converges for the diagonally dominant matrices our grids produce and
    /// is very fast when `x` starts near the solution. The returned
    /// [`SolveStats`] carry the true final relative residual (one extra
    /// matrix pass), not the update norm the sweep loop tests against.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] — vector lengths differ from `rows`;
    /// * [`Error::SingularMatrix`] — zero diagonal entry;
    /// * [`Error::NonConverged`] — update norm still above `tolerance`
    ///   after `max_sweeps`.
    pub fn solve_gauss_seidel(
        &self,
        b: &[f64],
        x: &mut [f64],
        omega: f64,
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<SolveStats> {
        if b.len() != self.rows {
            return Err(Error::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        if x.len() != self.rows {
            return Err(Error::DimensionMismatch {
                expected: self.rows,
                actual: x.len(),
            });
        }
        for sweep in 0..max_sweeps {
            let mut max_update = 0.0f64;
            for row in 0..self.rows {
                let mut sigma = 0.0;
                let mut diag = 0.0;
                for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                    let col = self.col_idx[k];
                    if col == row {
                        diag = self.values[k];
                    } else {
                        sigma += self.values[k] * x[col];
                    }
                }
                if diag == 0.0 {
                    return Err(Error::SingularMatrix { index: row });
                }
                let gs = (b[row] - sigma) / diag;
                let new = (1.0 - omega) * x[row] + omega * gs;
                max_update = max_update.max((new - x[row]).abs());
                x[row] = new;
            }
            if max_update <= tolerance {
                return Ok(SolveStats {
                    iterations: sweep + 1,
                    residual: self.relative_residual(b, x),
                });
            }
        }
        Err(Error::NonConverged {
            iterations: max_sweeps,
            residual: self.relative_residual(b, x),
        })
    }

    /// Gauss–Seidel sweeps in multicolor (red-black on grid stencils)
    /// order, using the row ordering and cached inverse diagonal in `ws`.
    ///
    /// Same contract as [`CsrMatrix::solve_gauss_seidel`], with two
    /// differences that matter in hot loops: the diagonal is not searched
    /// for (or divided by) per row per sweep, and rows of equal color have
    /// no data dependence, so the sweep order is cache-friendly and
    /// deterministic regardless of how the matrix was assembled. Converges
    /// to the same fixed point as the natural ordering; the iterates along
    /// the way differ, so compare solutions, not sweep counts.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] — vector or workspace length differs
    ///   from `rows`;
    /// * [`Error::NonConverged`] — update norm still above `tolerance`
    ///   after `max_sweeps`.
    pub fn solve_gauss_seidel_colored(
        &self,
        b: &[f64],
        x: &mut [f64],
        ws: &GsWorkspace,
        omega: f64,
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<SolveStats> {
        for len in [b.len(), x.len(), ws.len()] {
            if len != self.rows {
                return Err(Error::DimensionMismatch {
                    expected: self.rows,
                    actual: len,
                });
            }
        }
        for sweep in 0..max_sweeps {
            let mut max_update = 0.0f64;
            for &row in &ws.order {
                // Accumulate the full row product, then cancel the
                // diagonal term instead of branching on `col == row`.
                let mut sigma = 0.0;
                for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                    sigma += self.values[k] * x[self.col_idx[k]];
                }
                sigma -= ws.diag[row] * x[row];
                let gs = (b[row] - sigma) * ws.inv_diag[row];
                let new = (1.0 - omega) * x[row] + omega * gs;
                max_update = max_update.max((new - x[row]).abs());
                x[row] = new;
            }
            if max_update <= tolerance {
                return Ok(SolveStats {
                    iterations: sweep + 1,
                    residual: self.relative_residual(b, x),
                });
            }
        }
        Err(Error::NonConverged {
            iterations: max_sweeps,
            residual: self.relative_residual(b, x),
        })
    }
}

/// A symmetric-positive-definite preconditioner `M ≈ A` applied as
/// `z ← M⁻¹·r` inside [`CsrMatrix::solve_cg_with`].
///
/// CG is generic over this trait: [`JacobiPreconditioner`] (diagonal
/// scaling) and [`multigrid::MultigridPreconditioner`] (one geometric
/// V-cycle) both implement it, so every CG call site picks its
/// preconditioner without touching the solver. Implementations must be
/// linear, symmetric, and positive definite in exact arithmetic or CG's
/// convergence theory (and in practice its monotone residual) breaks.
pub trait Preconditioner {
    /// Dimension of the system the preconditioner was built for.
    fn dim(&self) -> usize;

    /// `z ← M⁻¹·r`.
    ///
    /// # Panics
    ///
    /// May panic (at least in debug builds) when `r` or `z` length
    /// differs from [`Preconditioner::dim`].
    fn apply_into(&self, r: &[f64], z: &mut [f64]);
}

impl Preconditioner for JacobiPreconditioner {
    fn dim(&self) -> usize {
        self.len()
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        JacobiPreconditioner::apply_into(self, r, z);
    }
}

/// Inverse diagonal of a matrix, computed once and applied per CG
/// iteration — the Jacobi preconditioner `M⁻¹ = diag(A)⁻¹`.
///
/// `Default` gives an empty (zero-dimensional) preconditioner, useful as
/// a scratch slot that is [`update`](JacobiPreconditioner::update)d before
/// each solve when the matrix values change between calls.
#[derive(Debug, Clone, Default)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
    /// Cached indices into the matrix value array of the diagonal
    /// entries, so repeated [`update`](JacobiPreconditioner::update)s
    /// against a fixed-pattern matrix gather in O(n) instead of
    /// re-scanning every row.
    diag_idx: Vec<usize>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the matrix diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] on a zero diagonal entry.
    pub fn new(matrix: &CsrMatrix) -> Result<Self> {
        let mut pre = JacobiPreconditioner::default();
        pre.update(matrix)?;
        Ok(pre)
    }

    /// Recomputes the inverse diagonal from `matrix`, reusing the buffer
    /// (no allocation once sized). The first call against a pattern scans
    /// the rows once to cache the diagonal entry indices; later calls
    /// against the same pattern (the common case: a cached matrix whose
    /// values are patched between solves) validate the cache and gather
    /// in O(n).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] on a missing or zero diagonal
    /// entry.
    pub fn update(&mut self, matrix: &CsrMatrix) -> Result<()> {
        let n = matrix.rows().min(matrix.cols());
        if !matrix.diag_indices_valid(&self.diag_idx) {
            self.diag_idx.clear();
            self.diag_idx.reserve(n);
            for (i, slot) in matrix.diag_indices().into_iter().enumerate() {
                match slot {
                    Some(k) => self.diag_idx.push(k),
                    None => return Err(Error::SingularMatrix { index: i }),
                }
            }
        }
        self.inv_diag.resize(n, 0.0);
        for i in 0..n {
            let d = matrix.values[self.diag_idx[i]];
            if d == 0.0 {
                return Err(Error::SingularMatrix { index: i });
            }
            self.inv_diag[i] = 1.0 / d;
        }
        Ok(())
    }

    /// Dimension the preconditioner was built for.
    pub fn len(&self) -> usize {
        self.inv_diag.len()
    }

    /// Whether the preconditioner is empty (zero-dimensional).
    pub fn is_empty(&self) -> bool {
        self.inv_diag.is_empty()
    }

    /// `z ← M⁻¹·r`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when lengths differ.
    pub fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.inv_diag.len());
        debug_assert_eq!(z.len(), self.inv_diag.len());
        for i in 0..self.inv_diag.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }
}

/// Reusable scratch vectors for [`CsrMatrix::solve_cg_with`]. Grown on
/// first use and never shrunk, so a workspace threaded through a solve
/// loop allocates only once.
#[derive(Debug, Clone, Default)]
pub struct CgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgWorkspace {
    /// An empty workspace; buffers are sized on first solve.
    pub fn new() -> Self {
        CgWorkspace::default()
    }

    /// A workspace pre-sized for `n`-row systems.
    pub fn with_size(n: usize) -> Self {
        let mut ws = CgWorkspace::default();
        ws.ensure(n);
        ws
    }

    fn ensure(&mut self, n: usize) {
        for buf in [&mut self.r, &mut self.z, &mut self.p, &mut self.ap] {
            buf.resize(n, 0.0);
        }
    }

    /// Smallest capacity across the scratch buffers — stable across
    /// repeated same-size solves, which is how tests pin down the
    /// zero-allocation property.
    pub fn min_capacity(&self) -> usize {
        self.r
            .capacity()
            .min(self.z.capacity())
            .min(self.p.capacity())
            .min(self.ap.capacity())
    }
}

/// Precomputed row ordering and diagonal data for
/// [`CsrMatrix::solve_gauss_seidel_colored`]: a greedy multicoloring of
/// the matrix graph (two colors — red-black — on grid stencils, one more
/// for dense coupling rows like a heat-sink node) plus the diagonal and
/// its inverse. Build once per matrix, reuse for every solve.
#[derive(Debug, Clone)]
pub struct GsWorkspace {
    order: Vec<usize>,
    color_ptr: Vec<usize>,
    diag: Vec<f64>,
    inv_diag: Vec<f64>,
}

impl GsWorkspace {
    /// Colors the matrix graph and caches the diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] on a zero diagonal entry.
    pub fn new(matrix: &CsrMatrix) -> Result<Self> {
        let n = matrix.rows();
        let diag = matrix.diagonal();
        if let Some(i) = diag.iter().position(|&d| d == 0.0) {
            return Err(Error::SingularMatrix { index: i });
        }
        // Greedy sequential coloring: each row takes the smallest color
        // not used by an already-colored neighbor. Grid stencils come out
        // checkerboard (2 colors); irregular rows add at most a few more.
        let mut color = vec![usize::MAX; n];
        let mut n_colors = 0;
        let mut used = Vec::new();
        for row in 0..n {
            used.clear();
            used.resize(n_colors, false);
            for (col, _) in matrix.row_entries(row) {
                if col != row && color[col] != usize::MAX {
                    used[color[col]] = true;
                }
            }
            let c = used.iter().position(|&u| !u).unwrap_or(n_colors);
            if c == n_colors {
                n_colors += 1;
            }
            color[row] = c;
        }
        let mut color_ptr = vec![0usize; n_colors + 1];
        for &c in &color {
            color_ptr[c + 1] += 1;
        }
        for c in 0..n_colors {
            color_ptr[c + 1] += color_ptr[c];
        }
        let mut cursor = color_ptr.clone();
        let mut order = vec![0usize; n];
        for (row, &c) in color.iter().enumerate() {
            order[cursor[c]] = row;
            cursor[c] += 1;
        }
        Ok(GsWorkspace {
            order,
            color_ptr,
            diag: diag.clone(),
            inv_diag: diag.into_iter().map(|d| 1.0 / d).collect(),
        })
    }

    /// Dimension the workspace was built for.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the workspace is empty (zero-dimensional).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of colors in the ordering (2 for pure grid stencils).
    pub fn color_count(&self) -> usize {
        self.color_ptr.len() - 1
    }

    /// Rows of one color — mutually independent under Gauss–Seidel.
    ///
    /// # Panics
    ///
    /// Panics when `color >= color_count()`.
    pub fn color_rows(&self, color: usize) -> &[usize] {
        &self.order[self.color_ptr[color]..self.color_ptr[color + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small SPD matrix: tridiagonal [−1, 2.5, −1].
    fn tridiag(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.5);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn triplets_accumulate_duplicates() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 1, 1.5);
        b.add(0, 1, 0.5);
        b.add(1, 0, -1.0);
        let m = b.build();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn identity_mul_is_noop() {
        let m = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.mul_vec(&x).unwrap(), x);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = tridiag(3);
        // [2.5 -1 0; -1 2.5 -1; 0 -1 2.5] * [1 2 3] = [0.5, 1.0, 5.5]
        let y = m.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert!((y[0] - 0.5).abs() < 1e-12);
        assert!((y[1] - 1.0).abs() < 1e-12);
        assert!((y[2] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_rejects_wrong_length() {
        let m = tridiag(3);
        assert!(matches!(
            m.mul_vec(&[1.0]),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cg_solves_spd_system() {
        let n = 50;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let x = m.solve_cg(&b, None, 1e-12, 1000).unwrap();
        assert!(vec_ops::max_abs_diff(&x, &x_true) < 1e-8);
    }

    #[test]
    fn cg_uses_initial_guess() {
        let n = 30;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b = m.mul_vec(&x_true).unwrap();
        // Exact initial guess converges immediately.
        let x = m.solve_cg(&b, Some(&x_true), 1e-10, 1).unwrap();
        assert!(vec_ops::max_abs_diff(&x, &x_true) < 1e-9);
    }

    #[test]
    fn cg_detects_zero_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        // Row 1 has no diagonal entry.
        b.add(1, 0, 1.0);
        let m = b.build();
        assert!(matches!(
            m.solve_cg(&[1.0, 1.0], None, 1e-10, 10),
            Err(Error::SingularMatrix { index: 1 })
        ));
    }

    #[test]
    fn cg_reports_non_convergence() {
        let m = tridiag(100);
        let b = vec![1.0; 100];
        let err = m.solve_cg(&b, None, 1e-15, 1).unwrap_err();
        assert!(matches!(err, Error::NonConverged { .. }));
    }

    #[test]
    fn gs_non_convergence_reports_real_residual() {
        // Starved of sweeps, both GS variants must still report the true
        // relative residual of the iterate they stopped at — not NaN.
        let n = 60;
        let m = tridiag(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let err = m.solve_gauss_seidel(&b, &mut x, 1.0, 1e-15, 1).unwrap_err();
        let expected = m.relative_residual(&b, &x);
        match err {
            Error::NonConverged {
                iterations,
                residual,
            } => {
                assert_eq!(iterations, 1);
                assert!(residual.is_finite(), "plain GS residual is NaN");
                assert!((residual - expected).abs() < 1e-12);
            }
            other => panic!("unexpected error {other:?}"),
        }
        let ws = GsWorkspace::new(&m).unwrap();
        let mut x = vec![0.0; n];
        let err = m
            .solve_gauss_seidel_colored(&b, &mut x, &ws, 1.0, 1e-15, 1)
            .unwrap_err();
        match err {
            Error::NonConverged { residual, .. } => {
                assert!(residual.is_finite(), "colored GS residual is NaN");
                assert!(residual > 0.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn relative_residual_matches_definition() {
        let n = 10;
        let m = tridiag(n);
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let b = vec![1.0; n];
        let ax = m.mul_vec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, yi)| bi - yi).collect();
        let expected = vec_ops::norm(&r) / vec_ops::norm(&b);
        assert!((m.relative_residual(&b, &x) - expected).abs() < 1e-14);
        // An exact solution has (near-)zero residual.
        let exact = m.solve_cg(&b, None, 1e-14, 1000).unwrap();
        assert!(m.relative_residual(&b, &exact) < 1e-12);
    }

    #[test]
    fn gauss_seidel_solves_diagonally_dominant() {
        let n = 40;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let mut x = vec![0.0; n];
        let stats = m
            .solve_gauss_seidel(&b, &mut x, 1.0, 1e-12, 10_000)
            .unwrap();
        assert!(stats.iterations > 0);
        assert!(
            stats.residual.is_finite() && stats.residual < 1e-8,
            "GS must report a real final residual, got {}",
            stats.residual
        );
        assert!(vec_ops::max_abs_diff(&x, &x_true) < 1e-8);
    }

    #[test]
    fn sor_converges_faster_than_gs() {
        // 1-D Laplacian [-1, 2, -1]: Gauss–Seidel is slow, SOR with a
        // near-optimal relaxation factor is dramatically faster.
        let n = 60;
        let mut builder = TripletBuilder::new(n, n);
        for i in 0..n {
            builder.add(i, i, 2.0);
            if i > 0 {
                builder.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                builder.add(i, i + 1, -1.0);
            }
        }
        let m = builder.build();
        let b = vec![1.0; n];
        let omega_opt = 2.0 / (1.0 + (std::f64::consts::PI / (n as f64 + 1.0)).sin());
        let mut x_gs = vec![0.0; n];
        let mut x_sor = vec![0.0; n];
        let gs = m
            .solve_gauss_seidel(&b, &mut x_gs, 1.0, 1e-8, 1_000_000)
            .unwrap()
            .iterations;
        let sor = m
            .solve_gauss_seidel(&b, &mut x_sor, omega_opt, 1e-8, 1_000_000)
            .unwrap()
            .iterations;
        assert!(sor < gs, "SOR {sor} sweeps vs GS {gs}");
        assert!(vec_ops::max_abs_diff(&x_gs, &x_sor) < 1e-4);
    }

    #[test]
    fn gauss_seidel_warm_start_is_cheap() {
        let n = 40;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let mut x = x_true.clone();
        let sweeps = m
            .solve_gauss_seidel(&b, &mut x, 1.0, 1e-12, 100)
            .unwrap()
            .iterations;
        assert!(sweeps <= 2, "warm start took {sweeps} sweeps");
    }

    #[test]
    fn vec_ops_behave() {
        assert_eq!(vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((vec_ops::norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut y = vec![1.0, 1.0];
        vec_ops::axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert_eq!(vec_ops::max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 0, 1.0);
        b.add(2, 2, 1.0);
        let m = b.build();
        let y = m.mul_vec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }

    /// Property test for the satellite audit of `TripletBuilder::build`:
    /// random matrices with many duplicate coordinates (including runs
    /// that straddle row boundaries) must match a dense reference that
    /// accumulates the same triplets.
    #[test]
    fn triplet_assembly_matches_dense_reference() {
        let mut rng = crate::DeterministicRng::new(0xB001);
        for case in 0..64 {
            let rows = 1 + rng.uniform_usize(8);
            let cols = 1 + rng.uniform_usize(8);
            let n_triplets = rng.uniform_usize(40);
            let mut dense = vec![vec![0.0f64; cols]; rows];
            let mut b = TripletBuilder::new(rows, cols);
            for _ in 0..n_triplets {
                let r = rng.uniform_usize(rows);
                let c = rng.uniform_usize(cols);
                let v = rng.uniform_range(-2.0, 2.0);
                // Half the time, add the same coordinate again to force
                // duplicate accumulation.
                let repeats = 1 + rng.uniform_usize(3);
                for _ in 0..repeats {
                    dense[r][c] += v;
                    b.add(r, c, v);
                }
            }
            let m = b.build();
            for (r, dense_row) in dense.iter().enumerate() {
                for (c, &want) in dense_row.iter().enumerate() {
                    let got = m.get(r, c);
                    assert!(
                        (got - want).abs() < 1e-12,
                        "case {case}: ({r},{c}) got {got}, want {want}"
                    );
                }
            }
            // No duplicate coordinates may survive assembly.
            for r in 0..rows {
                let cols_of_row: Vec<usize> = m.row_entries(r).map(|(c, _)| c).collect();
                let mut sorted = cols_of_row.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(
                    sorted.len(),
                    cols_of_row.len(),
                    "case {case}: row {r} has dups"
                );
            }
        }
    }

    #[test]
    fn duplicates_at_row_boundaries_do_not_merge_across_rows() {
        // Same column, adjacent rows, added back-to-back: the old code's
        // `row_ptr[r] < col_idx.len()` guard existed exactly for this.
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 2, 1.0);
        b.add(1, 2, 10.0);
        b.add(1, 2, 10.0);
        b.add(2, 2, 100.0);
        let m = b.build();
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(1, 2), 20.0);
        assert_eq!(m.get(2, 2), 100.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn entry_index_round_trips_with_values_mut() {
        let mut m = tridiag(4);
        let k = m.entry_index(2, 1).unwrap();
        assert_eq!(m.values()[k], -1.0);
        m.values_mut()[k] = -3.0;
        assert_eq!(m.get(2, 1), -3.0);
        assert_eq!(m.entry_index(0, 3), None);
    }

    #[test]
    fn workspace_cg_matches_allocating_cg() {
        let n = 50;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let baseline = m.solve_cg(&b, None, 1e-13, 1000).unwrap();
        let pre = JacobiPreconditioner::new(&m).unwrap();
        let mut ws = CgWorkspace::new();
        let mut x = vec![0.0; n];
        let stats = m
            .solve_cg_with(&b, &mut x, &pre, &mut ws, 1e-13, 1000)
            .unwrap();
        assert!(stats.iterations > 0);
        assert!(stats.residual.is_finite() && stats.residual <= 1e-13);
        assert!(vec_ops::max_abs_diff(&x, &baseline) < 1e-12);
    }

    #[test]
    fn workspace_cg_capacity_is_stable_across_solves() {
        let n = 60;
        let m = tridiag(n);
        let b = vec![1.0; n];
        let pre = JacobiPreconditioner::new(&m).unwrap();
        let mut ws = CgWorkspace::new();
        let mut x = vec![0.0; n];
        m.solve_cg_with(&b, &mut x, &pre, &mut ws, 1e-12, 1000)
            .unwrap();
        let cap = ws.min_capacity();
        assert!(cap >= n);
        for _ in 0..10 {
            x.iter_mut().for_each(|v| *v = 0.0);
            m.solve_cg_with(&b, &mut x, &pre, &mut ws, 1e-12, 1000)
                .unwrap();
            assert_eq!(ws.min_capacity(), cap);
        }
    }

    #[test]
    fn colored_gs_matches_plain_gs() {
        let n = 40;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let mut x_plain = vec![0.0; n];
        m.solve_gauss_seidel(&b, &mut x_plain, 1.0, 1e-14, 100_000)
            .unwrap();
        let ws = GsWorkspace::new(&m).unwrap();
        let mut x_colored = vec![0.0; n];
        let stats = m
            .solve_gauss_seidel_colored(&b, &mut x_colored, &ws, 1.0, 1e-14, 100_000)
            .unwrap();
        assert!(stats.iterations > 0);
        assert!(stats.residual.is_finite(), "colored GS residual is NaN");
        assert!(vec_ops::max_abs_diff(&x_colored, &x_plain) < 1e-12);
        assert!(vec_ops::max_abs_diff(&x_colored, &x_true) < 1e-10);
    }

    #[test]
    fn coloring_is_a_proper_coloring() {
        // A 2-D 5-point Laplacian plus one "sink" row coupled to every
        // node — the same shape as the thermal conductance matrix.
        let (nx, ny) = (6, 5);
        let n = nx * ny + 1;
        let sink = nx * ny;
        let mut b = TripletBuilder::new(n, n);
        for j in 0..ny {
            for i in 0..nx {
                let at = j * nx + i;
                b.add(at, at, 4.5);
                let mut couple = |other: usize| {
                    b.add(at, other, -1.0);
                };
                if i > 0 {
                    couple(at - 1);
                }
                if i + 1 < nx {
                    couple(at + 1);
                }
                if j > 0 {
                    couple(at - nx);
                }
                if j + 1 < ny {
                    couple(at + nx);
                }
                b.add(at, sink, -0.1);
                b.add(sink, at, -0.1);
            }
        }
        b.add(sink, sink, 0.1 * (nx * ny) as f64 + 1.0);
        let m = b.build();
        let ws = GsWorkspace::new(&m).unwrap();
        // Grid part is red-black; the dense sink row forces a third color.
        assert_eq!(ws.color_count(), 3);
        assert_eq!(ws.len(), n);
        // Proper coloring: no two coupled rows share a color.
        for color in 0..ws.color_count() {
            let rows = ws.color_rows(color);
            for &row in rows {
                for (col, _) in m.row_entries(row) {
                    if col != row {
                        assert!(
                            !rows.contains(&col),
                            "rows {row} and {col} are coupled but share color {color}"
                        );
                    }
                }
            }
        }
        // The ordering is a permutation of 0..n.
        let mut seen = vec![false; n];
        for c in 0..ws.color_count() {
            for &row in ws.color_rows(c) {
                assert!(!seen[row]);
                seen[row] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gs_workspace_rejects_zero_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(1, 0, 1.0);
        let m = b.build();
        assert!(matches!(
            GsWorkspace::new(&m),
            Err(Error::SingularMatrix { index: 1 })
        ));
    }
}
