//! Geometric multigrid V-cycle preconditioning for grid conductance
//! systems.
//!
//! Jacobi-preconditioned CG needs `O(grid diameter)` iterations on the
//! thermal / PDN Laplacians, and the min-degree LDLᵀ factorization's
//! fill-in grows superlinearly with grid resolution — both break down on
//! grids one to two orders of magnitude finer than the paper's configs.
//! A geometric multigrid V-cycle fixes the iteration growth: damped
//! Jacobi smoothing kills the high-frequency error on each level, and a
//! 2:1-coarsened hierarchy of Galerkin operators `Aᶜ = R·A·P` handles
//! the smooth remainder, so one V-cycle contracts the error by a
//! grid-size-independent factor. Used as the [`Preconditioner`] of
//! [`CsrMatrix::solve_cg_with`], it turns the hundreds-of-iterations
//! fine-grid solves into 10–20 iterations regardless of resolution
//! (measured — BENCH.md).
//!
//! The hierarchy is *geometric*, derived from a [`GridGeometry`]
//! describing how the matrix rows map onto stacked `nx × ny` grid layers
//! (thermal: silicon + spreader layers plus one heat-sink node; PDN: one
//! sheet layer). Each layer coarsens independently by 2:1 box
//! coarsening with bilinear interpolation; irregular `extra` nodes (the
//! heat sink) survive on every level untouched and are handled exactly
//! by the bottom-level LDLᵀ solve, which reuses [`direct`](super::direct)
//! with its hub-aware min-degree ordering.
//!
//! The V-cycle is V(1,1) — one damped-Jacobi pre-smooth (from a zero
//! initial guess, so it reduces to one scaled copy), one post-smooth —
//! which keeps the preconditioner symmetric positive definite as CG
//! requires. All smoothing and residual passes run through the blocked
//! [`CsrMatrix::mul_vec_into`] SpMV kernel.

use super::direct::{LdltFactor, LdltWorkspace};
use super::{CsrMatrix, Preconditioner, TripletBuilder};
use crate::error::{Error, Result};
use std::sync::Mutex;

/// Damped-Jacobi smoothing factor. `4/5` is the classic choice that
/// minimises the smoothing factor of the 2D 5-point stencil; our
/// conductance matrices are diagonally dominant, so `ρ(I − ωD⁻¹A) < 1`
/// holds with margin and the V-cycle stays positive definite.
const JACOBI_OMEGA: f64 = 0.8;

/// Default coarsening stop: once a level has at most this many nodes it
/// is solved directly (LDLᵀ). Small enough that the bottom factorization
/// is microseconds, large enough that tiny systems (PDN domains, coarse
/// test grids) skip hierarchy construction entirely.
const DEFAULT_BOTTOM_NODES: usize = 600;

/// Node count above which [`MultigridPreconditioner`]-CG beats both the
/// cached direct factorization and warm-started Jacobi-CG for repeated
/// steady solves, measured on the thermal conductance system (grid
/// scaling axis in BENCH.md: direct still wins at 64×64 ≈ 8k nodes,
/// mgcg wins from ≈ 104×104 ≈ 22k nodes on). The `Auto` backend policy
/// switches to mgcg at this threshold and keeps the PR-5 break-even
/// behaviour below it.
pub const MGCG_MIN_NODES: usize = 16_000;

/// Maps matrix rows onto stacked `nx × ny` grid layers plus trailing
/// irregular nodes — the geometry the multigrid hierarchy coarsens.
///
/// Node `layer·nx·ny + j·nx + i` is grid cell `(i, j)` of `layer`
/// (x-fastest, the layout both the thermal and PDN assemblers use), and
/// the final `extra` nodes (e.g. the thermal heat-sink node) follow all
/// layers and are never coarsened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridGeometry {
    /// Grid cells along x in each layer.
    pub nx: usize,
    /// Grid cells along y in each layer.
    pub ny: usize,
    /// Number of stacked `nx × ny` layers.
    pub layers: usize,
    /// Irregular trailing nodes kept verbatim on every level.
    pub extra: usize,
}

impl GridGeometry {
    /// A geometry of `layers` stacked `nx × ny` grids plus `extra`
    /// trailing nodes.
    pub fn new(nx: usize, ny: usize, layers: usize, extra: usize) -> Self {
        GridGeometry {
            nx,
            ny,
            layers,
            extra,
        }
    }

    /// Total node count: `layers·nx·ny + extra`.
    pub fn nodes(&self) -> usize {
        self.layers * self.nx * self.ny + self.extra
    }

    /// The 2:1 box-coarsened geometry (layers and extra nodes are kept).
    fn coarsen(&self) -> GridGeometry {
        GridGeometry {
            nx: self.nx.div_ceil(2),
            ny: self.ny.div_ceil(2),
            ..*self
        }
    }
}

/// One smoothed level of the hierarchy.
#[derive(Debug, Clone)]
struct Level {
    /// The operator on this level (level 0: the fine matrix).
    a: CsrMatrix,
    /// Inverse diagonal of `a` for the damped-Jacobi smoother.
    inv_diag: Vec<f64>,
    /// Prolongation from the next-coarser level into this one.
    p: CsrMatrix,
    /// Restriction `R = Pᵀ` from this level to the next-coarser one.
    r: CsrMatrix,
}

/// The coarsest level: its Galerkin operator and cached LDLᵀ factor.
#[derive(Debug, Clone)]
struct Bottom {
    a: CsrMatrix,
    factor: LdltFactor,
}

/// Per-level scratch of one V-cycle; lives behind a `Mutex` so
/// [`Preconditioner::apply_into`] can stay `&self` (CG call sites share
/// the preconditioner immutably) while the cycle remains allocation-free.
#[derive(Debug, Default)]
struct Work {
    /// Per smoothed level: restricted right-hand side, iterate, and a
    /// product/residual buffer.
    rhs: Vec<Vec<f64>>,
    z: Vec<Vec<f64>>,
    tmp: Vec<Vec<f64>>,
    bottom_rhs: Vec<f64>,
    bottom_z: Vec<f64>,
    ldlt_ws: LdltWorkspace,
}

/// Geometric multigrid V-cycle preconditioner for
/// [`CsrMatrix::solve_cg_with`].
///
/// Build once per matrix with [`MultigridPreconditioner::new`]; when the
/// matrix values change under a fixed pattern (the PDN's per-gating
/// regulator patches), refresh with
/// [`MultigridPreconditioner::update`], which re-assembles the Galerkin
/// products and refactors the bottom level without re-deriving any
/// structure.
#[derive(Debug)]
pub struct MultigridPreconditioner {
    geometry: GridGeometry,
    bottom_limit: usize,
    levels: Vec<Level>,
    bottom: Bottom,
    work: Mutex<Work>,
}

impl Clone for MultigridPreconditioner {
    fn clone(&self) -> Self {
        let mut clone = MultigridPreconditioner {
            geometry: self.geometry,
            bottom_limit: self.bottom_limit,
            levels: self.levels.clone(),
            bottom: self.bottom.clone(),
            work: Mutex::new(Work::default()),
        };
        clone.size_work();
        clone
    }
}

impl MultigridPreconditioner {
    /// Builds the hierarchy for `matrix`, whose rows must follow
    /// `geometry` ([`GridGeometry::nodes`] must equal the dimension).
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] — `matrix` is not square of
    ///   dimension `geometry.nodes()`;
    /// * [`Error::SingularMatrix`] — a level operator has a zero
    ///   diagonal entry (no damped-Jacobi smoother);
    /// * factorization errors from the bottom-level LDLᵀ.
    pub fn new(matrix: &CsrMatrix, geometry: GridGeometry) -> Result<Self> {
        Self::with_bottom_limit(matrix, geometry, DEFAULT_BOTTOM_NODES)
    }

    /// Like [`MultigridPreconditioner::new`] with an explicit coarsening
    /// stop: levels with at most `bottom_nodes` nodes are solved
    /// directly. Mainly for tests that want to force deep hierarchies on
    /// small grids.
    ///
    /// # Errors
    ///
    /// See [`MultigridPreconditioner::new`].
    pub fn with_bottom_limit(
        matrix: &CsrMatrix,
        geometry: GridGeometry,
        bottom_nodes: usize,
    ) -> Result<Self> {
        let n = geometry.nodes();
        if matrix.rows() != n || matrix.cols() != n {
            return Err(Error::DimensionMismatch {
                expected: n,
                actual: matrix.rows(),
            });
        }
        if n == 0 {
            return Err(Error::invalid_argument("empty multigrid geometry"));
        }
        let mut levels = Vec::new();
        let mut a = matrix.clone();
        let mut g = geometry;
        while g.nodes() > bottom_nodes.max(1) {
            let cg = g.coarsen();
            if cg.nodes() >= g.nodes() {
                break; // 1×1 layers (or extra-only): nothing left to coarsen.
            }
            let p = prolongation(g, cg);
            let r = p.transpose();
            let coarse = r.multiply(&a.multiply(&p)?)?;
            let inv_diag = inverse_diag(&a)?;
            levels.push(Level { a, inv_diag, p, r });
            a = coarse;
            g = cg;
        }
        let factor = LdltFactor::new(&a)?;
        let mut pre = MultigridPreconditioner {
            geometry,
            bottom_limit: bottom_nodes,
            levels,
            bottom: Bottom { a, factor },
            work: Mutex::new(Work::default()),
        };
        pre.size_work();
        Ok(pre)
    }

    /// Re-derives the numeric hierarchy from `matrix`: when the sparsity
    /// pattern matches the matrix the hierarchy was built from (the
    /// cached-matrix-with-patched-values case), the transfer operators
    /// are reused, the Galerkin products recomputed, and the bottom
    /// factor refreshed via the values-only
    /// [`LdltFactor::refactor`] fast path; otherwise the full hierarchy
    /// is rebuilt.
    ///
    /// # Errors
    ///
    /// See [`MultigridPreconditioner::new`].
    pub fn update(&mut self, matrix: &CsrMatrix) -> Result<()> {
        let fine = self.fine_matrix();
        let same_pattern = matrix.rows == fine.rows
            && matrix.cols == fine.cols
            && matrix.row_ptr == fine.row_ptr
            && matrix.col_idx == fine.col_idx;
        if !same_pattern {
            *self = Self::with_bottom_limit(matrix, self.geometry, self.bottom_limit)?;
            return Ok(());
        }
        if self.levels.is_empty() {
            self.bottom.a.values.copy_from_slice(&matrix.values);
        } else {
            self.levels[0].a.values.copy_from_slice(&matrix.values);
            for l in 0..self.levels.len() {
                let lev = &self.levels[l];
                let coarse = lev.r.multiply(&lev.a.multiply(&lev.p)?)?;
                let inv_diag = inverse_diag(&self.levels[l].a)?;
                self.levels[l].inv_diag = inv_diag;
                if l + 1 < self.levels.len() {
                    self.levels[l + 1].a = coarse;
                } else {
                    self.bottom.a = coarse;
                }
            }
        }
        self.bottom.factor.refactor(&self.bottom.a)?;
        Ok(())
    }

    /// The geometry of the finest level.
    pub fn geometry(&self) -> GridGeometry {
        self.geometry
    }

    /// Number of smoothed levels above the direct bottom solve (0 when
    /// the whole system fits under the bottom limit).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The operator on smoothed level `level` (0 = the fine matrix).
    ///
    /// # Panics
    ///
    /// Panics when `level >= num_levels()`.
    pub fn level_matrix(&self, level: usize) -> &CsrMatrix {
        &self.levels[level].a
    }

    /// The Galerkin operator solved directly at the bottom of the
    /// hierarchy.
    pub fn bottom_matrix(&self) -> &CsrMatrix {
        &self.bottom.a
    }

    /// Prolongation from level `level + 1` into level `level`.
    ///
    /// # Panics
    ///
    /// Panics when `level >= num_levels()`.
    pub fn prolongation(&self, level: usize) -> &CsrMatrix {
        &self.levels[level].p
    }

    /// Restriction from level `level` to level `level + 1` (`= Pᵀ`).
    ///
    /// # Panics
    ///
    /// Panics when `level >= num_levels()`.
    pub fn restriction(&self, level: usize) -> &CsrMatrix {
        &self.levels[level].r
    }

    fn fine_matrix(&self) -> &CsrMatrix {
        self.levels.first().map_or(&self.bottom.a, |l| &l.a)
    }

    /// Sizes every V-cycle buffer for its level so `apply_into` never
    /// allocates.
    fn size_work(&mut self) {
        let work = self.work.get_mut().unwrap_or_else(|e| e.into_inner());
        work.rhs = self.levels.iter().map(|l| vec![0.0; l.a.rows()]).collect();
        work.z = self.levels.iter().map(|l| vec![0.0; l.a.rows()]).collect();
        work.tmp = self.levels.iter().map(|l| vec![0.0; l.a.rows()]).collect();
        work.bottom_rhs = vec![0.0; self.bottom.a.rows()];
        work.bottom_z = vec![0.0; self.bottom.a.rows()];
    }

    /// One V(1,1) cycle on `A·z = r` from a zero initial guess.
    fn vcycle(&self, r: &[f64], z: &mut [f64]) -> Result<()> {
        let work = &mut *self.work.lock().unwrap_or_else(|e| e.into_inner());
        if self.levels.is_empty() {
            return self.bottom.factor.solve_into(r, z, &mut work.ldlt_ws);
        }
        work.rhs[0].copy_from_slice(r);
        // Down sweep: pre-smooth, form the residual, restrict.
        for l in 0..self.levels.len() {
            let lev = &self.levels[l];
            let n = lev.a.rows();
            for i in 0..n {
                work.z[l][i] = JACOBI_OMEGA * lev.inv_diag[i] * work.rhs[l][i];
            }
            let (z_l, tmp_l) = (&work.z[l], &mut work.tmp[l]);
            lev.a.mul_vec_into(z_l, tmp_l);
            for i in 0..n {
                work.tmp[l][i] = work.rhs[l][i] - work.tmp[l][i];
            }
            if l + 1 < self.levels.len() {
                let (tmp_l, rhs_next) = (&work.tmp[l], &mut work.rhs[l + 1]);
                lev.r.mul_vec_into(tmp_l, rhs_next);
            } else {
                lev.r.mul_vec_into(&work.tmp[l], &mut work.bottom_rhs);
            }
        }
        self.bottom
            .factor
            .solve_into(&work.bottom_rhs, &mut work.bottom_z, &mut work.ldlt_ws)?;
        // Up sweep: prolong the coarse correction, post-smooth.
        for l in (0..self.levels.len()).rev() {
            let lev = &self.levels[l];
            let n = lev.a.rows();
            if l + 1 < self.levels.len() {
                let (z_next, tmp_l) = (&work.z[l + 1], &mut work.tmp[l]);
                lev.p.mul_vec_into(z_next, tmp_l);
            } else {
                lev.p.mul_vec_into(&work.bottom_z, &mut work.tmp[l]);
            }
            for i in 0..n {
                work.z[l][i] += work.tmp[l][i];
            }
            let (z_l, tmp_l) = (&work.z[l], &mut work.tmp[l]);
            lev.a.mul_vec_into(z_l, tmp_l);
            for i in 0..n {
                work.z[l][i] += JACOBI_OMEGA * lev.inv_diag[i] * (work.rhs[l][i] - work.tmp[l][i]);
            }
        }
        z.copy_from_slice(&work.z[0]);
        Ok(())
    }
}

impl Preconditioner for MultigridPreconditioner {
    fn dim(&self) -> usize {
        self.fine_matrix().rows()
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.dim());
        debug_assert_eq!(z.len(), self.dim());
        // The bottom factor was validated at construction/update time, so
        // a triangular-solve failure here is unreachable for the SPD
        // systems this type accepts; fall back to identity (= unpreconditioned
        // CG step) rather than panicking inside the solver loop.
        if self.vcycle(r, z).is_err() {
            z.copy_from_slice(r);
        }
    }
}

/// Inverse diagonal of `a`, rejecting zero entries (no smoother).
fn inverse_diag(a: &CsrMatrix) -> Result<Vec<f64>> {
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0) {
        return Err(Error::SingularMatrix { index: i });
    }
    Ok(diag.into_iter().map(|d| 1.0 / d).collect())
}

/// 1D bilinear interpolation weights of fine index `i` onto the
/// 2:1-coarsened axis of `n_coarse` points: even indices inject from
/// their coarse image, odd indices average their two coarse neighbours
/// (one neighbour, full weight, at the high boundary of an even-sized
/// axis).
fn axis_weights(i: usize, n_coarse: usize) -> ([(usize, f64); 2], usize) {
    if i.is_multiple_of(2) {
        ([(i / 2, 1.0), (0, 0.0)], 1)
    } else {
        let left = i / 2;
        let right = left + 1;
        if right < n_coarse {
            ([(left, 0.5), (right, 0.5)], 2)
        } else {
            ([(left, 1.0), (0, 0.0)], 1)
        }
    }
}

/// The bilinear prolongation matrix from `coarse` onto `fine` (2:1 box
/// coarsening per layer; extra nodes map one-to-one).
fn prolongation(fine: GridGeometry, coarse: GridGeometry) -> CsrMatrix {
    let mut b = TripletBuilder::new(fine.nodes(), coarse.nodes());
    let fine_layer = fine.nx * fine.ny;
    let coarse_layer = coarse.nx * coarse.ny;
    for layer in 0..fine.layers {
        for j in 0..fine.ny {
            let (wy, ny_w) = axis_weights(j, coarse.ny);
            for i in 0..fine.nx {
                let (wx, nx_w) = axis_weights(i, coarse.nx);
                let row = layer * fine_layer + j * fine.nx + i;
                for &(cj, wj) in &wy[..ny_w] {
                    for &(ci, wi) in &wx[..nx_w] {
                        let col = layer * coarse_layer + cj * coarse.nx + ci;
                        b.add(row, col, wj * wi);
                    }
                }
            }
        }
    }
    for e in 0..fine.extra {
        b.add(
            fine.layers * fine_layer + e,
            coarse.layers * coarse_layer + e,
            1.0,
        );
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{self, CheckConfig, Checker};
    use crate::linalg::{CgWorkspace, JacobiPreconditioner};

    /// A grid Laplacian on `geometry` with per-node ground conductance
    /// `load` and unit couplings scaled by `conduct`; when the geometry
    /// has one extra node it becomes a dense "sink" row coupled to every
    /// layer-0 cell (the thermal heat-sink shape).
    fn grid_laplacian(geometry: GridGeometry, conduct: &[f64], load: f64) -> CsrMatrix {
        let n = geometry.nodes();
        let mut b = TripletBuilder::new(n, n);
        let per_layer = geometry.nx * geometry.ny;
        let pick = |k: usize| conduct[k % conduct.len()].abs().max(0.05);
        let mut edge = 0usize;
        let mut couple = |b: &mut TripletBuilder, u: usize, v: usize| {
            let g = pick(edge);
            edge += 1;
            b.add(u, u, g);
            b.add(v, v, g);
            b.add(u, v, -g);
            b.add(v, u, -g);
        };
        for layer in 0..geometry.layers {
            let base = layer * per_layer;
            for j in 0..geometry.ny {
                for i in 0..geometry.nx {
                    let u = base + j * geometry.nx + i;
                    if i + 1 < geometry.nx {
                        couple(&mut b, u, u + 1);
                    }
                    if j + 1 < geometry.ny {
                        couple(&mut b, u, u + geometry.nx);
                    }
                    if layer + 1 < geometry.layers {
                        couple(&mut b, u, u + per_layer);
                    }
                    b.add(u, u, load);
                }
            }
        }
        for e in 0..geometry.extra {
            let sink = geometry.layers * per_layer + e;
            b.add(sink, sink, load);
            if geometry.layers > 0 {
                for cell in 0..per_layer {
                    couple(&mut b, sink, cell);
                }
            }
        }
        b.build()
    }

    fn checker(cases: usize) -> Checker {
        Checker::new(CheckConfig {
            seed: 0x4D47_4347, // "MGCG"
            cases,
            ..CheckConfig::default()
        })
    }

    /// Random small geometry + conductance scale + ground load + sink flag.
    fn geom_gen() -> impl check::Gen<Value = (usize, usize, f64, bool)> {
        (
            check::usize_in(1, 9),
            check::usize_in(1, 9),
            check::f64_in(0.1, 4.0),
            check::bool_any(),
        )
    }

    fn build_case(nx: usize, ny: usize, scale: f64, sink: bool) -> (GridGeometry, CsrMatrix) {
        let geometry = GridGeometry::new(nx, ny, if sink { 2 } else { 1 }, usize::from(sink));
        let conduct = [scale, 2.0 * scale, 0.7 * scale, 1.3 * scale];
        let matrix = grid_laplacian(geometry, &conduct, 0.05 * scale);
        (geometry, matrix)
    }

    #[test]
    fn restriction_is_prolongation_transpose() {
        checker(24).assert(
            "mg.transfer_transpose",
            &geom_gen(),
            |&(nx, ny, scale, sink)| {
                let (geometry, matrix) = build_case(nx, ny, scale, sink);
                let mg = MultigridPreconditioner::with_bottom_limit(&matrix, geometry, 4)
                    .map_err(|e| format!("build failed: {e}"))?;
                for l in 0..mg.num_levels() {
                    let rt = mg.restriction(l).transpose();
                    check::ensure(&rt == mg.prolongation(l), || format!("level {l}: R^T != P"))?;
                    // Every fine node's interpolation weights sum to 1
                    // (partition of unity), so constants are preserved.
                    let p = mg.prolongation(l);
                    for row in 0..p.rows() {
                        let sum: f64 = p.row_entries(row).map(|(_, v)| v).sum();
                        check::ensure((sum - 1.0).abs() < 1e-12, || {
                            format!("level {l} row {row}: weight sum {sum}")
                        })?;
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn galerkin_coarse_operators_stay_spd() {
        checker(24).assert("mg.galerkin_spd", &geom_gen(), |&(nx, ny, scale, sink)| {
            let (geometry, matrix) = build_case(nx, ny, scale, sink);
            let mg = MultigridPreconditioner::with_bottom_limit(&matrix, geometry, 4)
                .map_err(|e| format!("build failed: {e}"))?;
            let mut ops: Vec<&CsrMatrix> =
                (1..mg.num_levels()).map(|l| mg.level_matrix(l)).collect();
            ops.push(mg.bottom_matrix());
            for (depth, a) in ops.iter().enumerate() {
                let max = a.values().iter().fold(0.0f64, |m, v| m.max(v.abs()));
                for (row, col, v) in a.iter_entries() {
                    let vt = a.get(col, row);
                    check::ensure((v - vt).abs() <= 1e-12 * max.max(1.0), || {
                        format!("coarse op {depth} asymmetric at ({row},{col}): {v} vs {vt}")
                    })?;
                }
                // SPD ⟺ the LDLᵀ factorization succeeds with positive
                // pivots, which LdltFactor::new enforces.
                check::ensure(LdltFactor::new(a).is_ok(), || {
                    format!("coarse op {depth} is not positive definite")
                })?;
            }
            Ok(())
        });
    }

    #[test]
    fn mgcg_matches_jacobi_cg() {
        checker(16).assert("mg.solves_match", &geom_gen(), |&(nx, ny, scale, sink)| {
            let (geometry, matrix) = build_case(nx, ny, scale, sink);
            let n = geometry.nodes();
            let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
            let mg = MultigridPreconditioner::with_bottom_limit(&matrix, geometry, 4)
                .map_err(|e| format!("build failed: {e}"))?;
            let jac = JacobiPreconditioner::new(&matrix).map_err(|e| e.to_string())?;
            let mut ws = CgWorkspace::new();
            let mut x_mg = vec![0.0; n];
            matrix
                .solve_cg_with(&b, &mut x_mg, &mg, &mut ws, 1e-12, 50 * n.max(20))
                .map_err(|e| format!("mgcg solve failed: {e}"))?;
            let mut x_jac = vec![0.0; n];
            matrix
                .solve_cg_with(&b, &mut x_jac, &jac, &mut ws, 1e-12, 50 * n.max(20))
                .map_err(|e| format!("jacobi solve failed: {e}"))?;
            let scale_x = x_jac.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            let diff = crate::linalg::vec_ops::max_abs_diff(&x_mg, &x_jac);
            check::ensure(diff <= 1e-8 * scale_x, || {
                format!("solutions diverge: {diff:.3e} (scale {scale_x:.3e})")
            })
        });
    }

    #[test]
    fn iteration_counts_stay_flat_as_the_grid_refines() {
        // The whole point of multigrid: iteration counts must not grow
        // with grid size, while Jacobi-CG's roughly track the diameter.
        let mut mg_iters = Vec::new();
        for side in [16usize, 32, 64] {
            let geometry = GridGeometry::new(side, side, 1, 0);
            let matrix = grid_laplacian(geometry, &[1.0], 1e-3);
            let n = geometry.nodes();
            let b = vec![1.0; n];
            let mg = MultigridPreconditioner::with_bottom_limit(&matrix, geometry, 64).unwrap();
            let mut ws = CgWorkspace::new();
            let mut x = vec![0.0; n];
            let stats = matrix
                .solve_cg_with(&b, &mut x, &mg, &mut ws, 1e-10, 10 * n)
                .unwrap();
            mg_iters.push(stats.iterations);
        }
        let spread = mg_iters.iter().max().unwrap() - mg_iters.iter().min().unwrap();
        assert!(
            spread <= mg_iters[0],
            "mgcg iteration counts grew with grid size: {mg_iters:?}"
        );
        assert!(
            *mg_iters.last().unwrap() <= 30,
            "mgcg needs too many iterations: {mg_iters:?}"
        );
    }

    #[test]
    fn tiny_systems_skip_the_hierarchy() {
        let geometry = GridGeometry::new(4, 4, 1, 0);
        let matrix = grid_laplacian(geometry, &[1.0], 0.5);
        let mg = MultigridPreconditioner::new(&matrix, geometry).unwrap();
        assert_eq!(mg.num_levels(), 0);
        // Bottom-only: the preconditioner is an exact solve, so CG
        // converges immediately.
        let b = vec![1.0; 16];
        let mut x = vec![0.0; 16];
        let stats = matrix
            .solve_cg_with(&b, &mut x, &mg, &mut CgWorkspace::new(), 1e-12, 10)
            .unwrap();
        assert!(stats.iterations <= 2, "iterations {}", stats.iterations);
    }

    #[test]
    fn update_tracks_patched_values() {
        let geometry = GridGeometry::new(12, 10, 1, 0);
        let mut matrix = grid_laplacian(geometry, &[1.0, 0.4], 0.2);
        let mut mg = MultigridPreconditioner::with_bottom_limit(&matrix, geometry, 8).unwrap();
        // Patch the values (keep the pattern), as the PDN gating path does.
        for v in matrix.values_mut() {
            *v *= 1.7;
        }
        mg.update(&matrix).unwrap();
        let fresh = MultigridPreconditioner::with_bottom_limit(&matrix, geometry, 8).unwrap();
        for l in 0..mg.num_levels() {
            let a = mg.level_matrix(l);
            let f = fresh.level_matrix(l);
            let diff = crate::linalg::vec_ops::max_abs_diff(a.values(), f.values());
            assert!(diff <= 1e-12, "level {l} drifted after update: {diff}");
        }
        let diff = crate::linalg::vec_ops::max_abs_diff(
            mg.bottom_matrix().values(),
            fresh.bottom_matrix().values(),
        );
        assert!(diff <= 1e-12, "bottom drifted after update: {diff}");
    }

    #[test]
    fn rejects_mismatched_geometry() {
        let geometry = GridGeometry::new(4, 4, 1, 0);
        let matrix = grid_laplacian(geometry, &[1.0], 0.5);
        let wrong = GridGeometry::new(5, 4, 1, 0);
        assert!(matches!(
            MultigridPreconditioner::new(&matrix, wrong),
            Err(Error::DimensionMismatch { .. })
        ));
    }
}
