//! Hand-rolled, offline property-based testing: generators, shrinking,
//! and a persisted regression corpus.
//!
//! The module generalises the `DeterministicRng`-seeded style of the
//! repo's original `tests/properties.rs` into a reusable harness, without
//! pulling in an external proptest/quickcheck dependency:
//!
//! * [`Gen`] — a composable generator that can *generate* a random value,
//!   *shrink* a failing one toward a simpler counterexample, and
//!   *encode*/*decode* it as a single line of text (the corpus format);
//! * [`Checker`] — the runner: replays every matching corpus case first,
//!   then draws `cases` fresh inputs from per-case deterministic RNG
//!   streams, and on the first failure runs the shrink loop;
//! * [`Oracle`] — a named invariant (`check(&input) -> TestResult`);
//!   plain closures work too via [`Checker::run`];
//! * [`Counterexample`] — the fully reproducible failure report: base
//!   seed, case source, original and shrunk inputs, and the `.case` file
//!   body to pin the regression under `tests/corpus/`.
//!
//! # Reproducibility
//!
//! Case `i` of a run with base seed `s` draws from
//! `DeterministicRng::new(s ^ (i+1)·C)` — each case has its own stream,
//! so a shrunk counterexample replays bit-for-bit from `(s, i)` alone and
//! corpus replay order cannot perturb later cases.
//!
//! # Corpus
//!
//! A corpus entry is a small text file (conventionally
//! `tests/corpus/<property>-<hash>.case`):
//!
//! ```text
//! # optional comment lines
//! property: vreg.required_active
//! seed: 0xa001
//! message: required_active too small
//! input: 1.35e1
//! ```
//!
//! Every [`Checker`] run with a configured corpus directory replays all
//! entries whose `property:` matches *before* the random phase, so fixed
//! bugs stay fixed. A corpus entry that no longer decodes is reported as
//! a failure (stale corpus is a bug, not noise).
//!
//! # Example
//!
//! ```
//! use simkit::check::{self, CheckConfig, Checker};
//!
//! let checker = Checker::new(CheckConfig {
//!     seed: 0xBEEF,
//!     cases: 32,
//!     ..CheckConfig::default()
//! });
//! let gen = check::f64_in(0.0, 100.0);
//! let outcome = checker.run("demo.non_negative", &gen, |&v| {
//!     check::ensure(v >= 0.0, || format!("negative draw {v}"))
//! });
//! assert!(outcome.is_pass());
//! ```

use crate::rng::DeterministicRng;
use std::fmt;
use std::path::{Path, PathBuf};

/// Mixing constant for per-case RNG streams (same constant as
/// [`DeterministicRng::fork`]).
const STREAM_MIX: u64 = 0xA24B_AED4_963E_E407;

/// Result of checking one property against one input: `Ok(())` when the
/// invariant holds, `Err(message)` describing the violation otherwise.
pub type TestResult = Result<(), String>;

/// Returns `Ok(())` when `cond` holds, otherwise an `Err` with the
/// lazily-built message — the ergonomic way to express invariants inside
/// a property closure.
pub fn ensure(cond: bool, message: impl FnOnce() -> String) -> TestResult {
    if cond {
        Ok(())
    } else {
        Err(message())
    }
}

/// A composable value generator with shrinking and a text codec.
///
/// `shrink` must only propose values strictly *simpler* than its
/// argument (closer to the range minimum, shorter, or element-wise
/// simpler) so the shrink loop terminates; the [`Checker`] additionally
/// bounds it with [`CheckConfig::max_shrink_evals`].
///
/// `encode`/`decode` must round-trip exactly (`decode(encode(v)) ==
/// Some(v)`); the encoding is what `.case` corpus files store.
pub trait Gen {
    /// The generated value type.
    type Value: Clone;

    /// Draws one random value.
    fn generate(&self, rng: &mut DeterministicRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. An empty
    /// vector means the value is already minimal.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;

    /// Encodes `value` as a single line of text.
    fn encode(&self, value: &Self::Value) -> String;

    /// Parses a value back from its [`Gen::encode`] form; `None` when the
    /// text is not a valid encoding for this generator.
    fn decode(&self, text: &str) -> Option<Self::Value>;
}

/// A named invariant over generated inputs.
///
/// Implemented by [`FnOracle`] for closures; anything that can judge an
/// input can implement it directly.
pub trait Oracle<T> {
    /// Stable property name (used for corpus matching and reports).
    fn name(&self) -> &str;

    /// Checks the invariant against one input.
    fn check(&self, value: &T) -> TestResult;
}

/// A closure-backed [`Oracle`]; build one with [`oracle`].
pub struct FnOracle<F> {
    name: String,
    f: F,
}

impl<T, F: Fn(&T) -> TestResult> Oracle<T> for FnOracle<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&self, value: &T) -> TestResult {
        (self.f)(value)
    }
}

/// Wraps a closure as a named [`Oracle`].
pub fn oracle<T, F: Fn(&T) -> TestResult>(name: impl Into<String>, f: F) -> FnOracle<F> {
    FnOracle {
        name: name.into(),
        f,
    }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Uniform `f64` generator over `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct F64In {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[lo, hi)`, shrinking toward `lo`.
///
/// # Panics
///
/// Panics when the range is empty or not finite.
pub fn f64_in(lo: f64, hi: f64) -> F64In {
    assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
    F64In { lo, hi }
}

impl Gen for F64In {
    type Value = f64;

    fn generate(&self, rng: &mut DeterministicRng) -> f64 {
        rng.uniform_range(self.lo, self.hi)
    }

    fn shrink(&self, &value: &f64) -> Vec<f64> {
        let d = value - self.lo;
        if d <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        // Simplest first, then successively finer bisection toward the
        // failing value: each accepted candidate cuts the distance to
        // `lo` by at least 1/16, so the loop terminates.
        for c in [
            self.lo,
            self.lo + d / 2.0,
            value - d / 4.0,
            value - d / 16.0,
        ] {
            if c >= self.lo && c < value && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    fn encode(&self, value: &f64) -> String {
        format!("{value:e}")
    }

    fn decode(&self, text: &str) -> Option<f64> {
        let v: f64 = text.trim().parse().ok()?;
        (v.is_finite() && v >= self.lo && v < self.hi).then_some(v)
    }
}

/// Uniform `usize` generator over `lo..=hi`; shrinks toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct UsizeIn {
    lo: usize,
    hi: usize,
}

/// Uniform `usize` in `lo..=hi`, shrinking toward `lo`.
///
/// # Panics
///
/// Panics when `lo > hi`.
pub fn usize_in(lo: usize, hi: usize) -> UsizeIn {
    assert!(lo <= hi, "bad range");
    UsizeIn { lo, hi }
}

impl Gen for UsizeIn {
    type Value = usize;

    fn generate(&self, rng: &mut DeterministicRng) -> usize {
        self.lo + rng.uniform_usize(self.hi - self.lo + 1)
    }

    fn shrink(&self, &value: &usize) -> Vec<usize> {
        let mut out = Vec::new();
        for c in [
            self.lo,
            self.lo + (value - self.lo) / 2,
            value.wrapping_sub(1),
        ] {
            if c >= self.lo && c < value && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    fn encode(&self, value: &usize) -> String {
        value.to_string()
    }

    fn decode(&self, text: &str) -> Option<usize> {
        let v: usize = text.trim().parse().ok()?;
        (v >= self.lo && v <= self.hi).then_some(v)
    }
}

/// Fair-coin `bool` generator; `true` shrinks to `false`.
#[derive(Debug, Clone, Copy)]
pub struct BoolGen;

/// Fair-coin `bool`; `true` shrinks to `false`.
pub fn bool_any() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;

    fn generate(&self, rng: &mut DeterministicRng) -> bool {
        rng.bernoulli(0.5)
    }

    fn shrink(&self, &value: &bool) -> Vec<bool> {
        if value {
            vec![false]
        } else {
            Vec::new()
        }
    }

    fn encode(&self, value: &bool) -> String {
        if *value { "1" } else { "0" }.to_string()
    }

    fn decode(&self, text: &str) -> Option<bool> {
        match text.trim() {
            "1" => Some(true),
            "0" => Some(false),
            _ => None,
        }
    }
}

/// Vector generator: a length drawn from `min_len..=max_len`, elements
/// from an inner generator. Shrinks by halving, dropping one element,
/// then simplifying elements in place.
///
/// Element encodings must contain no whitespace (true for the scalar
/// generators in this module) — the vector codec is space-separated
/// inside brackets: `[1e0 2e0 3e0]`.
#[derive(Debug, Clone, Copy)]
pub struct VecOf<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Vector of `min_len..=max_len` values drawn from `elem`.
///
/// # Panics
///
/// Panics when `min_len > max_len`.
pub fn vec_of<G: Gen>(elem: G, min_len: usize, max_len: usize) -> VecOf<G> {
    assert!(min_len <= max_len, "bad length range");
    VecOf {
        elem,
        min_len,
        max_len,
    }
}

impl<G: Gen> Gen for VecOf<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut DeterministicRng) -> Vec<G::Value> {
        let len = self.min_len + rng.uniform_usize(self.max_len - self.min_len + 1);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out: Vec<Vec<G::Value>> = Vec::new();
        let len = value.len();
        // Structural shrinks first: halves, then one-element drops.
        if len / 2 >= self.min_len && len / 2 < len {
            out.push(value[..len / 2].to_vec());
            out.push(value[len - len / 2..].to_vec());
        }
        if len > self.min_len {
            for i in 0..len {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element shrinks: replace each element with its simplest
        // candidate (the loop re-enters, so deeper element shrinks still
        // happen across iterations).
        for i in 0..len {
            if let Some(simpler) = self.elem.shrink(&value[i]).into_iter().next() {
                let mut v = value.clone();
                v[i] = simpler;
                out.push(v);
            }
        }
        out
    }

    fn encode(&self, value: &Vec<G::Value>) -> String {
        let parts: Vec<String> = value.iter().map(|v| self.elem.encode(v)).collect();
        format!("[{}]", parts.join(" "))
    }

    fn decode(&self, text: &str) -> Option<Vec<G::Value>> {
        let inner = text.trim().strip_prefix('[')?.strip_suffix(']')?;
        let mut out = Vec::new();
        for part in inner.split_whitespace() {
            out.push(self.elem.decode(part)?);
        }
        (out.len() >= self.min_len && out.len() <= self.max_len).then_some(out)
    }
}

/// Implements [`Gen`] for tuples of generators: components generate in
/// order, shrink one at a time, and encode joined by `" ; "` (so vector
/// components can nest inside tuples, but not the other way round).
macro_rules! tuple_gen {
    ($($g:ident / $v:ident / $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut DeterministicRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }

            fn encode(&self, value: &Self::Value) -> String {
                let parts = [$(self.$idx.encode(&value.$idx)),+];
                parts.join(" ; ")
            }

            fn decode(&self, text: &str) -> Option<Self::Value> {
                let parts: Vec<&str> = text.split(';').map(str::trim).collect();
                let expected = [$(stringify!($g)),+].len();
                if parts.len() != expected {
                    return None;
                }
                $(let $v = self.$idx.decode(parts[$idx])?;)+
                Some(($($v,)+))
            }
        }
    };
}

tuple_gen!(A / a / 0, B / b / 1);
tuple_gen!(A / a / 0, B / b / 1, C / c / 2);
tuple_gen!(A / a / 0, B / b / 1, C / c / 2, D / d / 3);

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

/// Configuration of a [`Checker`] run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Base seed; case `i` derives its own independent RNG stream from
    /// `(seed, i)`.
    pub seed: u64,
    /// Number of random cases to draw after corpus replay.
    pub cases: usize,
    /// Upper bound on property evaluations spent shrinking one failure.
    pub max_shrink_evals: usize,
    /// Directory of `.case` regression files replayed before the random
    /// phase (`None` disables corpus replay).
    pub corpus: Option<PathBuf>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seed: 0x7467_2d63_6865_636b, // "tg-check"
            cases: 64,
            max_shrink_evals: 256,
            corpus: None,
        }
    }
}

/// Where a failing input came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseSource {
    /// Replayed from a corpus file.
    Corpus(PathBuf),
    /// Drawn in the random phase as case number `index`.
    Random {
        /// Zero-based case index within the run.
        index: usize,
    },
}

impl fmt::Display for CaseSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseSource::Corpus(path) => write!(f, "corpus {}", path.display()),
            CaseSource::Random { index } => write!(f, "random case #{index}"),
        }
    }
}

/// A fully reproducible property failure.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Property name.
    pub property: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Which case failed.
    pub source: CaseSource,
    /// Encoded input as originally drawn/replayed.
    pub original_input: String,
    /// Encoded input after shrinking (equal to `original_input` when no
    /// shrink candidate still failed).
    pub input: String,
    /// Number of successful shrink steps taken.
    pub shrink_steps: usize,
    /// The failure message of the shrunk input.
    pub message: String,
}

impl Counterexample {
    /// Human-readable multi-line report: seed, source, original and
    /// shrunk inputs, and the failure message.
    pub fn render(&self) -> String {
        format!(
            "property {p} FAILED\n  seed ........ {s:#018x}\n  source ...... {src}\n  original .... {orig}\n  shrunk ...... {inp}  ({steps} shrink steps)\n  failure ..... {msg}\n  pin it: save the block below as tests/corpus/{file}\n{case}",
            p = self.property,
            s = self.seed,
            src = self.source,
            orig = self.original_input,
            inp = self.input,
            steps = self.shrink_steps,
            msg = self.message.replace('\n', " | "),
            file = self.case_file_name(),
            case = indent(&self.to_case_file(), "    "),
        )
    }

    /// The `.case` corpus file body pinning this counterexample.
    pub fn to_case_file(&self) -> String {
        format!(
            "# shrunk counterexample, pinned as a regression\nproperty: {}\nseed: {:#x}\nmessage: {}\ninput: {}\n",
            self.property,
            self.seed,
            self.message.replace('\n', " | "),
            self.input,
        )
    }

    /// Deterministic corpus file name for this counterexample.
    pub fn case_file_name(&self) -> String {
        let slug: String = self
            .property
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!("{slug}-{:08x}.case", fnv1a(self.input.as_bytes()) as u32)
    }

    /// Writes the `.case` file into `dir`, returning its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (missing directory, permissions).
    pub fn save_into(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.case_file_name());
        std::fs::write(&path, self.to_case_file())?;
        Ok(path)
    }
}

/// Outcome of a [`Checker`] run.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// All corpus and random cases passed.
    Pass {
        /// Random cases evaluated.
        cases: usize,
        /// Corpus cases replayed.
        corpus_cases: usize,
    },
    /// A case failed; the boxed counterexample is fully shrunk.
    Fail(Box<Counterexample>),
}

impl CheckOutcome {
    /// Whether the run passed.
    pub fn is_pass(&self) -> bool {
        matches!(self, CheckOutcome::Pass { .. })
    }

    /// The counterexample of a failing run, if any.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            CheckOutcome::Pass { .. } => None,
            CheckOutcome::Fail(c) => Some(c),
        }
    }
}

/// The property-check runner: corpus replay, random generation, and
/// shrinking. See the [module docs](self) for the overall model.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    config: CheckConfig,
}

impl Checker {
    /// A checker with the given configuration.
    pub fn new(config: CheckConfig) -> Self {
        Checker { config }
    }

    /// A default-configured checker with the given base seed.
    pub fn with_seed(seed: u64) -> Self {
        Checker {
            config: CheckConfig {
                seed,
                ..CheckConfig::default()
            },
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CheckConfig {
        &self.config
    }

    /// The per-case RNG stream for `(seed, index)` — exposed so a
    /// counterexample can be replayed by hand.
    pub fn case_rng(seed: u64, index: usize) -> DeterministicRng {
        DeterministicRng::new(seed ^ (index as u64 + 1).wrapping_mul(STREAM_MIX))
    }

    /// Checks `prop` over the corpus (first) and `cases` random inputs,
    /// shrinking the first failure.
    pub fn run<G: Gen>(
        &self,
        property: &str,
        gen: &G,
        prop: impl Fn(&G::Value) -> TestResult,
    ) -> CheckOutcome {
        let mut corpus_cases = 0;
        if let Some(dir) = &self.config.corpus {
            for (path, entry) in corpus_entries(dir, property) {
                corpus_cases += 1;
                let Some(value) = gen.decode(&entry.input) else {
                    return CheckOutcome::Fail(Box::new(Counterexample {
                        property: property.to_string(),
                        seed: self.config.seed,
                        source: CaseSource::Corpus(path.clone()),
                        original_input: entry.input.clone(),
                        input: entry.input,
                        shrink_steps: 0,
                        message: format!(
                            "corpus entry {} no longer decodes for this generator; \
                             regenerate or delete it",
                            path.display()
                        ),
                    }));
                };
                if let Err(message) = prop(&value) {
                    return CheckOutcome::Fail(Box::new(self.shrink(
                        property,
                        CaseSource::Corpus(path),
                        gen,
                        &prop,
                        value,
                        message,
                    )));
                }
            }
        }
        for index in 0..self.config.cases {
            let mut rng = Checker::case_rng(self.config.seed, index);
            let value = gen.generate(&mut rng);
            if let Err(message) = prop(&value) {
                return CheckOutcome::Fail(Box::new(self.shrink(
                    property,
                    CaseSource::Random { index },
                    gen,
                    &prop,
                    value,
                    message,
                )));
            }
        }
        CheckOutcome::Pass {
            cases: self.config.cases,
            corpus_cases,
        }
    }

    /// Like [`Checker::run`] for a named [`Oracle`].
    pub fn run_oracle<T, G: Gen<Value = T>>(
        &self,
        gen: &G,
        oracle: &dyn Oracle<T>,
    ) -> CheckOutcome {
        self.run(oracle.name(), gen, |v| oracle.check(v))
    }

    /// Runs the property and panics with the rendered counterexample on
    /// failure — the drop-in replacement for an assert-per-iteration
    /// loop in a `#[test]`. When the `SIMKIT_CHECK_SAVE` environment
    /// variable is set and a corpus directory is configured, the shrunk
    /// counterexample is also written there so it can be committed.
    ///
    /// # Panics
    ///
    /// Panics when any corpus or random case fails.
    pub fn assert<G: Gen>(&self, property: &str, gen: &G, prop: impl Fn(&G::Value) -> TestResult) {
        if let CheckOutcome::Fail(cex) = self.run(property, gen, prop) {
            let mut rendered = cex.render();
            if std::env::var_os("SIMKIT_CHECK_SAVE").is_some() {
                if let Some(dir) = &self.config.corpus {
                    match cex.save_into(dir) {
                        Ok(path) => rendered.push_str(&format!("\n  saved to {}", path.display())),
                        Err(e) => rendered.push_str(&format!("\n  (corpus save failed: {e})")),
                    }
                }
            }
            panic!("{rendered}");
        }
    }

    fn shrink<G: Gen>(
        &self,
        property: &str,
        source: CaseSource,
        gen: &G,
        prop: &impl Fn(&G::Value) -> TestResult,
        original: G::Value,
        original_message: String,
    ) -> Counterexample {
        let original_input = gen.encode(&original);
        let mut current = original;
        let mut message = original_message;
        let mut steps = 0;
        let mut evals = 0;
        'outer: while evals < self.config.max_shrink_evals {
            for candidate in gen.shrink(&current) {
                if evals >= self.config.max_shrink_evals {
                    break 'outer;
                }
                evals += 1;
                if let Err(m) = prop(&candidate) {
                    current = candidate;
                    message = m;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        Counterexample {
            property: property.to_string(),
            seed: self.config.seed,
            source,
            original_input,
            input: gen.encode(&current),
            shrink_steps: steps,
            message,
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus files
// ---------------------------------------------------------------------------

/// A parsed `.case` corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Property the entry belongs to.
    pub property: String,
    /// Base seed recorded when the counterexample was found (for
    /// provenance; replay does not need it).
    pub seed: Option<u64>,
    /// Failure message recorded when the counterexample was found.
    pub message: Option<String>,
    /// Encoded input, replayed through [`Gen::decode`].
    pub input: String,
}

/// Parses a `.case` file body; `None` when required fields are missing.
pub fn parse_case(text: &str) -> Option<CorpusEntry> {
    let mut property = None;
    let mut seed = None;
    let mut message = None;
    let mut input = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once(':')?;
        let value = value.trim();
        match key.trim() {
            "property" => property = Some(value.to_string()),
            "seed" => {
                let digits = value.trim_start_matches("0x");
                seed = u64::from_str_radix(digits, 16)
                    .ok()
                    .or_else(|| value.parse().ok());
            }
            "message" => message = Some(value.to_string()),
            "input" => input = Some(value.to_string()),
            _ => {}
        }
    }
    Some(CorpusEntry {
        property: property?,
        seed,
        message,
        input: input?,
    })
}

/// All corpus entries in `dir` whose property matches, sorted by file
/// name so replay order is stable. Unreadable or malformed files are
/// skipped (they belong to other harnesses or editors).
fn corpus_entries(dir: &Path, property: &str) -> Vec<(PathBuf, CorpusEntry)> {
    let Ok(read) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = read
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "case"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .filter_map(|path| {
            let text = std::fs::read_to_string(&path).ok()?;
            let entry = parse_case(&text)?;
            (entry.property == property).then_some((path, entry))
        })
        .collect()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn indent(text: &str, prefix: &str) -> String {
    text.lines()
        .map(|l| format!("{prefix}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simkit-check-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scalar_codecs_round_trip() {
        let g = f64_in(-10.0, 10.0);
        for v in [-10.0, 0.0, 0.1, 9.999_999, 1.0 / 3.0] {
            assert_eq!(g.decode(&g.encode(&v)), Some(v));
        }
        let u = usize_in(2, 9);
        assert_eq!(u.decode(&u.encode(&7)), Some(7));
        assert_eq!(u.decode("1"), None, "out of range rejected");
        let b = bool_any();
        assert_eq!(b.decode(&b.encode(&true)), Some(true));
    }

    #[test]
    fn vec_and_tuple_codecs_round_trip() {
        let g = vec_of(f64_in(0.0, 5.0), 0, 8);
        let v = vec![0.5, 1.0 / 3.0, 4.75];
        assert_eq!(g.decode(&g.encode(&v)), Some(v));
        assert_eq!(g.decode(&g.encode(&vec![])), Some(vec![]));
        let t = (vec_of(f64_in(0.0, 5.0), 1, 4), usize_in(0, 9));
        let tv = (vec![1.25, 3.0], 4usize);
        assert_eq!(t.decode(&t.encode(&tv)), Some(tv));
    }

    #[test]
    fn shrinks_scalar_to_near_boundary() {
        let checker = Checker::new(CheckConfig {
            seed: 0xC0FFEE,
            cases: 64,
            max_shrink_evals: 512,
            corpus: None,
        });
        let outcome = checker.run("test.ge_five_fails", &f64_in(0.0, 100.0), |&v| {
            ensure(v < 5.0, || format!("{v} >= 5"))
        });
        let cex = outcome.counterexample().expect("must fail").clone();
        let shrunk: f64 = cex.input.parse().unwrap();
        assert!(
            (5.0..6.0).contains(&shrunk),
            "shrunk to {shrunk}, expected just above 5"
        );
        assert!(cex.shrink_steps > 0);
    }

    #[test]
    fn shrinks_vector_to_single_offender() {
        let checker = Checker::with_seed(0xBADCAFE);
        let gen = vec_of(f64_in(0.0, 10.0), 1, 24);
        let outcome = checker.run("test.contains_large", &gen, |v| {
            ensure(v.iter().all(|&x| x < 9.0), || "has large element".into())
        });
        let cex = outcome.counterexample().expect("must fail");
        let shrunk = gen.decode(&cex.input).unwrap();
        assert_eq!(shrunk.len(), 1, "shrunk to {:?}", shrunk);
        assert!(shrunk[0] >= 9.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let checker = Checker::with_seed(0xD00D);
            checker.run("test.det", &vec_of(f64_in(0.0, 1.0), 1, 16), |v| {
                ensure(v.iter().sum::<f64>() < 6.0, || "sum too large".into())
            })
        };
        let (a, b) = (run(), run());
        match (a, b) {
            (CheckOutcome::Fail(ca), CheckOutcome::Fail(cb)) => {
                assert_eq!(ca.input, cb.input);
                assert_eq!(ca.original_input, cb.original_input);
                assert_eq!(ca.shrink_steps, cb.shrink_steps);
            }
            (CheckOutcome::Pass { .. }, CheckOutcome::Pass { .. }) => {}
            _ => panic!("outcomes diverged"),
        }
    }

    #[test]
    fn corpus_replays_before_random_phase() {
        let dir = temp_dir("replay");
        std::fs::write(
            dir.join("test-corpus-0001.case"),
            "# pinned\nproperty: test.corpus\nseed: 0x1\nmessage: m\ninput: 7.5e0\n",
        )
        .unwrap();
        let checker = Checker::new(CheckConfig {
            seed: 1,
            cases: 0, // random phase disabled: only the corpus can fail
            corpus: Some(dir.clone()),
            ..CheckConfig::default()
        });
        let outcome = checker.run("test.corpus", &f64_in(0.0, 10.0), |&v| {
            ensure(v < 5.0, || format!("{v} >= 5"))
        });
        let cex = outcome.counterexample().expect("corpus case must fail");
        assert!(matches!(cex.source, CaseSource::Corpus(_)));
        // Shrinking a corpus case still applies.
        let shrunk: f64 = cex.input.parse().unwrap();
        assert!(shrunk < 7.5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_corpus_entry_is_an_explicit_failure() {
        let dir = temp_dir("stale");
        std::fs::write(
            dir.join("test-stale-0001.case"),
            "property: test.stale\ninput: not-a-float\n",
        )
        .unwrap();
        let checker = Checker::new(CheckConfig {
            seed: 1,
            cases: 0,
            corpus: Some(dir.clone()),
            ..CheckConfig::default()
        });
        let outcome = checker.run("test.stale", &f64_in(0.0, 10.0), |_| Ok(()));
        let cex = outcome.counterexample().expect("stale entry must fail");
        assert!(cex.message.contains("no longer decodes"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn case_file_round_trips_through_parser() {
        let cex = Counterexample {
            property: "vreg.required_active".into(),
            seed: 0xA001,
            source: CaseSource::Random { index: 3 },
            original_input: "1.9e1".into(),
            input: "1.35e1".into(),
            shrink_steps: 2,
            message: "too few active".into(),
        };
        let entry = parse_case(&cex.to_case_file()).unwrap();
        assert_eq!(entry.property, "vreg.required_active");
        assert_eq!(entry.seed, Some(0xA001));
        assert_eq!(entry.input, "1.35e1");
        let dir = temp_dir("save");
        let path = cex.save_into(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with(".case"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_case_rng_is_independent_of_order() {
        // Case 5's stream depends only on (seed, 5), not on cases 0..4.
        let mut direct = Checker::case_rng(42, 5);
        let mut after_others = {
            for i in 0..5 {
                let mut r = Checker::case_rng(42, i);
                let _ = r.uniform_f64();
            }
            Checker::case_rng(42, 5)
        };
        assert_eq!(direct.next_u64(), after_others.next_u64());
    }
}
