//! Structured run telemetry: events, sinks, and a metrics registry.
//!
//! Every layer of the simulation stack (solvers, thermal stepper, PDN
//! analyzer, engine, sweep executor) can emit structured events —
//! span start/end pairs, counters, histograms, per-step gauges, and
//! domain events (gating changes, voltage emergencies, solver
//! convergence) — through a shared [`Telemetry`] handle. The handle is
//!
//! * **zero-overhead when disabled** — [`Telemetry::disabled`] carries no
//!   sink at all, so every emit site reduces to one branch on an
//!   `Option` and constructs nothing (no event, no allocation);
//! * **thread-safe** — handles are `Clone + Send + Sync` and all sinks
//!   accept events from any thread, so the parallel sweep executor can
//!   share one trace file across workers;
//! * **pluggable** — backends implement [`TelemetrySink`]:
//!   [`NoopSink`] (discard, reports itself inactive), [`MemorySink`]
//!   (in-memory recorder for tests), [`JsonlSink`] (JSON-lines file
//!   writer), plus the combinators [`FanoutSink`], [`CountingSink`],
//!   and [`MetricsSink`].
//!
//! Aggregated counter/histogram statistics live in a [`MetricsRegistry`]
//! (usually fed by a [`MetricsSink`]) which renders the summary table
//! shown by `experiments::report` next to the phase-time table.
//!
//! The [`json`] submodule holds the dependency-free JSON writer/parser
//! the JSONL sink and the manifest validator share; [`manifest`] holds
//! the machine-readable per-run `manifest.json` schema; [`analyze`]
//! closes the loop with a streaming trace reader and per-run rollups
//! (event counts, percentile summaries, span durations, solver /
//! gating / emergency aggregates) consumed by the `tg-obs` CLI.
//!
//! # Examples
//!
//! ```
//! use simkit::telemetry::{EventKind, MemorySink, Telemetry};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::default());
//! let tel = Telemetry::with_sink(sink.clone());
//! {
//!     let _span = tel.span("solve");
//!     tel.counter("steps", 3);
//!     tel.histogram("residual", 1e-9);
//! }
//! assert_eq!(sink.count_kind(EventKind::SpanStart), 1);
//! assert_eq!(sink.count_kind(EventKind::SpanEnd), 1);
//! assert_eq!(sink.len(), 4);
//!
//! let off = Telemetry::disabled();
//! assert!(!off.is_enabled());
//! off.counter("steps", 3); // no-op, allocates nothing
//! ```

pub mod analyze;
pub mod json;
pub mod live;
pub mod manifest;
pub mod prof;
pub mod rules;
pub mod timeline;

use std::borrow::Cow;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The kind of a telemetry [`Event`].
///
/// The kind string (see [`EventKind::as_str`]) is what lands in the
/// `"kind"` field of each JSONL line, and what trace consumers key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named span opened (paired with a later [`EventKind::SpanEnd`]).
    SpanStart,
    /// A named span closed; carries a `dur_s` field.
    SpanEnd,
    /// A monotonic counter increment; carries a `delta` field.
    Counter,
    /// An instantaneous sampled value; carries a `value` field.
    Gauge,
    /// A distribution observation; carries a `value` field.
    Histogram,
    /// A regulator gating decision or active-set change.
    Gating,
    /// A voltage-emergency check or occurrence.
    Emergency,
    /// An iterative solve finished; carries `iters` and `residual`.
    Solve,
    /// Coarse progress (sweep cells, run start/end).
    Progress,
    /// A spatial snapshot (downsampled thermal grid, voltage lanes,
    /// gating mask, hotspot) captured by the frame recorder.
    Frame,
}

impl EventKind {
    /// All kinds, in a stable order (used by validators).
    pub const ALL: [EventKind; 10] = [
        EventKind::SpanStart,
        EventKind::SpanEnd,
        EventKind::Counter,
        EventKind::Gauge,
        EventKind::Histogram,
        EventKind::Gating,
        EventKind::Emergency,
        EventKind::Solve,
        EventKind::Progress,
        EventKind::Frame,
    ];

    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Histogram => "histogram",
            EventKind::Gating => "gating",
            EventKind::Emergency => "emergency",
            EventKind::Solve => "solve",
            EventKind::Progress => "progress",
            EventKind::Frame => "frame",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.as_str() == name)
    }
}

/// One typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (times, temperatures, residuals).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (labels).
    Str(String),
}

/// A single structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Seconds since the owning [`Telemetry`] handle's epoch.
    pub t_s: f64,
    /// Event kind (drives the `"kind"` wire field).
    pub kind: EventKind,
    /// Event name, e.g. `"thermal.max_c"` or `"transient"`.
    pub name: Cow<'static, str>,
    /// Additional key/value payload.
    pub fields: Vec<(Cow<'static, str>, FieldValue)>,
}

impl Event {
    /// Serialises the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 24 * self.fields.len());
        out.push_str("{\"t\":");
        json::write_f64(&mut out, self.t_s);
        out.push_str(",\"kind\":");
        json::write_str(&mut out, self.kind.as_str());
        out.push_str(",\"name\":");
        json::write_str(&mut out, &self.name);
        for (key, value) in &self.fields {
            out.push(',');
            json::write_str(&mut out, key);
            out.push(':');
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) => json::write_f64(&mut out, *v),
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                FieldValue::Str(v) => json::write_str(&mut out, v),
            }
        }
        out.push('}');
        out
    }
}

/// A telemetry backend: receives every emitted [`Event`].
///
/// Implementations must be cheap and non-blocking where possible; they
/// are called from solver hot paths (only when the handle is enabled).
pub trait TelemetrySink: Send + Sync + std::fmt::Debug {
    /// Whether emit sites should bother constructing events at all.
    ///
    /// [`NoopSink`] returns `false`, which makes a handle carrying it
    /// behave exactly like [`Telemetry::disabled`].
    fn active(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file-backed sinks.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every event and reports itself inactive, so emit sites
/// skip event construction entirely. Equivalent to
/// [`Telemetry::disabled`] in cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn active(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// In-memory recorder, mainly for tests and the overhead benchmark.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// A snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of recorded events of one kind.
    pub fn count_kind(&self, kind: EventKind) -> usize {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .iter()
            .filter(|e| e.kind == kind)
            .count()
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// JSON-lines file writer: one event per line, buffered.
///
/// Write errors after creation are counted rather than panicking (the
/// simulation should not die because a trace disk filled up); call
/// [`JsonlSink::flush`] / check [`JsonlSink::write_errors`] at the end
/// of a run.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    lines: AtomicU64,
    errors: AtomicU64,
    flush_every: u64,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            lines: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            flush_every: 0,
        })
    }

    /// Flushes the writer every `n` recorded events (`0` disables —
    /// the default), so a tailing reader (`tg-obs watch`) sees fresh
    /// events instead of waiting for the run's final flush. Small `n`
    /// trades syscalls for latency; the buffered write itself stays
    /// batched.
    #[must_use]
    pub fn flush_every(mut self, n: u64) -> Self {
        self.flush_every = n;
        self
    }

    /// Number of lines successfully handed to the writer.
    pub fn lines_written(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }

    /// Number of write failures since creation.
    pub fn write_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        let mut writer = self.writer.lock().expect("jsonl sink poisoned");
        match writer.write_all(line.as_bytes()) {
            Ok(()) => {
                let written = self.lines.fetch_add(1, Ordering::Relaxed) + 1;
                if self.flush_every > 0 && written.is_multiple_of(self.flush_every) {
                    let _ = writer.flush();
                }
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("jsonl sink poisoned").flush()
    }
}

impl Drop for JsonlSink {
    /// Flushes the buffered tail so a run that crashes (or simply
    /// forgets the final flush) still leaves a parseable trace on disk.
    /// `BufWriter`'s own drop-flush swallows nothing extra here, but it
    /// never runs at all when the mutex was poisoned by a panicking
    /// writer thread — recover the guard and flush anyway. Errors are
    /// deliberately ignored: drop during unwind must not double-panic.
    fn drop(&mut self) {
        match self.writer.lock() {
            Ok(mut writer) => {
                let _ = writer.flush();
            }
            Err(poisoned) => {
                let _ = poisoned.into_inner().flush();
            }
        }
    }
}

/// Forwards every event to each of several sinks (e.g. a JSONL file
/// plus a [`MetricsSink`]).
#[derive(Debug, Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TelemetrySink>>,
}

impl FanoutSink {
    /// Builds a fanout over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TelemetrySink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl TelemetrySink for FanoutSink {
    fn active(&self) -> bool {
        self.sinks.iter().any(|s| s.active())
    }

    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) -> io::Result<()> {
        for sink in &self.sinks {
            sink.flush()?;
        }
        Ok(())
    }
}

/// Counts events passing through to an inner sink — the sweep executor
/// wraps the shared trace sink per cell to attribute event counts in
/// the run manifest.
#[derive(Debug)]
pub struct CountingSink {
    inner: Arc<dyn TelemetrySink>,
    count: AtomicU64,
}

impl CountingSink {
    /// Wraps `inner`.
    pub fn new(inner: Arc<dyn TelemetrySink>) -> Self {
        CountingSink {
            inner,
            count: AtomicU64::new(0),
        }
    }

    /// Number of events seen so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl TelemetrySink for CountingSink {
    fn active(&self) -> bool {
        self.inner.active()
    }

    fn record(&self, event: &Event) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.record(event);
    }

    fn flush(&self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Feeds counter/gauge/histogram events into a [`MetricsRegistry`] so a
/// run can print an aggregate summary table without replaying the trace.
#[derive(Debug)]
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
}

impl MetricsSink {
    /// Builds a sink updating `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        MetricsSink { registry }
    }
}

impl TelemetrySink for MetricsSink {
    fn record(&self, event: &Event) {
        match event.kind {
            EventKind::Counter => {
                let delta = event
                    .fields
                    .iter()
                    .find_map(|(k, v)| match (k.as_ref(), v) {
                        ("delta", FieldValue::U64(d)) => Some(*d),
                        _ => None,
                    })
                    .unwrap_or(1);
                self.registry.add_counter(&event.name, delta);
            }
            EventKind::Gauge | EventKind::Histogram => {
                if let Some(value) = event
                    .fields
                    .iter()
                    .find_map(|(k, v)| match (k.as_ref(), v) {
                        ("value", FieldValue::F64(x)) => Some(*x),
                        _ => None,
                    })
                {
                    self.registry.observe(&event.name, value);
                }
            }
            _ => {}
        }
    }
}

struct TelemetryInner {
    sink: Arc<dyn TelemetrySink>,
    epoch: Instant,
    active: bool,
    /// Track (worker/cell lane) id stamped on every event; 0 is the
    /// run-level default track and is omitted from the wire format so
    /// single-track traces stay byte-compatible with older readers.
    track: u64,
}

impl std::fmt::Debug for TelemetryInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryInner")
            .field("active", &self.active)
            .field("track", &self.track)
            .finish_non_exhaustive()
    }
}

/// A cheap, cloneable handle every instrumented component holds.
///
/// The default handle is disabled: emit methods check one flag and
/// return without constructing anything, so instrumentation costs
/// nothing on hot paths unless a sink is installed.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// The zero-overhead disabled handle (also `Telemetry::default()`).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A handle emitting into `sink`; the epoch (t = 0) is now.
    ///
    /// If the sink reports itself [inactive](TelemetrySink::active)
    /// (e.g. [`NoopSink`]) the handle behaves like
    /// [`Telemetry::disabled`]: no events are constructed.
    pub fn with_sink(sink: Arc<dyn TelemetrySink>) -> Self {
        Telemetry::with_sink_tracked(sink, 0)
    }

    /// Like [`Telemetry::with_sink`], but every event carries a
    /// `"track"` field identifying the worker/cell lane it came from.
    /// Track 0 is the run-level default and emits no field, so existing
    /// single-track traces are unchanged; sweep workers take tracks
    /// 1.. so trace consumers (the profiler, the Chrome-trace exporter)
    /// can pair and lay out spans per worker.
    pub fn with_sink_tracked(sink: Arc<dyn TelemetrySink>, track: u64) -> Self {
        let active = sink.active();
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                sink,
                epoch: Instant::now(),
                active,
                track,
            })),
        }
    }

    /// The track id events from this handle carry (0 when disabled or
    /// untracked).
    pub fn track(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.track)
    }

    /// A handle plus the in-memory recorder behind it, for tests.
    pub fn recorder() -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::default());
        (Telemetry::with_sink(sink.clone()), sink)
    }

    /// Whether events will actually be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(&self.inner, Some(inner) if inner.active)
    }

    /// Seconds since the handle's epoch (0.0 when disabled).
    pub fn now_s(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Flushes the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file-backed sinks.
    pub fn flush(&self) -> io::Result<()> {
        match &self.inner {
            Some(inner) => inner.sink.flush(),
            None => Ok(()),
        }
    }

    fn send(
        &self,
        kind: EventKind,
        name: Cow<'static, str>,
        mut fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if let Some(inner) = &self.inner {
            if inner.active {
                if inner.track > 0 {
                    fields.push((Cow::Borrowed("track"), FieldValue::U64(inner.track)));
                }
                let event = Event {
                    t_s: inner.epoch.elapsed().as_secs_f64(),
                    kind,
                    name,
                    fields,
                };
                inner.sink.record(&event);
            }
        }
    }

    /// Emits a counter increment.
    pub fn counter(&self, name: &'static str, delta: u64) {
        if self.is_enabled() {
            self.send(
                EventKind::Counter,
                Cow::Borrowed(name),
                vec![(Cow::Borrowed("delta"), FieldValue::U64(delta))],
            );
        }
    }

    /// Emits an instantaneous gauge sample.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if self.is_enabled() {
            self.send(
                EventKind::Gauge,
                Cow::Borrowed(name),
                vec![(Cow::Borrowed("value"), FieldValue::F64(value))],
            );
        }
    }

    /// Emits a histogram observation.
    pub fn histogram(&self, name: &'static str, value: f64) {
        if self.is_enabled() {
            self.send(
                EventKind::Histogram,
                Cow::Borrowed(name),
                vec![(Cow::Borrowed("value"), FieldValue::F64(value))],
            );
        }
    }

    /// Emits a solver-convergence event (iteration count + residual).
    pub fn solve(&self, name: &'static str, iterations: usize, residual: f64) {
        if self.is_enabled() {
            self.send(
                EventKind::Solve,
                Cow::Borrowed(name),
                vec![
                    (Cow::Borrowed("iters"), FieldValue::U64(iterations as u64)),
                    (Cow::Borrowed("residual"), FieldValue::F64(residual)),
                ],
            );
        }
    }

    /// Emits a solver-convergence event annotated with the backend that
    /// produced it and the factor/solve wall-time split — the direct
    /// solver reports its (possibly zero, when cached) factorization time
    /// separately from the triangular solves; iterative backends report
    /// `factor_s = 0`.
    pub fn solve_timed(
        &self,
        name: &'static str,
        iterations: usize,
        residual: f64,
        backend: &'static str,
        factor_s: f64,
        solve_s: f64,
    ) {
        if self.is_enabled() {
            self.send(
                EventKind::Solve,
                Cow::Borrowed(name),
                vec![
                    (Cow::Borrowed("iters"), FieldValue::U64(iterations as u64)),
                    (Cow::Borrowed("residual"), FieldValue::F64(residual)),
                    (
                        Cow::Borrowed("backend"),
                        FieldValue::Str(backend.to_string()),
                    ),
                    (Cow::Borrowed("factor_s"), FieldValue::F64(factor_s)),
                    (Cow::Borrowed("solve_s"), FieldValue::F64(solve_s)),
                ],
            );
        }
    }

    /// Starts building an event of arbitrary kind; finish with
    /// [`EventBuilder::emit`]. No-op (and allocation-free) when the
    /// handle is disabled.
    pub fn event(&self, kind: EventKind, name: &'static str) -> EventBuilder<'_> {
        EventBuilder {
            telemetry: self,
            event: if self.is_enabled() {
                Some((kind, Cow::Borrowed(name), Vec::new()))
            } else {
                None
            },
        }
    }

    /// Opens a span; the returned guard emits the matching
    /// [`EventKind::SpanEnd`] (with a `dur_s` field) when dropped.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if self.is_enabled() {
            self.send(EventKind::SpanStart, Cow::Borrowed(name), Vec::new());
            SpanGuard {
                telemetry: self.clone(),
                name,
                started: Some(Instant::now()),
            }
        } else {
            SpanGuard {
                telemetry: Telemetry::disabled(),
                name,
                started: None,
            }
        }
    }
}

/// The in-flight payload of an [`EventBuilder`]: kind, name, and the
/// fields accumulated so far.
type PendingEvent = (
    EventKind,
    Cow<'static, str>,
    Vec<(Cow<'static, str>, FieldValue)>,
);

/// Incremental builder returned by [`Telemetry::event`].
#[derive(Debug)]
pub struct EventBuilder<'a> {
    telemetry: &'a Telemetry,
    event: Option<PendingEvent>,
}

impl EventBuilder<'_> {
    fn push(mut self, key: &'static str, value: FieldValue) -> Self {
        if let Some((_, _, fields)) = &mut self.event {
            fields.push((Cow::Borrowed(key), value));
        }
        self
    }

    /// Attaches an unsigned-integer field.
    pub fn field_u64(self, key: &'static str, value: u64) -> Self {
        self.push(key, FieldValue::U64(value))
    }

    /// Attaches a signed-integer field.
    pub fn field_i64(self, key: &'static str, value: i64) -> Self {
        self.push(key, FieldValue::I64(value))
    }

    /// Attaches a floating-point field.
    pub fn field_f64(self, key: &'static str, value: f64) -> Self {
        self.push(key, FieldValue::F64(value))
    }

    /// Attaches a boolean field.
    pub fn field_bool(self, key: &'static str, value: bool) -> Self {
        self.push(key, FieldValue::Bool(value))
    }

    /// Attaches a string field (only evaluated when enabled if the
    /// caller guards with [`Telemetry::is_enabled`]).
    pub fn field_str(self, key: &'static str, value: impl Into<String>) -> Self {
        self.push(key, FieldValue::Str(value.into()))
    }

    /// Emits the built event (no-op when the handle is disabled).
    pub fn emit(self) {
        if let Some((kind, name, fields)) = self.event {
            self.telemetry.send(kind, name, fields);
        }
    }
}

/// RAII guard emitting a span-end event on drop; see [`Telemetry::span`].
#[derive(Debug)]
pub struct SpanGuard {
    telemetry: Telemetry,
    name: &'static str,
    started: Option<Instant>,
}

impl SpanGuard {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            self.telemetry.send(
                EventKind::SpanEnd,
                Cow::Borrowed(self.name),
                vec![(
                    Cow::Borrowed("dur_s"),
                    FieldValue::F64(started.elapsed().as_secs_f64()),
                )],
            );
        }
    }
}

/// Aggregate of one histogram metric: count, sum, min, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSummary {
    /// An empty summary (count 0).
    pub fn new() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary in.
    pub fn merge(&mut self, other: &HistogramSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for HistogramSummary {
    fn default() -> Self {
        HistogramSummary::new()
    }
}

/// Thread-safe named counters and histogram summaries.
///
/// Names are kept in first-insertion order so rendered tables are
/// deterministic for a deterministic event stream.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn add_counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(entry) = inner.counters.iter_mut().find(|(n, _)| n == name) {
            entry.1 += delta;
        } else {
            inner.counters.push((name.to_string(), delta));
        }
    }

    /// Folds one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(entry) = inner.histograms.iter_mut().find(|(n, _)| n == name) {
            entry.1.observe(value);
        } else {
            let mut summary = HistogramSummary::new();
            summary.observe(value);
            inner.histograms.push((name.to_string(), summary));
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Summary of a histogram, when any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    /// Snapshot of all counters in insertion order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .counters
            .clone()
    }

    /// Snapshot of all histograms in insertion order.
    pub fn histograms(&self) -> Vec<(String, HistogramSummary)> {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .histograms
            .clone()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.is_empty() && inner.histograms.is_empty()
    }

    /// Merges a snapshot of `other` into `self`.
    pub fn merge(&self, other: &MetricsRegistry) {
        let (counters, histograms) = {
            let inner = other.inner.lock().expect("metrics registry poisoned");
            (inner.counters.clone(), inner.histograms.clone())
        };
        for (name, delta) in counters {
            self.add_counter(&name, delta);
        }
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        for (name, summary) in histograms {
            if let Some(entry) = inner.histograms.iter_mut().find(|(n, _)| *n == name) {
                entry.1.merge(&summary);
            } else {
                inner.histograms.push((name, summary));
            }
        }
    }

    /// Renders the counter table then the histogram table, one metric
    /// per line — the summary `experiments::report` prints next to the
    /// phase table.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        if !inner.counters.is_empty() {
            out.push_str(&format!("{:<28} {:>12}\n", "counter", "total"));
            for (name, value) in &inner.counters {
                out.push_str(&format!("{name:<28} {value:>12}\n"));
            }
        }
        if !inner.histograms.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
                "histogram", "count", "mean", "min", "max"
            ));
            for (name, s) in &inner.histograms {
                out.push_str(&format!(
                    "{:<28} {:>8} {:>12.4e} {:>12.4e} {:>12.4e}\n",
                    name,
                    s.count,
                    s.mean(),
                    s.min,
                    s.max
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.counter("a", 1);
        tel.gauge("b", 2.0);
        tel.histogram("c", 3.0);
        tel.solve("d", 4, 1e-9);
        tel.event(EventKind::Gating, "e").field_u64("k", 1).emit();
        let span = tel.span("f");
        span.finish();
        assert_eq!(tel.now_s(), 0.0);
        tel.flush().expect("noop flush");
    }

    #[test]
    fn noop_sink_handle_is_disabled() {
        let tel = Telemetry::with_sink(Arc::new(NoopSink));
        assert!(!tel.is_enabled());
    }

    #[test]
    fn memory_sink_records_all_emit_shapes() {
        let (tel, sink) = Telemetry::recorder();
        assert!(tel.is_enabled());
        {
            let _span = tel.span("phase");
            tel.counter("steps", 7);
            tel.gauge("temp_c", 81.5);
            tel.histogram("residual", 1e-8);
            tel.solve("cg", 12, 1e-10);
            tel.event(EventKind::Emergency, "check")
                .field_u64("domains", 2)
                .field_bool("any", true)
                .field_f64("worst", 0.06)
                .field_str("policy", "oracvt")
                .emit();
        }
        let events = sink.events();
        assert_eq!(events.len(), 7);
        assert_eq!(sink.count_kind(EventKind::SpanStart), 1);
        assert_eq!(sink.count_kind(EventKind::SpanEnd), 1);
        assert_eq!(sink.count_kind(EventKind::Emergency), 1);
        let end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd)
            .expect("span end recorded");
        assert_eq!(end.name, "phase");
        assert!(matches!(end.fields[0], (ref k, FieldValue::F64(d)) if k == "dur_s" && d >= 0.0));
        let mut last_t = 0.0;
        for event in &events {
            assert!(event.t_s >= last_t);
            last_t = event.t_s;
        }
    }

    #[test]
    fn event_json_is_parseable_and_escaped() {
        let (tel, sink) = Telemetry::recorder();
        tel.event(EventKind::Progress, "cell")
            .field_str("label", "fft-\"quoted\"\n")
            .field_u64("index", 3)
            .field_f64("nan", f64::NAN)
            .emit();
        let line = sink.events()[0].to_json();
        let value = json::parse(&line).expect("event json parses");
        assert_eq!(
            value.get("kind").and_then(json::JsonValue::as_str),
            Some("progress")
        );
        assert_eq!(
            value.get("label").and_then(json::JsonValue::as_str),
            Some("fft-\"quoted\"\n")
        );
        assert_eq!(
            value.get("index").and_then(json::JsonValue::as_f64),
            Some(3.0)
        );
        assert!(value.get("nan").expect("nan field present").is_null());
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }

    #[test]
    fn counting_and_fanout_sinks_compose() {
        let mem_a = Arc::new(MemorySink::default());
        let mem_b = Arc::new(MemorySink::default());
        let fan = Arc::new(FanoutSink::new(vec![mem_a.clone(), mem_b.clone()]));
        let counting = Arc::new(CountingSink::new(fan));
        let tel = Telemetry::with_sink(counting.clone());
        tel.counter("x", 1);
        tel.counter("x", 2);
        assert_eq!(counting.count(), 2);
        assert_eq!(mem_a.len(), 2);
        assert_eq!(mem_b.len(), 2);
    }

    #[test]
    fn metrics_sink_aggregates_counters_and_histograms() {
        let registry = Arc::new(MetricsRegistry::new());
        let tel = Telemetry::with_sink(Arc::new(MetricsSink::new(registry.clone())));
        tel.counter("engine.steps", 100);
        tel.counter("engine.steps", 50);
        tel.histogram("noise.pct", 1.0);
        tel.histogram("noise.pct", 3.0);
        tel.gauge("thermal.max_c", 85.0);
        assert_eq!(registry.counter("engine.steps"), 150);
        let h = registry.histogram("noise.pct").expect("histogram exists");
        assert_eq!(h.count, 2);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        let g = registry.histogram("thermal.max_c").expect("gauge recorded");
        assert_eq!(g.count, 1);
        let table = registry.render();
        assert!(table.contains("engine.steps"));
        assert!(table.contains("noise.pct"));
    }

    #[test]
    fn registry_is_thread_safe() {
        let registry = Arc::new(MetricsRegistry::new());
        thread::scope(|scope| {
            for _ in 0..8 {
                let registry = registry.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        registry.add_counter("hits", 1);
                        registry.observe("vals", i as f64);
                    }
                });
            }
        });
        assert_eq!(registry.counter("hits"), 8000);
        let h = registry.histogram("vals").expect("histogram exists");
        assert_eq!(h.count, 8000);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 999.0);
    }

    #[test]
    fn registry_merge_sums_snapshots() {
        let a = MetricsRegistry::new();
        a.add_counter("c", 1);
        a.observe("h", 1.0);
        let b = MetricsRegistry::new();
        b.add_counter("c", 2);
        b.add_counter("only_b", 5);
        b.observe("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 5);
        let h = a.histogram("h").expect("histogram exists");
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 3.0);
    }

    #[test]
    fn sink_swapping_changes_destination() {
        let (tel_a, sink_a) = Telemetry::recorder();
        tel_a.counter("x", 1);
        // A component re-configured with a new handle writes to the new
        // sink only; the old recorder keeps its history.
        let (tel_b, sink_b) = Telemetry::recorder();
        tel_b.counter("x", 1);
        tel_b.counter("x", 1);
        assert_eq!(sink_a.len(), 1);
        assert_eq!(sink_b.len(), 2);
    }

    #[test]
    fn tracked_handle_stamps_every_event() {
        let sink = Arc::new(MemorySink::default());
        let tel = Telemetry::with_sink_tracked(sink.clone(), 3);
        assert_eq!(tel.track(), 3);
        tel.counter("x", 1);
        {
            let _span = tel.span("work");
        }
        for event in sink.events() {
            let track = event.fields.iter().find(|(k, _)| k == "track");
            assert!(
                matches!(track, Some((_, FieldValue::U64(3)))),
                "event {:?} missing track field",
                event.name
            );
        }
        // Track 0 (the default) stays off the wire entirely.
        let (tel0, sink0) = Telemetry::recorder();
        assert_eq!(tel0.track(), 0);
        tel0.counter("x", 1);
        assert!(sink0.events()[0].fields.iter().all(|(k, _)| k != "track"));
    }

    #[test]
    fn jsonl_sink_flushes_buffered_tail_on_drop() {
        let dir = std::env::temp_dir().join(format!(
            "tg_jsonl_drop_{}_{:?}",
            std::process::id(),
            thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("trace.jsonl");
        {
            let tel = Telemetry::with_sink(Arc::new(JsonlSink::create(&path).expect("create")));
            tel.counter("crash.test", 1);
            // No explicit flush: the event sits in the BufWriter.
        }
        let text = std::fs::read_to_string(&path).expect("trace readable after drop");
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("crash.test"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_sink_flush_every_makes_events_visible_mid_run() {
        let dir = std::env::temp_dir().join(format!(
            "tg_jsonl_flush_every_{}_{:?}",
            std::process::id(),
            thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::create(&path).expect("create").flush_every(4);
        let tel = Telemetry::with_sink(Arc::new(sink));
        for k in 0..10 {
            tel.counter("tick", k);
        }
        // 10 events with flush_every(4): the first 8 are on disk while
        // the run is still alive; the last 2 wait in the buffer.
        let text = std::fs::read_to_string(&path).expect("readable mid-run");
        assert_eq!(text.lines().count(), 8);
        drop(tel);
        let text = std::fs::read_to_string(&path).expect("readable after drop");
        assert_eq!(text.lines().count(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_sink_survives_panic_unwind_with_parseable_trace() {
        let dir = std::env::temp_dir().join(format!(
            "tg_jsonl_panic_{}_{:?}",
            std::process::id(),
            thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("trace.jsonl");
        let tel = Telemetry::with_sink(Arc::new(JsonlSink::create(&path).expect("create")));
        let worker = tel.clone();
        let crashed = thread::spawn(move || {
            worker.counter("before.panic", 1);
            panic!("simulated mid-run crash");
        })
        .join();
        assert!(crashed.is_err(), "worker thread must have panicked");
        drop(tel); // last handle: the sink's Drop flush runs here
        let text = std::fs::read_to_string(&path).expect("trace readable after crash");
        assert!(text.contains("before.panic"));
        for line in text.lines() {
            json::parse(line).expect("every flushed line parses");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_handle_accepts_events_from_many_threads() {
        let (tel, sink) = Telemetry::recorder();
        thread::scope(|scope| {
            for t in 0..4 {
                let tel = tel.clone();
                scope.spawn(move || {
                    for _ in 0..250 {
                        tel.counter("thread.events", t + 1);
                    }
                });
            }
        });
        assert_eq!(sink.len(), 1000);
    }
}
