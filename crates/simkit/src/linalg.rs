//! Sparse linear algebra for the thermal RC network and PDN solvers.
//!
//! The thermal model discretises the die into a grid whose conductance
//! matrix is sparse, symmetric, and positive definite; the PDN's grid
//! conductance matrix has the same structure. Two solvers cover both:
//!
//! * [`CsrMatrix::solve_cg`] — conjugate gradient with Jacobi
//!   preconditioning, for steady-state solves;
//! * [`CsrMatrix::solve_gauss_seidel`] — Gauss–Seidel sweeps with optional
//!   successive over-relaxation, for backward-Euler transient steps where
//!   an excellent initial guess (the previous step) is available.

use crate::error::{Error, Result};

/// Dense vector helpers used by the solvers.
pub mod vec_ops {
    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when lengths differ.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Euclidean norm.
    pub fn norm(a: &[f64]) -> f64 {
        dot(a, a).sqrt()
    }

    /// `y ← y + alpha·x`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when lengths differ.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Maximum absolute difference between two vectors.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when lengths differ.
    pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// Builder that accumulates `(row, col, value)` triplets; duplicate
/// coordinates are summed, which makes assembling finite-difference
/// stencils convenient.
///
/// # Examples
///
/// ```
/// use simkit::linalg::TripletBuilder;
///
/// let mut b = TripletBuilder::new(2, 2);
/// b.add(0, 0, 2.0);
/// b.add(0, 0, 1.0); // accumulates to 3.0
/// b.add(1, 1, 4.0);
/// let m = b.build();
/// assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// Creates a builder for an `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; repeated coordinates accumulate.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "triplet out of bounds");
        self.entries.push((row, col, value));
    }

    /// Assembles the CSR matrix.
    pub fn build(mut self) -> CsrMatrix {
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut current_row = 0;
        for (r, c, v) in self.entries {
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            if let (Some(&last_c), Some(last_v)) = (col_idx.last(), values.last_mut()) {
                if row_ptr.len() - 1 == r && last_c == c && row_ptr[r] < col_idx.len() {
                    *last_v += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 1.0);
        }
        b.build()
    }

    /// Value at `(row, col)`; zero when the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let range = self.row_ptr[row]..self.row_ptr[row + 1];
        for k in range {
            if self.col_idx[k] == col {
                return self.values[k];
            }
        }
        0.0
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(Error::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        Ok(y)
    }

    /// Matrix-vector product writing into a caller-provided buffer
    /// (avoids allocation inside solver loops).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when dimensions do not match.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        for (row, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *out = acc;
        }
    }

    /// Iterates the stored `(column, value)` entries of one row.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row out of bounds");
        let range = self.row_ptr[row]..self.row_ptr[row + 1];
        range.map(move |k| (self.col_idx[k], self.values[k]))
    }

    /// Iterates every stored `(row, column, value)` entry.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |row| {
            self.row_entries(row).map(move |(col, val)| (row, col, val))
        })
    }

    /// Extracts the diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Solves `A·x = b` by preconditioned conjugate gradient. `A` must be
    /// symmetric positive definite (true for grid conductance matrices with
    /// a grounding/ambient connection on every diagonal).
    ///
    /// `x0` seeds the iteration when provided.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] — `b` length differs from `rows`;
    /// * [`Error::SingularMatrix`] — a zero diagonal entry defeats the
    ///   Jacobi preconditioner;
    /// * [`Error::NonConverged`] — tolerance not met in `max_iter`.
    pub fn solve_cg(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
        tolerance: f64,
        max_iter: usize,
    ) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(Error::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let diag = self.diagonal();
        if let Some(i) = diag.iter().position(|&d| d == 0.0) {
            return Err(Error::SingularMatrix { index: i });
        }
        let n = self.rows;
        let mut x = match x0 {
            Some(seed) if seed.len() == n => seed.to_vec(),
            _ => vec![0.0; n],
        };
        let mut r = vec![0.0; n];
        self.mul_vec_into(&x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let b_norm = vec_ops::norm(b).max(f64::MIN_POSITIVE);
        if vec_ops::norm(&r) / b_norm <= tolerance {
            return Ok(x);
        }
        let mut z: Vec<f64> = r.iter().zip(&diag).map(|(ri, di)| ri / di).collect();
        let mut p = z.clone();
        let mut rz = vec_ops::dot(&r, &z);
        let mut ap = vec![0.0; n];
        for iteration in 0..max_iter {
            self.mul_vec_into(&p, &mut ap);
            let denom = vec_ops::dot(&p, &ap);
            if denom.abs() < f64::MIN_POSITIVE {
                return Err(Error::NonConverged {
                    iterations: iteration,
                    residual: vec_ops::norm(&r) / b_norm,
                });
            }
            let alpha = rz / denom;
            vec_ops::axpy(alpha, &p, &mut x);
            vec_ops::axpy(-alpha, &ap, &mut r);
            let rel = vec_ops::norm(&r) / b_norm;
            if rel <= tolerance {
                return Ok(x);
            }
            for i in 0..n {
                z[i] = r[i] / diag[i];
            }
            let rz_new = vec_ops::dot(&r, &z);
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        Err(Error::NonConverged {
            iterations: max_iter,
            residual: vec_ops::norm(&r) / b_norm,
        })
    }

    /// Solves `A·x = b` in place by Gauss–Seidel sweeps with relaxation
    /// factor `omega` (1.0 = plain Gauss–Seidel; 1 < ω < 2 = SOR).
    /// Converges for the diagonally dominant matrices our grids produce and
    /// is very fast when `x` starts near the solution.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] — vector lengths differ from `rows`;
    /// * [`Error::SingularMatrix`] — zero diagonal entry;
    /// * [`Error::NonConverged`] — update norm still above `tolerance`
    ///   after `max_sweeps`.
    pub fn solve_gauss_seidel(
        &self,
        b: &[f64],
        x: &mut [f64],
        omega: f64,
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<usize> {
        if b.len() != self.rows {
            return Err(Error::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        if x.len() != self.rows {
            return Err(Error::DimensionMismatch {
                expected: self.rows,
                actual: x.len(),
            });
        }
        for sweep in 0..max_sweeps {
            let mut max_update = 0.0f64;
            for row in 0..self.rows {
                let mut sigma = 0.0;
                let mut diag = 0.0;
                for k in self.row_ptr[row]..self.row_ptr[row + 1] {
                    let col = self.col_idx[k];
                    if col == row {
                        diag = self.values[k];
                    } else {
                        sigma += self.values[k] * x[col];
                    }
                }
                if diag == 0.0 {
                    return Err(Error::SingularMatrix { index: row });
                }
                let gs = (b[row] - sigma) / diag;
                let new = (1.0 - omega) * x[row] + omega * gs;
                max_update = max_update.max((new - x[row]).abs());
                x[row] = new;
            }
            if max_update <= tolerance {
                return Ok(sweep + 1);
            }
        }
        Err(Error::NonConverged {
            iterations: max_sweeps,
            residual: f64::NAN,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small SPD matrix: tridiagonal [−1, 2.5, −1].
    fn tridiag(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.5);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn triplets_accumulate_duplicates() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 1, 1.5);
        b.add(0, 1, 0.5);
        b.add(1, 0, -1.0);
        let m = b.build();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn identity_mul_is_noop() {
        let m = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.mul_vec(&x).unwrap(), x);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = tridiag(3);
        // [2.5 -1 0; -1 2.5 -1; 0 -1 2.5] * [1 2 3] = [0.5, 1.0, 5.5]
        let y = m.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert!((y[0] - 0.5).abs() < 1e-12);
        assert!((y[1] - 1.0).abs() < 1e-12);
        assert!((y[2] - 5.5).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_rejects_wrong_length() {
        let m = tridiag(3);
        assert!(matches!(
            m.mul_vec(&[1.0]),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cg_solves_spd_system() {
        let n = 50;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let x = m.solve_cg(&b, None, 1e-12, 1000).unwrap();
        assert!(vec_ops::max_abs_diff(&x, &x_true) < 1e-8);
    }

    #[test]
    fn cg_uses_initial_guess() {
        let n = 30;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b = m.mul_vec(&x_true).unwrap();
        // Exact initial guess converges immediately.
        let x = m.solve_cg(&b, Some(&x_true), 1e-10, 1).unwrap();
        assert!(vec_ops::max_abs_diff(&x, &x_true) < 1e-9);
    }

    #[test]
    fn cg_detects_zero_diagonal() {
        let mut b = TripletBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        // Row 1 has no diagonal entry.
        b.add(1, 0, 1.0);
        let m = b.build();
        assert!(matches!(
            m.solve_cg(&[1.0, 1.0], None, 1e-10, 10),
            Err(Error::SingularMatrix { index: 1 })
        ));
    }

    #[test]
    fn cg_reports_non_convergence() {
        let m = tridiag(100);
        let b = vec![1.0; 100];
        let err = m.solve_cg(&b, None, 1e-15, 1).unwrap_err();
        assert!(matches!(err, Error::NonConverged { .. }));
    }

    #[test]
    fn gauss_seidel_solves_diagonally_dominant() {
        let n = 40;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let mut x = vec![0.0; n];
        let sweeps = m
            .solve_gauss_seidel(&b, &mut x, 1.0, 1e-12, 10_000)
            .unwrap();
        assert!(sweeps > 0);
        assert!(vec_ops::max_abs_diff(&x, &x_true) < 1e-8);
    }

    #[test]
    fn sor_converges_faster_than_gs() {
        // 1-D Laplacian [-1, 2, -1]: Gauss–Seidel is slow, SOR with a
        // near-optimal relaxation factor is dramatically faster.
        let n = 60;
        let mut builder = TripletBuilder::new(n, n);
        for i in 0..n {
            builder.add(i, i, 2.0);
            if i > 0 {
                builder.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                builder.add(i, i + 1, -1.0);
            }
        }
        let m = builder.build();
        let b = vec![1.0; n];
        let omega_opt = 2.0 / (1.0 + (std::f64::consts::PI / (n as f64 + 1.0)).sin());
        let mut x_gs = vec![0.0; n];
        let mut x_sor = vec![0.0; n];
        let gs = m
            .solve_gauss_seidel(&b, &mut x_gs, 1.0, 1e-8, 1_000_000)
            .unwrap();
        let sor = m
            .solve_gauss_seidel(&b, &mut x_sor, omega_opt, 1e-8, 1_000_000)
            .unwrap();
        assert!(sor < gs, "SOR {sor} sweeps vs GS {gs}");
        assert!(vec_ops::max_abs_diff(&x_gs, &x_sor) < 1e-4);
    }

    #[test]
    fn gauss_seidel_warm_start_is_cheap() {
        let n = 40;
        let m = tridiag(n);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
        let b = m.mul_vec(&x_true).unwrap();
        let mut x = x_true.clone();
        let sweeps = m.solve_gauss_seidel(&b, &mut x, 1.0, 1e-12, 100).unwrap();
        assert!(sweeps <= 2, "warm start took {sweeps} sweeps");
    }

    #[test]
    fn vec_ops_behave() {
        assert_eq!(vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((vec_ops::norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut y = vec![1.0, 1.0];
        vec_ops::axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert_eq!(vec_ops::max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut b = TripletBuilder::new(3, 3);
        b.add(0, 0, 1.0);
        b.add(2, 2, 1.0);
        let m = b.build();
        let y = m.mul_vec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }
}
