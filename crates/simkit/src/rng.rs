//! Deterministic random number generation.
//!
//! Experiments in this workspace must be reproducible bit-for-bit, so
//! nothing uses ambient randomness. [`DeterministicRng`] is a small
//! xoshiro256++ generator seeded through SplitMix64 — the standard
//! construction recommended by the xoshiro authors. It is *not*
//! cryptographically secure and does not need to be.
//!
//! # Examples
//!
//! ```
//! use simkit::DeterministicRng;
//!
//! let mut a = DeterministicRng::new(42);
//! let mut b = DeterministicRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.uniform_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```

/// A seeded xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicRng {
    state: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    gauss_spare: Option<u64>,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created from the same seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state, which
        // guards against the all-zero state xoshiro cannot escape.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next_sm(), next_sm(), next_sm(), next_sm()];
        DeterministicRng {
            state,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; useful to give each
    /// benchmark / functional unit its own stream without coupling their
    /// sequences.
    pub fn fork(&mut self, stream: u64) -> Self {
        let mix = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        DeterministicRng::new(mix)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform_range requires lo <= hi");
        lo + (hi - lo) * self.uniform_f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize(0) has no valid output");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi as usize;
            }
        }
    }

    /// Standard normal sample (mean 0, standard deviation 1) via the
    /// Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        if let Some(spare_bits) = self.gauss_spare.take() {
            return f64::from_bits(spare_bits);
        }
        // Draw u1 in (0, 1] so ln(u1) is finite.
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some((r * theta.sin()).to_bits());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_usize(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(7);
        let mut b = DeterministicRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = DeterministicRng::new(3);
        for _ in 0..10_000 {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut rng = DeterministicRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn uniform_usize_covers_all_buckets() {
        let mut rng = DeterministicRng::new(5);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.uniform_usize(7)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 8_000, "bucket {i} undersampled: {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = DeterministicRng::new(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn normal_with_scales_and_shifts() {
        let mut rng = DeterministicRng::new(17);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.normal_with(10.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = DeterministicRng::new(23);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = DeterministicRng::new(29);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.bernoulli(2.0));
        assert!(!rng.bernoulli(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DeterministicRng::new(31);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = DeterministicRng::new(99);
        let mut parent2 = DeterministicRng::new(99);
        let mut c1 = parent1.fork(0);
        let mut c2 = parent2.fork(0);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent1.fork(1);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    #[should_panic(expected = "no valid output")]
    fn uniform_usize_zero_panics() {
        DeterministicRng::new(0).uniform_usize(0);
    }
}
