//! Statistics used across the workspace.
//!
//! Includes the coefficient of determination (R²) the paper uses to
//! calibrate ThermoGater's linear ΔT = θ·ΔP temperature predictor
//! (Eqn. 3), the weighted moving average its practical policies use to
//! forecast power demand, and generic summary helpers.

use crate::error::{Error, Result};

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance; `None` for an empty slice.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Maximum of a slice; `None` when empty. NaN entries are ignored.
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
}

/// Minimum of a slice; `None` when empty. NaN entries are ignored.
pub fn min(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.min(v))))
}

/// Linear-interpolated percentile (`p` in `[0, 100]`).
///
/// Non-finite values (NaN, ±∞) are filtered out before ranking — trace
/// analyzers feed this arbitrary recorded data, so it must never panic.
/// Returns `None` when the slice is empty or holds no finite value.
///
/// # Panics
///
/// Panics in debug builds when `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    debug_assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Coefficient of determination between observations and predictions —
/// Eqn. 3 of the paper:
///
/// ```text
/// R² = 1 − Σ (obs_i − pred_i)² / Σ (obs_i − mean(obs))²
/// ```
///
/// A perfect prediction yields 1.0. The paper calibrates the per-regulator
/// θ values so this stays around 0.99.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] when the slices differ in length;
/// * [`Error::InvalidArgument`] when fewer than two observations are given
///   or the observations have zero variance (R² undefined).
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> Result<f64> {
    if observed.len() != predicted.len() {
        return Err(Error::DimensionMismatch {
            expected: observed.len(),
            actual: predicted.len(),
        });
    }
    if observed.len() < 2 {
        return Err(Error::invalid_argument(
            "R² needs at least two observations",
        ));
    }
    let obs_mean = mean(observed).expect("non-empty");
    let ss_tot: f64 = observed.iter().map(|o| (o - obs_mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return Err(Error::invalid_argument(
            "observations have zero variance; R² undefined",
        ));
    }
    let ss_res: f64 = observed
        .iter()
        .zip(predicted)
        .map(|(o, p)| (o - p).powi(2))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// Ordinary least squares fit of `y ≈ slope·x` (no intercept), the form of
/// the paper's ΔT = θ·ΔP model.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] when lengths differ;
/// * [`Error::InvalidArgument`] when `Σx²` is zero (slope undefined).
pub fn fit_proportional(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(Error::DimensionMismatch {
            expected: x.len(),
            actual: y.len(),
        });
    }
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    if sxx == 0.0 {
        return Err(Error::invalid_argument(
            "zero x energy; proportional fit undefined",
        ));
    }
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    Ok(sxy / sxx)
}

/// A weighted moving average forecaster over a fixed history window.
///
/// The paper's practical policies use a WMA over the last three decision
/// points (after Ardestani et al.) to anticipate the next interval's power
/// demand; weights grow linearly towards the most recent sample.
///
/// # Examples
///
/// ```
/// use simkit::stats::WeightedMovingAverage;
///
/// let mut wma = WeightedMovingAverage::new(3);
/// wma.observe(10.0);
/// wma.observe(20.0);
/// wma.observe(30.0);
/// // (1·10 + 2·20 + 3·30) / 6
/// assert!((wma.forecast().unwrap() - 140.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedMovingAverage {
    window: usize,
    history: Vec<f64>,
}

impl WeightedMovingAverage {
    /// Creates a forecaster averaging over the last `window` observations.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        WeightedMovingAverage {
            window,
            history: Vec::with_capacity(window),
        }
    }

    /// Records a new observation, discarding the oldest when the window is
    /// full.
    pub fn observe(&mut self, value: f64) {
        if self.history.len() == self.window {
            self.history.remove(0);
        }
        self.history.push(value);
    }

    /// Linearly weighted forecast; `None` until at least one observation
    /// has been recorded.
    pub fn forecast(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &v) in self.history.iter().enumerate() {
            let w = (i + 1) as f64;
            num += w * v;
            den += w;
        }
        Some(num / den)
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Clears the history.
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), Some(2.5));
        assert_eq!(variance(&v), Some(1.25));
        assert!((std_dev(&v).unwrap() - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(max(&v), Some(4.0));
        assert_eq!(min(&v), Some(1.0));
    }

    #[test]
    fn empty_statistics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn nan_ignored_in_extrema() {
        assert_eq!(max(&[1.0, f64::NAN, 3.0]), Some(3.0));
        assert_eq!(min(&[1.0, f64::NAN, 3.0]), Some(1.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
    }

    #[test]
    fn percentile_filters_non_finite_instead_of_panicking() {
        // Regression: this used to panic on the NaN partial_cmp.
        let v = [10.0, f64::NAN, 20.0, f64::INFINITY, 30.0, f64::NEG_INFINITY];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 50.0), Some(20.0));
        assert_eq!(percentile(&v, 100.0), Some(30.0));
    }

    #[test]
    fn percentile_all_non_finite_is_none() {
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), None);
        assert_eq!(percentile(&[f64::INFINITY], 99.0), None);
    }

    #[test]
    fn r_squared_perfect_prediction() {
        let obs = [1.0, 2.0, 3.0];
        assert!((r_squared(&obs, &obs).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn r_squared_mean_prediction_is_zero() {
        let obs = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&obs, &pred).unwrap().abs() < 1e-15);
    }

    #[test]
    fn r_squared_bad_prediction_is_negative() {
        let obs = [1.0, 2.0, 3.0];
        let pred = [3.0, 2.0, 1.0];
        assert!(r_squared(&obs, &pred).unwrap() < 0.0);
    }

    #[test]
    fn r_squared_errors() {
        assert!(r_squared(&[1.0, 2.0], &[1.0]).is_err());
        assert!(r_squared(&[1.0], &[1.0]).is_err());
        assert!(r_squared(&[5.0, 5.0], &[5.0, 5.0]).is_err());
    }

    #[test]
    fn proportional_fit_recovers_slope() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v).collect();
        assert!((fit_proportional(&x, &y).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn proportional_fit_least_squares_with_noise() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.1, 3.9, 6.0];
        let theta = fit_proportional(&x, &y).unwrap();
        assert!((theta - 2.0).abs() < 0.05, "theta {theta}");
    }

    #[test]
    fn proportional_fit_errors() {
        assert!(fit_proportional(&[1.0], &[1.0, 2.0]).is_err());
        assert!(fit_proportional(&[0.0, 0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn wma_single_observation() {
        let mut wma = WeightedMovingAverage::new(3);
        assert_eq!(wma.forecast(), None);
        assert!(wma.is_empty());
        wma.observe(5.0);
        assert_eq!(wma.forecast(), Some(5.0));
        assert_eq!(wma.len(), 1);
    }

    #[test]
    fn wma_weights_recent_samples_more() {
        let mut wma = WeightedMovingAverage::new(3);
        wma.observe(0.0);
        wma.observe(0.0);
        wma.observe(6.0);
        // (0 + 0 + 3·6)/6 = 3.0 — closer to the latest than plain mean 2.0.
        assert!((wma.forecast().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn wma_window_rolls() {
        let mut wma = WeightedMovingAverage::new(2);
        wma.observe(100.0);
        wma.observe(1.0);
        wma.observe(2.0);
        // Window now [1, 2]: (1·1 + 2·2)/3
        assert!((wma.forecast().unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(wma.len(), 2);
    }

    #[test]
    fn wma_reset_clears() {
        let mut wma = WeightedMovingAverage::new(2);
        wma.observe(1.0);
        wma.reset();
        assert_eq!(wma.forecast(), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn wma_zero_window_panics() {
        WeightedMovingAverage::new(0);
    }
}
