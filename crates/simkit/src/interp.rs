//! Piecewise-linear interpolation.
//!
//! Regulator efficiency curves (η vs. output current) are supplied as
//! breakpoint tables; [`PiecewiseLinear`] evaluates them with clamping at
//! the domain edges, which matches how data-sheet curves are used.

use crate::error::{Error, Result};

/// A piecewise-linear function defined by strictly increasing breakpoints.
///
/// # Examples
///
/// ```
/// use simkit::PiecewiseLinear;
///
/// let f = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 10.0), (2.0, 10.0)])?;
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(1.5), 10.0);
/// // Out-of-domain inputs clamp to the edge values.
/// assert_eq!(f.eval(-1.0), 0.0);
/// assert_eq!(f.eval(5.0), 10.0);
/// # Ok::<(), simkit::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Creates an interpolant from `(x, y)` breakpoints.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyDomain`] when no points are given;
    /// * [`Error::InvalidArgument`] when x values are not strictly
    ///   increasing or any coordinate is non-finite.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(Error::EmptyDomain);
        }
        for window in points.windows(2) {
            if window[1].0 <= window[0].0 {
                return Err(Error::invalid_argument(format!(
                    "x breakpoints must be strictly increasing ({} then {})",
                    window[0].0, window[1].0
                )));
            }
        }
        if points
            .iter()
            .any(|&(x, y)| !x.is_finite() || !y.is_finite())
        {
            return Err(Error::invalid_argument("non-finite breakpoint"));
        }
        Ok(PiecewiseLinear { points })
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Domain `[x_min, x_max]`.
    pub fn domain(&self) -> (f64, f64) {
        (self.points[0].0, self.points[self.points.len() - 1].0)
    }

    /// Evaluates the interpolant at `x`, clamping beyond the domain.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the bracketing segment.
        let idx = pts.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The x in the domain at which the interpolant attains its maximum
    /// value (maxima are always at breakpoints for piecewise-linear
    /// functions). Ties resolve to the smallest x.
    pub fn argmax(&self) -> (f64, f64) {
        let mut best = self.points[0];
        for &(x, y) in &self.points[1..] {
            if y > best.1 {
                best = (x, y);
            }
        }
        best
    }

    /// Builds a new interpolant with every x scaled by `sx` and every y by
    /// `sy` — used to re-calibrate a normalized efficiency curve to a
    /// particular regulator's current rating.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when `sx <= 0` (which would break
    /// monotonicity) or either factor is non-finite.
    pub fn scaled(&self, sx: f64, sy: f64) -> Result<PiecewiseLinear> {
        if sx <= 0.0 || !sx.is_finite() || !sy.is_finite() {
            return Err(Error::invalid_argument("invalid scale factors"));
        }
        PiecewiseLinear::new(self.points.iter().map(|&(x, y)| (x * sx, y * sy)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![(0.0, 0.0), (2.0, 4.0), (4.0, 0.0)]).unwrap()
    }

    #[test]
    fn interpolates_linearly() {
        let f = ramp();
        assert_eq!(f.eval(1.0), 2.0);
        assert_eq!(f.eval(3.0), 2.0);
        assert_eq!(f.eval(2.0), 4.0);
    }

    #[test]
    fn clamps_outside_domain() {
        let f = ramp();
        assert_eq!(f.eval(-10.0), 0.0);
        assert_eq!(f.eval(10.0), 0.0);
    }

    #[test]
    fn exact_breakpoints() {
        let f = ramp();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(4.0), 0.0);
    }

    #[test]
    fn argmax_finds_peak() {
        let f = ramp();
        assert_eq!(f.argmax(), (2.0, 4.0));
    }

    #[test]
    fn argmax_tie_takes_first() {
        let f = PiecewiseLinear::new(vec![(0.0, 1.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(f.argmax(), (1.0, 5.0));
    }

    #[test]
    fn single_point_is_constant() {
        let f = PiecewiseLinear::new(vec![(1.0, 7.0)]).unwrap();
        assert_eq!(f.eval(-5.0), 7.0);
        assert_eq!(f.eval(1.0), 7.0);
        assert_eq!(f.eval(100.0), 7.0);
        assert_eq!(f.domain(), (1.0, 1.0));
    }

    #[test]
    fn rejects_empty_and_unsorted() {
        assert_eq!(
            PiecewiseLinear::new(vec![]).unwrap_err(),
            Error::EmptyDomain
        );
        assert!(PiecewiseLinear::new(vec![(1.0, 0.0), (1.0, 1.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(2.0, 0.0), (1.0, 1.0)]).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        assert!(PiecewiseLinear::new(vec![(0.0, f64::NAN)]).is_err());
        assert!(PiecewiseLinear::new(vec![(f64::INFINITY, 1.0)]).is_err());
    }

    #[test]
    fn scaling_transforms_domain_and_range() {
        let f = ramp().scaled(2.0, 0.5).unwrap();
        assert_eq!(f.domain(), (0.0, 8.0));
        assert_eq!(f.eval(4.0), 2.0);
        assert_eq!(f.argmax(), (4.0, 2.0));
    }

    #[test]
    fn scaling_rejects_bad_factors() {
        assert!(ramp().scaled(0.0, 1.0).is_err());
        assert!(ramp().scaled(-1.0, 1.0).is_err());
        assert!(ramp().scaled(1.0, f64::NAN).is_err());
    }
}
