//! Foundation toolkit for the ThermoGater reproduction.
//!
//! `simkit` collects the domain-neutral machinery every other crate in the
//! workspace builds on:
//!
//! * [`units`] — zero-cost newtypes for physical quantities ([`Watts`],
//!   [`Celsius`], [`Amps`], …) so that module boundaries are type-safe;
//! * [`geometry`] — planar rectangles and points used by floorplans and
//!   grid discretisations;
//! * [`rng`] — a small, fully deterministic random number generator
//!   (SplitMix64 seeding + xoshiro256++ core) so every experiment is
//!   reproducible bit-for-bit without pulling thread-local state;
//! * [`series`] — uniformly sampled time series and multi-channel traces;
//! * [`linalg`] — dense vectors, CSR sparse matrices, and the iterative
//!   solvers (conjugate gradient, Gauss–Seidel/SOR) that the thermal RC
//!   network and the power-delivery-network models require;
//! * [`interp`] — piecewise-linear interpolation used for regulator
//!   efficiency curves;
//! * [`check`] — hand-rolled property-based testing (composable
//!   generators, automatic shrinking, and a persisted `.case` regression
//!   corpus) backing the repo's physics-invariant oracles;
//! * [`perf`] — wall-clock timers and per-phase accumulators so the
//!   engine can attribute its runtime to solver phases;
//! * [`stats`] — summary statistics, the coefficient of determination
//!   (R²) used to calibrate ThermoGater's ΔT = θ·ΔP predictor, and the
//!   weighted moving average the practical policies use to forecast power;
//! * [`telemetry`] — structured event tracing (spans, counters,
//!   histograms, gauges) with pluggable sinks, a thread-safe metrics
//!   registry, machine-readable run manifests, and streaming trace
//!   analytics ([`telemetry::analyze`]) for run summaries and diffs;
//! * [`error`] — the shared error type.
//!
//! # Examples
//!
//! ```
//! use simkit::units::{Watts, Celsius};
//! use simkit::stats::r_squared;
//!
//! let p = Watts::new(3.5) + Watts::new(1.5);
//! assert_eq!(p, Watts::new(5.0));
//!
//! let observed = [1.0, 2.0, 3.0];
//! let predicted = [1.0, 2.0, 3.0];
//! assert!((r_squared(&observed, &predicted).unwrap() - 1.0).abs() < 1e-12);
//!
//! let t = Celsius::new(80.0);
//! assert_eq!(t.to_kelvin(), 353.15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod error;
pub mod geometry;
pub mod interp;
pub mod linalg;
pub mod perf;
pub mod rng;
pub mod series;
pub mod stats;
pub mod telemetry;
pub mod units;

pub use error::{Error, Result};
pub use geometry::{Point, Rect};
pub use interp::PiecewiseLinear;
pub use rng::DeterministicRng;
pub use series::TimeSeries;
pub use units::{Amps, Celsius, Hertz, Joules, Meters, Ohms, Seconds, Volts, Watts};
