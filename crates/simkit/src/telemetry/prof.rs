//! Hierarchical self-profiler over the span event stream.
//!
//! Folds the `span_start`/`span_end` events of a JSONL telemetry trace
//! into an exact call tree per track (the run-level handle is track 0;
//! sweep workers emit `"track": n` on every event), with per-site call
//! counts and inclusive/exclusive wall time. Three renderings:
//!
//! * [`Profile::render_tree`] — the full call tree, indented, one line
//!   per site, deterministic for a given trace (children in first-
//!   appearance order);
//! * [`Profile::render_top`] — a flat `top`-style table aggregated
//!   across tracks. The default ranks by call count and prints **no
//!   wall-time columns**, so two runs of the same seeded config render
//!   byte-identical output (wall clocks never are); `with_times` adds
//!   inclusive/exclusive seconds and re-ranks by exclusive time;
//! * [`Profile::collapsed`] — collapsed-stack lines
//!   (`track0;a;b <weight>`) compatible with `flamegraph.pl` / inferno,
//!   weighted by exclusive time in integer microseconds. Weights are
//!   computed by budgeting each node's integer inclusive time over its
//!   children, so the total sample weight telescopes *exactly* to the
//!   sum of the root spans' inclusive time.
//!
//! Span ends that do not match the innermost open span on their track
//! are counted as [pairing errors](Profile::pairing_errors) rather than
//! silently skipped; spans still open at end of trace are reported via
//! [`Profile::open_spans`].

use super::analyze::{ParsedEvent, TraceReader};
use super::EventKind;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// One site (span name at one position in the call tree) of a track.
#[derive(Debug, Clone)]
pub struct Node {
    /// Span name as emitted, e.g. `"engine.run"`.
    pub name: String,
    /// Index of the parent node within the track (`None` for roots).
    pub parent: Option<usize>,
    /// Child node indices, in first-appearance order.
    pub children: Vec<usize>,
    /// Number of times this site was entered.
    pub calls: u64,
    /// Total wall time inside this site, children included (from the
    /// `dur_s` field of the matching span ends).
    pub inclusive_s: f64,
    /// Spans entered but never closed by end of trace.
    pub open: u64,
}

/// The call tree of one track (worker lane).
#[derive(Debug, Clone, Default)]
pub struct TrackProfile {
    /// Track id (0 = the run-level handle).
    pub track: u64,
    /// All nodes, in creation order; tree edges are index-based.
    pub nodes: Vec<Node>,
    /// Indices of top-level nodes, in first-appearance order.
    pub roots: Vec<usize>,
    /// The currently-open span stack (node indices), transient state
    /// while folding a stream.
    stack: Vec<usize>,
}

impl TrackProfile {
    /// Wall time exclusive to `node` (inclusive minus the children's
    /// inclusive time, clamped at zero against timer jitter).
    pub fn exclusive_s(&self, node: usize) -> f64 {
        let n = &self.nodes[node];
        let children: f64 = n.children.iter().map(|&c| self.nodes[c].inclusive_s).sum();
        (n.inclusive_s - children).max(0.0)
    }

    /// Sum of the root spans' inclusive time — the track's total
    /// profiled wall time.
    pub fn root_inclusive_s(&self) -> f64 {
        self.roots.iter().map(|&r| self.nodes[r].inclusive_s).sum()
    }

    fn find_or_create(&mut self, name: &str) -> usize {
        let (siblings, parent) = match self.stack.last() {
            Some(&top) => (&self.nodes[top].children, Some(top)),
            None => (&self.roots, None),
        };
        if let Some(found) = siblings
            .iter()
            .copied()
            .find(|&idx| self.nodes[idx].name == name)
        {
            return found;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            parent,
            children: Vec::new(),
            calls: 0,
            inclusive_s: 0.0,
            open: 0,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }
}

/// A full multi-track profile folded from a span event stream.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-track call trees, ordered by track id (tracks are created on
    /// first sight but rendered sorted).
    tracks: Vec<TrackProfile>,
    pairing_errors: u64,
}

/// One row of the aggregated [`Profile::render_top`] table.
#[derive(Debug, Clone)]
struct TopRow {
    name: String,
    calls: u64,
    tracks: u64,
    inclusive_s: f64,
    exclusive_s: f64,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Folds a whole JSONL trace stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed lines are skipped by the
    /// underlying [`TraceReader`].
    pub fn from_reader(reader: impl BufRead) -> io::Result<Self> {
        let mut trace = TraceReader::new(reader);
        let mut profile = Profile::new();
        while let Some(event) = trace.next_event()? {
            profile.observe(&event);
        }
        Ok(profile)
    }

    /// Folds a trace file.
    ///
    /// # Errors
    ///
    /// Propagates open/read failures.
    pub fn from_path(path: &Path) -> io::Result<Self> {
        Profile::from_reader(BufReader::new(File::open(path)?))
    }

    /// Folds one event in (non-span kinds are ignored).
    pub fn observe(&mut self, event: &ParsedEvent) {
        match event.kind {
            EventKind::SpanStart | EventKind::SpanEnd => {}
            _ => return,
        }
        let track_id = event.field_u64("track").unwrap_or(0);
        let track = match self.tracks.iter().position(|t| t.track == track_id) {
            Some(i) => &mut self.tracks[i],
            None => {
                self.tracks.push(TrackProfile {
                    track: track_id,
                    ..TrackProfile::default()
                });
                self.tracks.last_mut().expect("just pushed")
            }
        };
        match event.kind {
            EventKind::SpanStart => {
                let idx = track.find_or_create(&event.name);
                track.nodes[idx].calls += 1;
                track.nodes[idx].open += 1;
                track.stack.push(idx);
            }
            EventKind::SpanEnd => match track.stack.last().copied() {
                Some(top) if track.nodes[top].name == event.name => {
                    track.stack.pop();
                    track.nodes[top].open -= 1;
                    track.nodes[top].inclusive_s += event.field_f64("dur_s").unwrap_or(0.0);
                }
                _ => self.pairing_errors += 1,
            },
            _ => unreachable!(),
        }
    }

    /// Per-track call trees, sorted by track id.
    pub fn tracks(&self) -> Vec<&TrackProfile> {
        let mut tracks: Vec<&TrackProfile> = self.tracks.iter().collect();
        tracks.sort_by_key(|t| t.track);
        tracks
    }

    /// Span ends that did not match the innermost open span.
    pub fn pairing_errors(&self) -> u64 {
        self.pairing_errors
    }

    /// Spans still open at end of trace, across all tracks.
    pub fn open_spans(&self) -> u64 {
        self.tracks
            .iter()
            .flat_map(|t| t.nodes.iter())
            .map(|n| n.open)
            .sum()
    }

    /// Sum of every track's root-span inclusive time.
    pub fn root_inclusive_s(&self) -> f64 {
        self.tracks.iter().map(TrackProfile::root_inclusive_s).sum()
    }

    fn top_rows(&self) -> Vec<TopRow> {
        let mut rows: Vec<TopRow> = Vec::new();
        for track in &self.tracks {
            let mut seen_names: Vec<&str> = Vec::new();
            for (idx, node) in track.nodes.iter().enumerate() {
                let row = match rows.iter_mut().find(|r| r.name == node.name) {
                    Some(row) => row,
                    None => {
                        rows.push(TopRow {
                            name: node.name.clone(),
                            calls: 0,
                            tracks: 0,
                            inclusive_s: 0.0,
                            exclusive_s: 0.0,
                        });
                        rows.last_mut().expect("just pushed")
                    }
                };
                row.calls += node.calls;
                // The same name can appear at several tree positions in
                // one track; count the track once per name.
                if !seen_names.contains(&node.name.as_str()) {
                    row.tracks += 1;
                    seen_names.push(&node.name);
                }
                row.inclusive_s += node.inclusive_s;
                row.exclusive_s += track.exclusive_s(idx);
            }
        }
        rows
    }

    /// Renders the `top`-style site table.
    ///
    /// Without `with_times` the output is structural only (site, calls,
    /// tracks; ranked by call count, then name) and therefore
    /// byte-identical across repeated runs of the same seeded config.
    /// With `with_times`, inclusive/exclusive seconds and an
    /// exclusive-share column are added and rows re-rank by exclusive
    /// time.
    pub fn render_top(&self, with_times: bool) -> String {
        let mut rows = self.top_rows();
        if with_times {
            rows.sort_by(|a, b| {
                b.exclusive_s
                    .total_cmp(&a.exclusive_s)
                    .then_with(|| a.name.cmp(&b.name))
            });
        } else {
            rows.sort_by(|a, b| b.calls.cmp(&a.calls).then_with(|| a.name.cmp(&b.name)));
        }
        let total_excl: f64 = rows.iter().map(|r| r.exclusive_s).sum();
        let mut out = String::new();
        if with_times {
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>7} {:>12} {:>12} {:>7}",
                "site", "calls", "tracks", "incl s", "excl s", "excl %"
            );
        } else {
            let _ = writeln!(out, "{:<32} {:>8} {:>7}", "site", "calls", "tracks");
        }
        for row in &rows {
            if with_times {
                let share = if total_excl > 0.0 {
                    100.0 * row.exclusive_s / total_excl
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "{:<32} {:>8} {:>7} {:>12.6} {:>12.6} {:>6.1}%",
                    row.name, row.calls, row.tracks, row.inclusive_s, row.exclusive_s, share
                );
            } else {
                let _ = writeln!(out, "{:<32} {:>8} {:>7}", row.name, row.calls, row.tracks);
            }
        }
        self.append_footnotes(&mut out);
        out
    }

    /// Renders the full per-track call tree: one indented line per
    /// site with calls and inclusive/exclusive wall time.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for track in self.tracks() {
            let label = if track.track == 0 { " (run)" } else { "" };
            let _ = writeln!(
                out,
                "track {}{label} — {:.6}s profiled",
                track.track,
                track.root_inclusive_s()
            );
            for &root in &track.roots {
                self.render_node(track, root, 1, &mut out);
            }
        }
        self.append_footnotes(&mut out);
        out
    }

    fn render_node(&self, track: &TrackProfile, idx: usize, depth: usize, out: &mut String) {
        let node = &track.nodes[idx];
        let indent = "  ".repeat(depth);
        let site = format!("{indent}{}", node.name);
        let _ = writeln!(
            out,
            "{site:<40} calls {:>7}  incl {:>11.6}s  excl {:>11.6}s{}",
            node.calls,
            node.inclusive_s,
            track.exclusive_s(idx),
            if node.open > 0 { "  [open]" } else { "" },
        );
        for &child in &node.children {
            self.render_node(track, child, depth + 1, out);
        }
    }

    fn append_footnotes(&self, out: &mut String) {
        if self.pairing_errors > 0 {
            let _ = writeln!(
                out,
                "warning: {} span pairing error(s)",
                self.pairing_errors
            );
        }
        let open = self.open_spans();
        if open > 0 {
            let _ = writeln!(out, "note: {open} span(s) still open at end of trace");
        }
    }

    /// Renders collapsed-stack lines (`track0;engine.run;... <weight>`)
    /// for `flamegraph.pl` / inferno, sorted lexicographically.
    ///
    /// Weights are exclusive wall time in integer microseconds,
    /// budgeted so they telescope exactly: each node's integer
    /// inclusive time is split over its children (clipped to the
    /// remaining budget, in order) with the remainder kept as the
    /// node's own weight, so the total sample weight equals the sum of
    /// the root spans' integer inclusive time. Zero-weight frames are
    /// omitted.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for track in self.tracks() {
            let prefix = format!("track{}", track.track);
            for &root in &track.roots {
                let budget = us(track.nodes[root].inclusive_s);
                collapse_node(track, root, budget, &prefix, &mut lines);
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

/// Seconds to whole microseconds (the collapsed-stack sample unit).
fn us(seconds: f64) -> u64 {
    (seconds * 1e6).round().max(0.0) as u64
}

fn collapse_node(
    track: &TrackProfile,
    idx: usize,
    budget_us: u64,
    prefix: &str,
    out: &mut Vec<String>,
) {
    let node = &track.nodes[idx];
    let path = format!("{prefix};{}", node.name);
    let mut remaining = budget_us;
    for &child in &node.children {
        let take = us(track.nodes[child].inclusive_s).min(remaining);
        remaining -= take;
        collapse_node(track, child, take, &path, out);
    }
    if remaining > 0 {
        out.push(format!("{path} {remaining}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::analyze::ParsedEvent;

    fn event(line: &str) -> ParsedEvent {
        ParsedEvent::from_line(line).expect("test event parses")
    }

    /// Synthetic two-track trace with power-of-two durations so float
    /// arithmetic is exact: track 0 runs a;b;b;c, track 2 runs a alone.
    fn sample() -> Profile {
        let mut p = Profile::new();
        for line in [
            r#"{"t":0.0,"kind":"span_start","name":"a"}"#,
            r#"{"t":0.1,"kind":"span_start","name":"b"}"#,
            r#"{"t":0.2,"kind":"span_end","name":"b","dur_s":0.25}"#,
            r#"{"t":0.3,"kind":"span_start","name":"b"}"#,
            r#"{"t":0.4,"kind":"span_end","name":"b","dur_s":0.25}"#,
            r#"{"t":0.5,"kind":"span_start","name":"c"}"#,
            r#"{"t":0.6,"kind":"span_end","name":"c","dur_s":0.125}"#,
            r#"{"t":0.7,"kind":"span_end","name":"a","dur_s":1.0}"#,
            r#"{"t":0.1,"kind":"span_start","name":"a","track":2}"#,
            r#"{"t":0.2,"kind":"span_end","name":"a","dur_s":0.5,"track":2}"#,
        ] {
            p.observe(&event(line));
        }
        p
    }

    #[test]
    fn builds_an_exact_call_tree_per_track() {
        let p = sample();
        assert_eq!(p.pairing_errors(), 0);
        assert_eq!(p.open_spans(), 0);
        let tracks = p.tracks();
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].track, 0);
        assert_eq!(tracks[1].track, 2);

        let t0 = tracks[0];
        assert_eq!(t0.roots.len(), 1);
        let a = &t0.nodes[t0.roots[0]];
        assert_eq!(a.name, "a");
        assert_eq!(a.calls, 1);
        assert_eq!(a.inclusive_s, 1.0);
        assert_eq!(a.children.len(), 2); // b (×2 calls) and c
        let b = &t0.nodes[a.children[0]];
        assert_eq!((b.name.as_str(), b.calls, b.inclusive_s), ("b", 2, 0.5));
        // exclusive(a) = 1.0 − (0.5 + 0.125)
        assert_eq!(t0.exclusive_s(t0.roots[0]), 0.375);
        assert_eq!(p.root_inclusive_s(), 1.5);
    }

    #[test]
    fn mismatched_end_counts_as_pairing_error() {
        let mut p = Profile::new();
        p.observe(&event(r#"{"t":0.0,"kind":"span_start","name":"a"}"#));
        p.observe(&event(
            r#"{"t":0.1,"kind":"span_end","name":"zzz","dur_s":0.1}"#,
        ));
        assert_eq!(p.pairing_errors(), 1);
        assert_eq!(p.open_spans(), 1); // "a" never closed
    }

    #[test]
    fn same_name_on_different_tracks_does_not_cross_pair() {
        // Interleaved identical span names on two tracks must pair
        // within their own track only.
        let mut p = Profile::new();
        p.observe(&event(
            r#"{"t":0.0,"kind":"span_start","name":"w","track":1}"#,
        ));
        p.observe(&event(
            r#"{"t":0.0,"kind":"span_start","name":"w","track":2}"#,
        ));
        p.observe(&event(
            r#"{"t":0.1,"kind":"span_end","name":"w","dur_s":0.5,"track":2}"#,
        ));
        p.observe(&event(
            r#"{"t":0.2,"kind":"span_end","name":"w","dur_s":1.0,"track":1}"#,
        ));
        assert_eq!(p.pairing_errors(), 0);
        let tracks = p.tracks();
        assert_eq!(tracks[0].nodes[0].inclusive_s, 1.0);
        assert_eq!(tracks[1].nodes[0].inclusive_s, 0.5);
    }

    #[test]
    fn collapsed_weights_telescope_to_root_inclusive() {
        let p = sample();
        let collapsed = p.collapsed();
        let total: u64 = collapsed
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        // 1.0s (track 0 root) + 0.5s (track 2 root) in microseconds.
        assert_eq!(total, 1_500_000);
        assert!(collapsed.contains("track0;a;b 500000"));
        assert!(collapsed.contains("track0;a;c 125000"));
        assert!(collapsed.contains("track0;a 375000"));
        assert!(collapsed.contains("track2;a 500000"));
        // Deterministic: lexicographically sorted.
        let lines: Vec<&str> = collapsed.lines().collect();
        let sorted = {
            let mut s = lines.clone();
            s.sort();
            s
        };
        assert_eq!(lines, sorted);
    }

    #[test]
    fn top_default_is_structural_and_ranked_by_calls() {
        let p = sample();
        let top = p.render_top(false);
        assert!(!top.contains("excl"), "default top must not print times");
        let b_line = top.lines().find(|l| l.starts_with('b')).unwrap();
        let a_line = top.lines().find(|l| l.starts_with('a')).unwrap();
        // b has 2 calls on 1 track; a has 2 calls on 2 tracks.
        assert!(b_line.contains('2'));
        assert!(a_line.contains('2'));
        let timed = p.render_top(true);
        assert!(timed.contains("excl s"));
        // Ranked by exclusive: b (0.5) before a (0.375 + 0.5 = 0.875)…
        // actually a aggregates both tracks, so a leads.
        let first_site = timed.lines().nth(1).unwrap();
        assert!(first_site.starts_with('a'));
    }

    #[test]
    fn tree_report_is_deterministic_for_a_given_trace() {
        let p = sample();
        assert_eq!(p.render_tree(), p.render_tree());
        let tree = p.render_tree();
        assert!(tree.contains("track 0 (run)"));
        assert!(tree.contains("track 2"));
        assert!(tree.contains("  a"));
        assert!(tree.contains("    b"));
    }
}
