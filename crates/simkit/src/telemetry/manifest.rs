//! Machine-readable per-run manifests (`manifest.json`).
//!
//! A telemetry-enabled run writes, next to its JSONL trace, one
//! manifest describing exactly what produced the trace: the binary,
//! the resolved configuration (as ordered key/value pairs), a stable
//! FNV-1a hash over that configuration, the worker-thread count, and —
//! for sweeps — one entry per grid cell with its wall-clock time,
//! emitted-event count, and whether it was served from the CSV cache.
//! Any figure or trace can thereby be traced back to its exact inputs.
//!
//! Schema (`thermogater.telemetry/v1`):
//!
//! ```json
//! {
//!   "schema": "thermogater.telemetry/v1",
//!   "created_by": "simulate",
//!   "config_hash": "9a77c3f0c1d2e4b5",
//!   "threads": 4,
//!   "config": {"bench": "fft", "policy": "oracvt"},
//!   "cache": {"hits": 1, "misses": 3},
//!   "events_total": 1234,
//!   "cells": [
//!     {"label": "fft-oracvt", "seconds": 0.51, "events": 310, "cached": false}
//!   ]
//! }
//! ```
//!
//! # Examples
//!
//! ```
//! use simkit::telemetry::manifest::{CellManifest, RunManifest};
//!
//! let mut manifest = RunManifest::new("simulate");
//! manifest.push_config("bench", "fft");
//! manifest.threads = 2;
//! manifest.cells.push(CellManifest {
//!     label: "fft-oracvt".into(),
//!     seconds: 0.5,
//!     events: 100,
//!     cached: false,
//! });
//! let text = manifest.to_json();
//! let back = RunManifest::from_json(&text).unwrap();
//! assert_eq!(back.cells.len(), 1);
//! assert_eq!(back.config_hash(), manifest.config_hash());
//! ```

use super::json::{self, JsonValue};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Schema identifier stamped into (and required of) every manifest.
pub const MANIFEST_SCHEMA: &str = "thermogater.telemetry/v1";

/// Conventional file name of the trace next to the manifest.
pub const TRACE_FILE: &str = "trace.jsonl";

/// Conventional file name of the manifest inside a telemetry directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Per-cell entry of a [`RunManifest`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellManifest {
    /// Cell label, e.g. `"fft-oracvt"`.
    pub label: String,
    /// Wall-clock seconds spent producing the cell.
    pub seconds: f64,
    /// Telemetry events emitted while the cell ran.
    pub events: u64,
    /// Whether the record came from the on-disk sweep cache.
    pub cached: bool,
}

/// The per-run manifest written next to a JSONL trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// Name of the producing binary (`simulate`, `probe`, a fig bin…).
    pub created_by: String,
    /// Resolved configuration, in insertion order.
    pub config: Vec<(String, String)>,
    /// Worker threads the run used.
    pub threads: usize,
    /// Events emitted outside any cell (run-level spans, progress…);
    /// `events_total` in the JSON is this plus the per-cell counts.
    pub run_events: u64,
    /// One entry per executed cell (one entry total for single runs).
    pub cells: Vec<CellManifest>,
}

impl RunManifest {
    /// A manifest for `created_by` with one thread and no cells yet.
    pub fn new(created_by: &str) -> Self {
        RunManifest {
            created_by: created_by.to_string(),
            threads: 1,
            ..RunManifest::default()
        }
    }

    /// Appends one configuration key/value pair.
    pub fn push_config(&mut self, key: &str, value: impl ToString) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Cells served from the sweep cache.
    pub fn cache_hits(&self) -> usize {
        self.cells.iter().filter(|c| c.cached).count()
    }

    /// Cells actually simulated.
    pub fn cache_misses(&self) -> usize {
        self.cells.len() - self.cache_hits()
    }

    /// Total events across the run and all cells.
    pub fn total_events(&self) -> u64 {
        self.run_events + self.cells.iter().map(|c| c.events).sum::<u64>()
    }

    /// Stable FNV-1a hash over `created_by` and the config pairs —
    /// two runs with identical configuration hash identically, so a
    /// manifest pins a figure to its inputs like a `git describe` pins
    /// a build to its sources.
    pub fn config_hash(&self) -> u64 {
        let mut hasher = ContentHasher::new(&self.created_by);
        for (key, value) in &self.config {
            hasher.push(key, value);
        }
        hasher.finish()
    }

    /// Serialises the manifest (pretty-stable single-line JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 64 * self.cells.len());
        out.push_str("{\"schema\":");
        json::write_str(&mut out, MANIFEST_SCHEMA);
        out.push_str(",\"created_by\":");
        json::write_str(&mut out, &self.created_by);
        let _ = write!(out, ",\"config_hash\":\"{:016x}\"", self.config_hash());
        let _ = write!(out, ",\"threads\":{}", self.threads);
        out.push_str(",\"config\":{");
        for (i, (key, value)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, key);
            out.push(':');
            json::write_str(&mut out, value);
        }
        let _ = write!(
            out,
            "}},\"cache\":{{\"hits\":{},\"misses\":{}}}",
            self.cache_hits(),
            self.cache_misses()
        );
        let _ = write!(out, ",\"events_total\":{}", self.total_events());
        let _ = write!(out, ",\"run_events\":{}", self.run_events);
        out.push_str(",\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"label\":");
            json::write_str(&mut out, &cell.label);
            out.push_str(",\"seconds\":");
            json::write_f64(&mut out, cell.seconds);
            let _ = write!(out, ",\"events\":{}", cell.events);
            let _ = write!(
                out,
                ",\"cached\":{}}}",
                if cell.cached { "true" } else { "false" }
            );
        }
        out.push_str("]}");
        out
    }

    /// Writes the manifest to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let mut text = self.to_json();
        text.push('\n');
        fs::write(path, text)
    }

    /// Parses and validates a manifest document.
    ///
    /// # Errors
    ///
    /// Describes the first structural problem found: malformed JSON,
    /// wrong or missing schema identifier, missing required members, or
    /// a `config_hash` that does not match the embedded configuration.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("manifest missing \"schema\"")?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {MANIFEST_SCHEMA:?})"
            ));
        }
        let created_by = doc
            .get("created_by")
            .and_then(JsonValue::as_str)
            .ok_or("manifest missing \"created_by\"")?
            .to_string();
        let threads = doc
            .get("threads")
            .and_then(JsonValue::as_f64)
            .ok_or("manifest missing \"threads\"")? as usize;
        let run_events = doc
            .get("run_events")
            .and_then(JsonValue::as_f64)
            .ok_or("manifest missing \"run_events\"")? as u64;
        let config = doc
            .get("config")
            .and_then(JsonValue::as_object)
            .ok_or("manifest missing \"config\"")?
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("config value for {k:?} is not a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut cells = Vec::new();
        for (index, cell) in doc
            .get("cells")
            .and_then(JsonValue::as_array)
            .ok_or("manifest missing \"cells\"")?
            .iter()
            .enumerate()
        {
            let field = |name: &str| {
                cell.get(name)
                    .ok_or_else(|| format!("cell {index} missing {name:?}"))
            };
            cells.push(CellManifest {
                label: field("label")?
                    .as_str()
                    .ok_or_else(|| format!("cell {index} label is not a string"))?
                    .to_string(),
                seconds: field("seconds")?
                    .as_f64()
                    .ok_or_else(|| format!("cell {index} seconds is not a number"))?,
                events: field("events")?
                    .as_f64()
                    .ok_or_else(|| format!("cell {index} events is not a number"))?
                    as u64,
                cached: field("cached")?
                    .as_bool()
                    .ok_or_else(|| format!("cell {index} cached is not a bool"))?,
            });
        }
        let manifest = RunManifest {
            created_by,
            config,
            threads,
            run_events,
            cells,
        };
        let declared = doc
            .get("config_hash")
            .and_then(JsonValue::as_str)
            .ok_or("manifest missing \"config_hash\"")?;
        let expected = format!("{:016x}", manifest.config_hash());
        if declared != expected {
            return Err(format!(
                "config_hash mismatch: manifest says {declared}, config hashes to {expected}"
            ));
        }
        let declared_total = doc
            .get("events_total")
            .and_then(JsonValue::as_f64)
            .ok_or("manifest missing \"events_total\"")? as u64;
        if declared_total != manifest.total_events() {
            return Err(format!(
                "events_total mismatch: manifest says {declared_total}, cells sum to {}",
                manifest.total_events()
            ));
        }
        Ok(manifest)
    }
}

/// Streaming FNV-1a content hasher over `key=value;`-framed pairs — the
/// exact machinery behind [`RunManifest::config_hash`], exposed so
/// other schemas (scenario specs, content-addressed caches) can hash
/// ordered configuration pairs identically. The domain string seeds the
/// hash, so equal pair lists under different domains never collide by
/// construction.
///
/// # Examples
///
/// ```
/// use simkit::telemetry::manifest::ContentHasher;
///
/// let mut a = ContentHasher::new("scenario");
/// a.push("bench", "fft");
/// let mut b = ContentHasher::new("scenario");
/// b.push("bench", "fft");
/// assert_eq!(a.finish(), b.finish());
/// b.push("seed", "1");
/// assert_ne!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct ContentHasher {
    hash: u64,
}

impl ContentHasher {
    /// Starts a hash seeded with the FNV offset basis and `domain`.
    pub fn new(domain: &str) -> Self {
        ContentHasher {
            hash: fnv1a64(0xcbf2_9ce4_8422_2325, domain.as_bytes()),
        }
    }

    /// Folds one `key=value;` pair into the hash. Order matters.
    pub fn push(&mut self, key: &str, value: impl AsRef<str>) {
        self.hash = fnv1a64(self.hash, key.as_bytes());
        self.hash = fnv1a64(self.hash, b"=");
        self.hash = fnv1a64(self.hash, value.as_ref().as_bytes());
        self.hash = fnv1a64(self.hash, b";");
    }

    /// The hash of everything pushed so far (non-consuming).
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("simulate");
        m.push_config("bench", "fft");
        m.push_config("policy", "oracvt");
        m.threads = 4;
        m.run_events = 7;
        m.cells.push(CellManifest {
            label: "fft-oracvt".into(),
            seconds: 0.25,
            events: 93,
            cached: false,
        });
        m.cells.push(CellManifest {
            label: "fft-allon".into(),
            seconds: 0.0,
            events: 0,
            cached: true,
        });
        m
    }

    #[test]
    fn round_trips_through_json() {
        let m = sample();
        let back = RunManifest::from_json(&m.to_json()).expect("round trip");
        assert_eq!(back, m);
        assert_eq!(back.cache_hits(), 1);
        assert_eq!(back.cache_misses(), 1);
        assert_eq!(back.total_events(), 100);
    }

    #[test]
    fn config_hash_is_stable_and_order_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.config_hash(), b.config_hash());
        let mut c = sample();
        c.config.swap(0, 1);
        assert_ne!(a.config_hash(), c.config_hash());
        let mut d = sample();
        d.push_config("seed", "1");
        assert_ne!(a.config_hash(), d.config_hash());
    }

    // Pins the ContentHasher framing to the original inline loop so
    // manifests hashed before the refactor keep validating.
    #[test]
    fn content_hasher_matches_legacy_config_hash_framing() {
        let m = sample();
        let mut hash = fnv1a64(0xcbf2_9ce4_8422_2325, m.created_by.as_bytes());
        for (key, value) in &m.config {
            hash = fnv1a64(hash, key.as_bytes());
            hash = fnv1a64(hash, b"=");
            hash = fnv1a64(hash, value.as_bytes());
            hash = fnv1a64(hash, b";");
        }
        assert_eq!(m.config_hash(), hash);
    }

    #[test]
    fn content_hasher_separates_domains_and_orders() {
        let mut a = ContentHasher::new("scenario");
        let mut b = ContentHasher::new("manifest");
        a.push("k", "v");
        b.push("k", "v");
        assert_ne!(a.finish(), b.finish());
        let mut c = ContentHasher::new("scenario");
        c.push("v", "k");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn validation_rejects_tampering() {
        let m = sample();
        let good = m.to_json();
        assert!(RunManifest::from_json(&good.replace("fft", "lu")).is_err());
        assert!(RunManifest::from_json(&good.replace(MANIFEST_SCHEMA, "v0")).is_err());
        assert!(RunManifest::from_json(&good.replace("\"events\":93", "\"events\":92")).is_err());
        assert!(RunManifest::from_json("{}").is_err());
        assert!(RunManifest::from_json("not json").is_err());
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join(format!("simkit-manifest-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(MANIFEST_FILE);
        sample().write(&path).expect("write manifest");
        let text = fs::read_to_string(&path).expect("read back");
        assert!(RunManifest::from_json(text.trim()).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
