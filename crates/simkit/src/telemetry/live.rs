//! Live (streaming) trace aggregation with bounded memory.
//!
//! [`analyze`](super::analyze) keeps every finite observation so its
//! percentiles are exact — the right trade for a finished trace, but a
//! watcher that follows a multi-hour sweep cannot afford a growing
//! buffer per metric, and an in-process health monitor must not turn
//! the run it watches into an allocation benchmark. This module is the
//! streaming half of that story:
//!
//! * [`P2Grid`] — an extended-P² (Jain & Chlamtac; Raatikainen's
//!   multi-quantile extension) marker grid: thirteen markers tracking
//!   several quantiles jointly in O(1) memory and O(1) update, exact
//!   for the first thirteen observations and validated against the
//!   exact [`stats::percentile`](crate::stats::percentile) in tests.
//!   The dense grid keeps every reported quantile's interpolation
//!   bracket narrow, which is what lets the estimate survive bimodal
//!   gaps and heavy tails that defeat the classic five-marker form;
//! * [`StreamingRollup`] — exact count / min / max / mean plus grid
//!   estimates for p50/p95/p99, mirroring the fields of the batch
//!   [`Rollup`](super::analyze::Rollup);
//! * [`LiveStats`] — a full incremental trace aggregate: per-kind
//!   event counts, counter totals, per-`(track, name)` value rollups,
//!   gating / emergency / solver aggregates. Counter, gating, and
//!   emergency totals are *exact* and match
//!   [`TraceAnalysis`](super::analyze::TraceAnalysis) on a completed
//!   trace; only rollup percentiles are estimates;
//! * [`LiveSink`] — a [`TelemetrySink`] folding events into a
//!   [`LiveStats`] as they are emitted, self-timing its own cost so a
//!   run can report (and CI can gate) the overhead of being watched.
//!
//! The [`rules`](super::rules) module evaluates health rules over a
//! [`LiveStats`]; `tg-obs watch` re-renders one as a live status line.

use super::analyze::{EmergencyStats, ParsedEvent};
use super::json::JsonValue;
use super::{Event, EventKind, FieldValue, TelemetrySink};
use crate::stats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The marker grid: the quantile each marker tracks. Chosen so every
/// *reported* quantile (0.5, 0.95, 0.99) has both neighbours within
/// 0.125 rank points — narrow interpolation brackets are what keep the
/// estimates honest across bimodal density gaps and heavy tails, where
/// the classic five-marker P² (whose median bracket spans 0.25–0.75)
/// drifts by tens of rank points.
const MARKER_Q: [f64; 13] = [
    0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.6875, 0.75, 0.875, 0.95, 0.975, 0.99, 1.0,
];

/// Number of markers in the grid.
const MARKERS: usize = MARKER_Q.len();

/// Streaming multi-quantile estimator via the extended P² algorithm
/// (Jain & Chlamtac, CACM 1985; Raatikainen's simultaneous-quantile
/// extension): a fixed grid of thirteen markers whose heights converge
/// on the [`MARKER_Q`] quantiles without storing the sample.
///
/// The first thirteen observations are kept verbatim, so estimates for
/// n ≤ 13 equal the exact linear-interpolated percentile. Beyond that
/// the estimate carries the algorithm's usual error, which shrinks with
/// sample size and is bounded in rank terms (see the module tests for
/// the documented tolerance).
#[derive(Debug, Clone, PartialEq)]
pub struct P2Grid {
    /// Marker heights (sorted ascending once initialised).
    heights: [f64; MARKERS],
    /// Actual marker positions (1-based ranks).
    positions: [f64; MARKERS],
    /// Observations folded in so far.
    count: u64,
}

impl Default for P2Grid {
    fn default() -> Self {
        P2Grid::new()
    }
}

impl P2Grid {
    /// A fresh estimator.
    pub fn new() -> Self {
        P2Grid {
            heights: [0.0; MARKERS],
            positions: [0.0; MARKERS],
            count: 0,
        }
    }

    /// Observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one finite observation in. Non-finite values must be
    /// filtered by the caller (the rollup layer counts them separately).
    pub fn observe(&mut self, x: f64) {
        if (self.count as usize) < MARKERS {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count as usize == MARKERS {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite heights"));
                for (i, p) in self.positions.iter_mut().enumerate() {
                    *p = (i + 1) as f64;
                }
            }
            return;
        }
        self.count += 1;

        // Locate the marker cell containing x, extending the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[MARKERS - 1] {
            self.heights[MARKERS - 1] = x;
            MARKERS - 2
        } else {
            // heights[k] <= x < heights[k+1] for some interior k.
            (0..MARKERS - 1)
                .find(|&i| x < self.heights[i + 1])
                .expect("x is below the top marker")
        };
        for i in (k + 1)..MARKERS {
            self.positions[i] += 1.0;
        }

        // Nudge the interior markers toward their desired ranks.
        let n = self.count as f64;
        for (i, &q) in MARKER_Q.iter().enumerate().take(MARKERS - 1).skip(1) {
            let desired = 1.0 + (n - 1.0) * q;
            let d = desired - self.positions[i];
            let ahead = self.positions[i + 1] - self.positions[i];
            let behind = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && ahead > 1.0) || (d <= -1.0 && behind < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height update for marker `i`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola escapes the neighbour heights.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate of quantile `q`; `None` before any
    /// observation or for a `q` the grid does not track. Exact
    /// (matching [`stats::percentile`]) while n ≤ 13.
    pub fn estimate(&self, q: f64) -> Option<f64> {
        let marker = MARKER_Q.iter().position(|&t| (t - q).abs() < 1e-12)?;
        match self.count {
            0 => None,
            n if (n as usize) < MARKERS => {
                let mut head = self.heights[..n as usize].to_vec();
                head.sort_by(|a, b| a.partial_cmp(b).expect("finite heights"));
                stats::percentile(&head, q * 100.0)
            }
            _ => Some(self.heights[marker]),
        }
    }
}

/// Bounded-memory distribution rollup of one named value stream: exact
/// count / non-finite count / min / max / mean, streaming p50/p95/p99.
///
/// The streaming counterpart of the batch
/// [`Rollup`](super::analyze::Rollup); the exact fields agree with it
/// bit for bit, the percentiles within the P² tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingRollup {
    count: u64,
    non_finite: u64,
    min: f64,
    max: f64,
    sum: f64,
    quantiles: P2Grid,
}

impl Default for StreamingRollup {
    fn default() -> Self {
        StreamingRollup {
            count: 0,
            non_finite: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            quantiles: P2Grid::new(),
        }
    }
}

impl StreamingRollup {
    /// An empty rollup.
    pub fn new() -> Self {
        StreamingRollup::default()
    }

    /// Folds one observation in (non-finite values are counted but not
    /// ranked, matching the batch rollup).
    pub fn observe(&mut self, value: f64) {
        if value.is_finite() {
            self.count += 1;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
            self.sum += value;
            self.quantiles.observe(value);
        } else {
            self.non_finite += 1;
        }
    }

    /// Counts an observation that carried no usable number.
    pub fn note_invalid(&mut self) {
        self.non_finite += 1;
    }

    /// Number of finite observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of non-finite / unusable observations.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest finite observation; `None` when empty (exact).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest finite observation; `None` when empty (exact).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Streaming percentile estimate. Supported points: 0 and 100
    /// (exact min/max), 50, 95, and 99 (P² grid estimates); anything
    /// else returns `None` — the streaming layer only tracks the
    /// quantiles the reports and rules use.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        match p {
            0.0 => self.min(),
            50.0 | 95.0 | 99.0 => self.quantiles.estimate(p / 100.0),
            100.0 => self.max(),
            _ => None,
        }
    }
}

/// Exact gating aggregate (streaming twin of
/// [`GatingStats`](super::analyze::GatingStats); only the active-count
/// distribution is estimated).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveGating {
    /// Gating events seen.
    pub decisions: u64,
    /// Regulators switched on across all decisions.
    pub turned_on: u64,
    /// Regulators switched off across all decisions.
    pub turned_off: u64,
    /// Active-regulator count per decision.
    pub active: StreamingRollup,
}

impl LiveGating {
    /// Total switching activity (on + off transitions).
    pub fn churn(&self) -> u64 {
        self.turned_on + self.turned_off
    }

    /// Mean switching activity per decision; `None` with no decisions.
    pub fn churn_per_decision(&self) -> Option<f64> {
        if self.decisions == 0 {
            None
        } else {
            Some(self.churn() as f64 / self.decisions as f64)
        }
    }
}

/// Solver-convergence streaming rollup for one solve site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LiveSolver {
    /// Iterations per solve.
    pub iters: StreamingRollup,
    /// Final relative residual per solve.
    pub residuals: StreamingRollup,
}

impl LiveSolver {
    /// Number of solve events folded in.
    pub fn solves(&self) -> u64 {
        self.iters.count() + self.iters.non_finite()
    }
}

/// The event fields the live aggregator reads, abstracted over the
/// emit-side [`Event`] (in-process [`LiveSink`]) and the consume-side
/// [`ParsedEvent`] (trace tailing) so both fold through one code path.
///
/// Numeric access mirrors the JSONL round trip: an emit-side non-finite
/// float reads as `None`, exactly as its `null` wire form would.
trait EventView {
    fn kind(&self) -> EventKind;
    fn name(&self) -> &str;
    fn t_s(&self) -> f64;
    fn num(&self, key: &str) -> Option<f64>;

    fn num_u64(&self, key: &str) -> Option<u64> {
        self.num(key).map(|v| v.max(0.0) as u64)
    }

    /// The track id stamped on the event (0 when absent).
    fn track(&self) -> u64 {
        self.num_u64("track").unwrap_or(0)
    }
}

impl EventView for ParsedEvent {
    fn kind(&self) -> EventKind {
        self.kind
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn t_s(&self) -> f64 {
        self.t_s
    }

    fn num(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(JsonValue::as_f64)
    }
}

impl EventView for Event {
    fn kind(&self) -> EventKind {
        self.kind
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn t_s(&self) -> f64 {
        self.t_s
    }

    fn num(&self, key: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                FieldValue::U64(x) => Some(*x as f64),
                FieldValue::I64(x) => Some(*x as f64),
                FieldValue::F64(x) => x.is_finite().then_some(*x),
                FieldValue::Bool(_) | FieldValue::Str(_) => None,
            })
    }
}

/// Finds or inserts a key in an order-preserving keyed vector.
fn entry<K: PartialEq, T: Default>(vec: &mut Vec<(K, T)>, key: K) -> &mut T {
    if let Some(i) = vec.iter().position(|(k, _)| *k == key) {
        return &mut vec[i].1;
    }
    vec.push((key, T::default()));
    &mut vec.last_mut().expect("just pushed").1
}

/// A full incremental trace aggregate with bounded memory.
///
/// Fold events in with [`LiveStats::observe`] (parsed trace lines) or
/// [`LiveStats::observe_event`] (in-process emit-side events); both
/// produce identical state for the same stream. On a completed trace:
///
/// * event totals, per-kind counts, counter totals, gating decision /
///   churn counts, and every emergency field **equal** the batch
///   [`TraceAnalysis`](super::analyze::TraceAnalysis) exactly;
/// * rollup count / non-finite / min / max / mean are exact; p50 / p95
///   / p99 are P² estimates.
///
/// Value rollups are keyed by `(track, name)` so concurrent sweep cells
/// aggregate separately; [`LiveStats::merged_rollup`] combines the
/// tracks of one name (exact moments, count-weighted percentile
/// estimates) for name-level queries. All keyed collections preserve
/// first-appearance order, so renderings over a deterministic stream
/// are deterministic.
#[derive(Debug, Clone, Default)]
pub struct LiveStats {
    /// Events folded in.
    pub events: u64,
    kind_counts: [u64; EventKind::ALL.len()],
    /// Counter totals by name (summed across tracks).
    pub counters: Vec<(String, u64)>,
    /// Gauge/histogram/frame value rollups by `(track, name)`.
    pub rollups: Vec<((u64, String), StreamingRollup)>,
    /// Solver-convergence rollups by solve site.
    pub solvers: Vec<(String, LiveSolver)>,
    /// Gating-churn aggregate.
    pub gating: LiveGating,
    /// Voltage-emergency aggregate (shared with the batch layer — all
    /// fields exact).
    pub emergency: EmergencyStats,
    /// Timestamp of the first event.
    pub first_t_s: Option<f64>,
    /// Timestamp of the last event.
    pub last_t_s: Option<f64>,
    /// Malformed lines reported by the feeding reader.
    pub malformed_lines: u64,
    /// Whether the feeding reader currently sees a truncated tail.
    pub truncated: bool,
}

/// A name-level view over the per-track rollups of one name: exact
/// moments (summed/compared across tracks), count-weighted percentile
/// estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedRollup {
    /// Finite observations across all tracks.
    pub count: u64,
    /// Non-finite observations across all tracks.
    pub non_finite: u64,
    /// Smallest finite observation (exact).
    pub min: Option<f64>,
    /// Largest finite observation (exact).
    pub max: Option<f64>,
    /// Mean of finite observations (exact).
    pub mean: Option<f64>,
    /// Count-weighted p50 estimate.
    pub p50: Option<f64>,
    /// Count-weighted p95 estimate.
    pub p95: Option<f64>,
    /// Count-weighted p99 estimate.
    pub p99: Option<f64>,
}

impl MergedRollup {
    /// The merged percentile estimate for a supported point (0, 50, 95,
    /// 99, 100).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        match p {
            0.0 => self.min,
            50.0 => self.p50,
            95.0 => self.p95,
            99.0 => self.p99,
            100.0 => self.max,
            _ => None,
        }
    }
}

fn kind_index(kind: EventKind) -> usize {
    EventKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind is in ALL")
}

impl LiveStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        LiveStats::default()
    }

    /// Folds one parsed trace event in.
    pub fn observe(&mut self, event: &ParsedEvent) {
        self.fold(event);
    }

    /// Folds one emit-side event in (used by [`LiveSink`]; equivalent
    /// to parsing the event's JSONL form and calling
    /// [`LiveStats::observe`]).
    pub fn observe_event(&mut self, event: &Event) {
        self.fold(event);
    }

    fn fold<E: EventView>(&mut self, event: &E) {
        self.events += 1;
        self.kind_counts[kind_index(event.kind())] += 1;
        let t = event.t_s();
        if self.first_t_s.is_none() {
            self.first_t_s = Some(t);
        }
        self.last_t_s = Some(self.last_t_s.map_or(t, |prev| prev.max(t)));
        match event.kind() {
            EventKind::Counter => {
                *entry(&mut self.counters, event.name().to_string()) +=
                    event.num_u64("delta").unwrap_or(1);
            }
            EventKind::Gauge | EventKind::Histogram => {
                let key = (event.track(), event.name().to_string());
                let rollup = entry(&mut self.rollups, key);
                match event.num("value") {
                    Some(v) => rollup.observe(v),
                    None => rollup.note_invalid(),
                }
            }
            EventKind::Solve => {
                let solver = entry::<_, LiveSolver>(&mut self.solvers, event.name().to_string());
                match event.num("iters") {
                    Some(i) => solver.iters.observe(i),
                    None => solver.iters.note_invalid(),
                }
                match event.num("residual") {
                    Some(r) => solver.residuals.observe(r),
                    None => solver.residuals.note_invalid(),
                }
            }
            EventKind::Gating => {
                self.gating.decisions += 1;
                self.gating.turned_on += event.num_u64("turned_on").unwrap_or(0);
                self.gating.turned_off += event.num_u64("turned_off").unwrap_or(0);
                match event.num("active") {
                    Some(a) => self.gating.active.observe(a),
                    None => self.gating.active.note_invalid(),
                }
            }
            EventKind::Emergency => {
                self.emergency.checks += 1;
                let flagged = event.num_u64("flagged_domains").unwrap_or(0);
                if flagged > 0 {
                    self.emergency.with_emergency += 1;
                }
                self.emergency.flagged_domains += flagged;
                self.emergency.true_domains += event.num_u64("true_domains").unwrap_or(0);
                self.emergency.mispredicted += event.num_u64("mispredicted").unwrap_or(0);
            }
            // Frame hotspot magnitude rides along as a value rollup,
            // matching the batch analyzer.
            EventKind::Frame => {
                if let Some(v) = event.num("value") {
                    let key = (event.track(), event.name().to_string());
                    entry::<_, StreamingRollup>(&mut self.rollups, key).observe(v);
                }
            }
            EventKind::SpanStart | EventKind::SpanEnd | EventKind::Progress => {}
        }
    }

    /// Number of events of one kind.
    pub fn kind_count(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind_index(kind)]
    }

    /// Total of one named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The value rollup of one `(track, name)` key.
    pub fn rollup(&self, track: u64, name: &str) -> Option<&StreamingRollup> {
        self.rollups
            .iter()
            .find(|((t, n), _)| *t == track && n == name)
            .map(|(_, r)| r)
    }

    /// A name-level view merging the per-track rollups of `name`:
    /// moments are exact; percentile estimates are count-weighted
    /// averages of the per-track estimates (identical to the single
    /// estimator when only one track carries the name — the common
    /// case).
    pub fn merged_rollup(&self, name: &str) -> Option<MergedRollup> {
        let parts: Vec<&StreamingRollup> = self
            .rollups
            .iter()
            .filter(|((_, n), _)| n == name)
            .map(|(_, r)| r)
            .collect();
        if parts.is_empty() {
            return None;
        }
        let count: u64 = parts.iter().map(|r| r.count()).sum();
        let non_finite: u64 = parts.iter().map(|r| r.non_finite()).sum();
        let sum: f64 = parts.iter().map(|r| r.sum()).sum();
        let weighted = |pick: fn(&StreamingRollup) -> Option<f64>| -> Option<f64> {
            let mut acc = 0.0;
            let mut weight = 0u64;
            for r in &parts {
                if let Some(v) = pick(r) {
                    acc += v * r.count() as f64;
                    weight += r.count();
                }
            }
            (weight > 0).then(|| acc / weight as f64)
        };
        Some(MergedRollup {
            count,
            non_finite,
            min: parts
                .iter()
                .filter_map(|r| r.min())
                .fold(None, |a, v| Some(a.map_or(v, |x: f64| x.min(v)))),
            max: parts
                .iter()
                .filter_map(|r| r.max())
                .fold(None, |a, v| Some(a.map_or(v, |x: f64| x.max(v)))),
            mean: (count > 0).then(|| sum / count as f64),
            p50: weighted(|r| r.percentile(50.0)),
            p95: weighted(|r| r.percentile(95.0)),
            p99: weighted(|r| r.percentile(99.0)),
        })
    }

    /// The solver rollup of one solve site.
    pub fn solver(&self, site: &str) -> Option<&LiveSolver> {
        self.solvers.iter().find(|(n, _)| n == site).map(|(_, s)| s)
    }

    /// Total solve events across all sites.
    pub fn total_solves(&self) -> u64 {
        self.solvers.iter().map(|(_, s)| s.solves()).sum()
    }

    /// Span of event timestamps (0.0 for empty or single-event streams).
    pub fn duration_s(&self) -> f64 {
        match (self.first_t_s, self.last_t_s) {
            (Some(a), Some(b)) => (b - a).max(0.0),
            _ => 0.0,
        }
    }
}

/// A [`TelemetrySink`] that folds every event into a [`LiveStats`] as
/// it is emitted, timing itself so the run can report what live
/// aggregation cost.
///
/// Intended to ride in a fanout next to the JSONL sink: the run gains
/// an in-process health view (queryable mid-run via
/// [`LiveSink::snapshot`], fed to the rules engine) at a measured,
/// self-reported price — [`LiveSink::overhead_us`] backs the
/// `telemetry.live.overhead` counter and the BENCH live-overhead axis.
#[derive(Debug, Default)]
pub struct LiveSink {
    stats: Mutex<LiveStats>,
    events: AtomicU64,
    overhead_ns: AtomicU64,
}

impl LiveSink {
    /// An empty sink.
    pub fn new() -> Self {
        LiveSink::default()
    }

    /// A snapshot of the aggregate state so far.
    pub fn snapshot(&self) -> LiveStats {
        self.stats.lock().expect("live sink poisoned").clone()
    }

    /// Events folded in so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Total time spent inside the aggregator, whole microseconds.
    pub fn overhead_us(&self) -> u64 {
        self.overhead_ns.load(Ordering::Relaxed) / 1_000
    }
}

impl TelemetrySink for LiveSink {
    fn record(&self, event: &Event) {
        let started = Instant::now();
        self.stats
            .lock()
            .expect("live sink poisoned")
            .observe_event(event);
        self.overhead_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.events.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;
    use crate::telemetry::analyze::TraceAnalysis;
    use crate::telemetry::Telemetry;

    /// Exact reference percentile over a sample.
    fn exact(values: &[f64], p: f64) -> f64 {
        stats::percentile(values, p).expect("non-empty sample")
    }

    /// Rank of `estimate` within `values`: the fraction of the sample
    /// strictly below it. A quantile estimator is judged by how close
    /// this lands to the target quantile — value-space error is
    /// meaningless for heavy tails and bimodal gaps.
    fn rank_of(values: &[f64], estimate: f64) -> f64 {
        let below = values.iter().filter(|&&v| v < estimate).count();
        below as f64 / values.len() as f64
    }

    /// Documented tolerance: for n ≥ 200 the P² estimate of quantile q
    /// must sit within 5 percentile points of rank q.
    const RANK_TOL: f64 = 0.05;

    fn check_rank(values: &[f64], q: f64) {
        let mut est = P2Grid::new();
        for &v in values {
            est.observe(v);
        }
        let rank = rank_of(values, est.estimate(q).expect("non-empty"));
        assert!(
            (rank - q).abs() <= RANK_TOL,
            "q={q}: estimate rank {rank:.4} off target by {:.4}",
            (rank - q).abs()
        );
    }

    #[test]
    fn p2_is_exact_below_the_marker_count() {
        // n < 13 (the marker count) must match stats::percentile bit
        // for bit — this covers the adversarial n < 5 case exactly.
        let sample = [
            4.0, -1.5, 2.25, 9.0, 0.0, 7.5, -3.0, 1.0, 6.0, 2.0, 8.0, 5.0,
        ];
        for n in 1..=sample.len() {
            let head = &sample[..n];
            let mut est = P2Grid::new();
            for &v in head {
                est.observe(v);
            }
            for q in [0.5, 0.95, 0.99] {
                assert_eq!(est.estimate(q), Some(exact(head, q * 100.0)), "n={n} q={q}");
            }
        }
        assert_eq!(P2Grid::new().estimate(0.5), None);
    }

    #[test]
    fn p2_tracks_a_constant_distribution_exactly() {
        let mut est = P2Grid::new();
        for _ in 0..1000 {
            est.observe(42.5);
        }
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(est.estimate(q), Some(42.5), "q={q}");
        }
    }

    #[test]
    fn p2_ignores_untracked_quantiles() {
        let mut est = P2Grid::new();
        for i in 0..100 {
            est.observe(i as f64);
        }
        assert_eq!(est.estimate(0.42), None);
        assert_eq!(est.count(), 100);
    }

    #[test]
    fn p2_tracks_uniform_and_ramp_distributions() {
        let mut rng = DeterministicRng::new(0x11ec);
        let uniform: Vec<f64> = (0..2000).map(|_| rng.uniform_f64() * 10.0).collect();
        let ramp: Vec<f64> = (0..2000).map(|i| i as f64 * 0.5).collect();
        for q in [0.5, 0.95, 0.99] {
            check_rank(&uniform, q);
            check_rank(&ramp, q);
        }
        // Uniform on [0, 10]: value-space agreement is also tight.
        let mut est = P2Grid::new();
        for &v in &uniform {
            est.observe(v);
        }
        let err = (est.estimate(0.5).unwrap() - exact(&uniform, 50.0)).abs();
        assert!(err < 0.5, "uniform p50 off by {err}");
    }

    #[test]
    fn p2_tracks_bimodal_distributions() {
        // Two far-apart modes: 70% near 1.0, 30% near 1000.0.
        let mut rng = DeterministicRng::new(0xb1d0);
        let bimodal: Vec<f64> = (0..3000)
            .map(|_| {
                if rng.uniform_f64() < 0.7 {
                    1.0 + rng.uniform_f64()
                } else {
                    1000.0 + rng.uniform_f64() * 10.0
                }
            })
            .collect();
        for q in [0.5, 0.95, 0.99] {
            check_rank(&bimodal, q);
        }
    }

    #[test]
    fn p2_tracks_heavy_tailed_distributions() {
        // Pareto-ish: x = u^-2 on (0, 1] has a heavy right tail.
        let mut rng = DeterministicRng::new(0x7a11);
        let heavy: Vec<f64> = (0..3000)
            .map(|_| (1.0 - rng.uniform_f64()).max(1e-6).powi(-2))
            .collect();
        for q in [0.5, 0.95, 0.99] {
            check_rank(&heavy, q);
        }
    }

    #[test]
    fn streaming_rollup_moments_are_exact() {
        let mut streaming = StreamingRollup::new();
        let mut batch = crate::telemetry::analyze::Rollup::default();
        let mut rng = DeterministicRng::new(0x5eed);
        for _ in 0..500 {
            let v = rng.uniform_f64() * 200.0 - 100.0;
            streaming.observe(v);
            batch.observe(v);
        }
        streaming.observe(f64::NAN);
        batch.observe(f64::NAN);
        assert_eq!(streaming.count(), batch.count());
        assert_eq!(streaming.non_finite(), batch.non_finite());
        assert_eq!(streaming.min(), batch.min());
        assert_eq!(streaming.max(), batch.max());
        let mean_err = (streaming.mean().unwrap() - batch.mean().unwrap()).abs();
        assert!(mean_err < 1e-9, "mean drift {mean_err}");
        assert_eq!(streaming.percentile(0.0), batch.min());
        assert_eq!(streaming.percentile(100.0), batch.max());
        assert_eq!(streaming.percentile(42.0), None);
    }

    /// A synthetic run exercising every aggregated kind.
    fn sample_events() -> Vec<Event> {
        let (tel, sink) = Telemetry::recorder();
        {
            let _run = tel.span("engine.run");
            for k in 0..40u64 {
                tel.event(EventKind::Gating, "engine.gating")
                    .field_u64("decision", k)
                    .field_u64("active", 10 + k % 7)
                    .field_u64("turned_on", 1)
                    .field_u64("turned_off", k % 3)
                    .emit();
                tel.counter("engine.decisions", 1);
                tel.histogram("engine.window_noise_pct", 4.0 + (k % 11) as f64);
                tel.solve("thermal.gs", 10 + (k % 5) as usize, 1e-9 * (k + 1) as f64);
                tel.event(EventKind::Emergency, "engine.emergency_check")
                    .field_u64("flagged_domains", k % 4)
                    .field_u64("true_domains", k % 5)
                    .field_u64("mispredicted", u64::from(k % 8 == 0))
                    .emit();
            }
            tel.gauge("thermal.max_silicon_c", 63.5);
            tel.gauge("bad.gauge", f64::NAN);
        }
        sink.events()
    }

    #[test]
    fn live_stats_match_batch_analysis_on_a_completed_trace() {
        let events = sample_events();
        let mut live_wire = LiveStats::new();
        let mut live_emit = LiveStats::new();
        let mut batch = TraceAnalysis::new();
        for event in &events {
            let parsed = ParsedEvent::from_line(&event.to_json()).unwrap();
            live_wire.observe(&parsed);
            live_emit.observe_event(event);
            batch.observe(&parsed);
        }

        // Wire-side and emit-side folding agree completely.
        assert_eq!(live_wire.events, live_emit.events);
        assert_eq!(live_wire.counters, live_emit.counters);
        assert_eq!(live_wire.rollups, live_emit.rollups);
        assert_eq!(live_wire.gating, live_emit.gating);
        assert_eq!(live_wire.emergency, live_emit.emergency);

        // Exact aggregates equal the batch analyzer.
        assert_eq!(live_wire.events, batch.events);
        for kind in EventKind::ALL {
            assert_eq!(
                live_wire.kind_count(kind),
                batch.kind_count(kind),
                "{kind:?}"
            );
        }
        assert_eq!(
            live_wire.counter("engine.decisions"),
            batch.counter("engine.decisions")
        );
        assert_eq!(live_wire.gating.decisions, batch.gating.decisions);
        assert_eq!(live_wire.gating.turned_on, batch.gating.turned_on);
        assert_eq!(live_wire.gating.turned_off, batch.gating.turned_off);
        assert_eq!(live_wire.gating.churn(), batch.gating.churn());
        assert_eq!(live_wire.emergency, batch.emergency);
        assert_eq!(live_wire.first_t_s, batch.first_t_s);
        assert_eq!(live_wire.last_t_s, batch.last_t_s);

        // Rollup moments are exact; percentiles near the exact values.
        let live_noise = live_wire.merged_rollup("engine.window_noise_pct").unwrap();
        let batch_noise = batch.rollup("engine.window_noise_pct").unwrap();
        assert_eq!(live_noise.count, batch_noise.count());
        assert_eq!(live_noise.min, batch_noise.min());
        assert_eq!(live_noise.max, batch_noise.max());
        assert!((live_noise.mean.unwrap() - batch_noise.mean().unwrap()).abs() < 1e-12);
        let p50_err = (live_noise.p50.unwrap() - batch_noise.percentile(50.0).unwrap()).abs();
        assert!(p50_err <= 1.0, "p50 estimate off by {p50_err}");

        // Non-finite gauges are counted, not ranked.
        let bad = live_wire.merged_rollup("bad.gauge").unwrap();
        assert_eq!((bad.count, bad.non_finite), (0, 1));

        // Solver sites roll up with exact solve counts.
        let gs = live_wire.solver("thermal.gs").unwrap();
        assert_eq!(gs.solves(), batch.solver("thermal.gs").unwrap().solves());
        assert_eq!(
            gs.iters.min(),
            batch.solver("thermal.gs").unwrap().iters.min()
        );
        assert_eq!(live_wire.total_solves(), 40);
    }

    #[test]
    fn rollups_are_keyed_per_track() {
        let sink = std::sync::Arc::new(LiveSink::new());
        let t0 = Telemetry::with_sink(sink.clone());
        let t1 = Telemetry::with_sink_tracked(sink.clone(), 1);
        t0.gauge("cell.metric", 1.0);
        t1.gauge("cell.metric", 100.0);
        t1.gauge("cell.metric", 200.0);
        let stats = sink.snapshot();
        assert_eq!(stats.rollup(0, "cell.metric").unwrap().count(), 1);
        assert_eq!(stats.rollup(1, "cell.metric").unwrap().count(), 2);
        assert_eq!(stats.rollup(2, "cell.metric"), None);
        let merged = stats.merged_rollup("cell.metric").unwrap();
        assert_eq!(merged.count, 3);
        assert_eq!(merged.min, Some(1.0));
        assert_eq!(merged.max, Some(200.0));
        assert!((merged.mean.unwrap() - 301.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn live_sink_counts_events_and_time() {
        let sink = std::sync::Arc::new(LiveSink::new());
        let tel = Telemetry::with_sink(sink.clone());
        for k in 0..100 {
            tel.counter("ticks", k);
        }
        assert_eq!(sink.events(), 100);
        assert_eq!(sink.snapshot().counter("ticks"), (0..100).sum::<u64>());
        // Overhead accounting is monotone (may round to 0 µs on a fast
        // machine, but never goes backwards).
        let us = sink.overhead_us();
        tel.counter("ticks", 1);
        assert!(sink.overhead_us() >= us);
    }

    #[test]
    fn empty_stats_answer_safely() {
        let stats = LiveStats::new();
        assert_eq!(stats.events, 0);
        assert_eq!(stats.counter("nope"), 0);
        assert!(stats.merged_rollup("nope").is_none());
        assert_eq!(stats.duration_s(), 0.0);
        assert_eq!(stats.gating.churn_per_decision(), None);
        assert_eq!(stats.emergency.emergency_rate(), None);
    }
}
