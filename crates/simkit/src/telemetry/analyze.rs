//! Trace analytics: streaming consumption of JSONL telemetry traces.
//!
//! The [`telemetry`](crate::telemetry) module *emits* structured traces;
//! this module *consumes* them. A [`TraceReader`] streams a
//! `trace.jsonl` file line by line through the hand-rolled
//! [`json`] parser (skipping corrupt interior lines and recovering from
//! a truncated final line, so a trace cut mid-write still analyzes), and
//! a [`TraceAnalysis`] folds the event stream into:
//!
//! * per-[`EventKind`] event counts;
//! * per-name value [`Rollup`]s for gauges and histograms, with
//!   p50/p95/p99 percentiles via [`crate::stats::percentile`];
//! * span begin/end pairing into per-name duration rollups
//!   ([`SpanStats`], with unmatched starts/ends surfaced rather than
//!   silently dropped);
//! * solver-convergence aggregates per solve site ([`SolverRollup`]:
//!   iteration and residual distributions);
//! * gating-churn ([`GatingStats`]) and voltage-emergency
//!   ([`EmergencyStats`]) aggregates.
//!
//! Nothing here panics on hostile input: unknown kinds, missing fields,
//! `null`ed non-finite numbers, and malformed lines are counted and
//! reported instead.
//!
//! # Examples
//!
//! ```
//! use simkit::telemetry::analyze::TraceAnalysis;
//! use simkit::telemetry::{EventKind, Telemetry};
//!
//! let (tel, sink) = Telemetry::recorder();
//! {
//!     let _span = tel.span("engine.run");
//!     tel.gauge("thermal.max_c", 81.5);
//!     tel.solve("thermal.gs", 12, 1e-9);
//! }
//! let trace: String = sink
//!     .events()
//!     .iter()
//!     .map(|e| e.to_json() + "\n")
//!     .collect();
//! let analysis = TraceAnalysis::from_reader(trace.as_bytes()).unwrap();
//! assert_eq!(analysis.events, 4);
//! assert_eq!(analysis.kind_count(EventKind::SpanEnd), 1);
//! assert_eq!(analysis.rollup("thermal.max_c").unwrap().count(), 1);
//! assert_eq!(analysis.solver("thermal.gs").unwrap().solves(), 1);
//! ```

use super::json::JsonValue;
use super::EventKind;
use crate::stats;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// One trace line decoded into its envelope and payload fields.
///
/// Unlike the emit-side [`Event`](super::Event), field values are parsed
/// [`JsonValue`]s: a consumer cannot know the original Rust type, and
/// non-finite floats arrive as `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// Seconds since the producing handle's epoch.
    pub t_s: f64,
    /// Event kind.
    pub kind: EventKind,
    /// Event name, e.g. `"thermal.max_silicon_c"`.
    pub name: String,
    /// Remaining payload members, in document order.
    pub fields: Vec<(String, JsonValue)>,
}

impl ParsedEvent {
    /// Decodes one JSONL trace line.
    ///
    /// # Errors
    ///
    /// Describes the first structural problem: malformed JSON, a
    /// non-object document, a missing/invalid `t`, `kind`, or `name`.
    pub fn from_line(line: &str) -> Result<ParsedEvent, String> {
        let doc = super::json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let members = doc.as_object().ok_or("event is not a JSON object")?;
        let t_s = doc
            .get("t")
            .and_then(JsonValue::as_f64)
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or("missing finite numeric field \"t\"")?;
        let kind_str = doc
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field \"kind\"")?;
        let kind =
            EventKind::parse(kind_str).ok_or_else(|| format!("unknown kind {kind_str:?}"))?;
        let name = doc
            .get("name")
            .and_then(JsonValue::as_str)
            .filter(|n| !n.is_empty())
            .ok_or("missing string field \"name\"")?
            .to_string();
        let fields = members
            .iter()
            .filter(|(k, _)| !matches!(k.as_str(), "t" | "kind" | "name"))
            .cloned()
            .collect();
        Ok(ParsedEvent {
            t_s,
            kind,
            name,
            fields,
        })
    }

    /// Looks up a payload field.
    pub fn field(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A payload field as a number.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(JsonValue::as_f64)
    }

    /// A payload field as an unsigned integer (negative values clamp
    /// to 0, fractional values truncate).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field_f64(key).map(|v| v.max(0.0) as u64)
    }
}

/// Streaming JSONL trace reader with recovery.
///
/// Reads one event per [`TraceReader::next_event`] call. A malformed
/// line *with* a trailing newline (mid-file corruption) is counted in
/// [`malformed_lines`](TraceReader::malformed_lines) and skipped; a
/// malformed *final* line without one (the writer died mid-line, or the
/// file is still being appended to) ends the stream cleanly and sets
/// [`truncated`](TraceReader::truncated). Blank lines are ignored.
#[derive(Debug)]
pub struct TraceReader<R> {
    reader: R,
    buf: String,
    lines_read: u64,
    malformed: u64,
    truncated: bool,
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a buffered byte source.
    pub fn new(reader: R) -> Self {
        TraceReader {
            reader,
            buf: String::new(),
            lines_read: 0,
            malformed: 0,
            truncated: false,
        }
    }

    /// The next well-formed event, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (including invalid UTF-8) from the
    /// underlying reader; recoverable *format* problems never error.
    pub fn next_event(&mut self) -> io::Result<Option<ParsedEvent>> {
        loop {
            self.buf.clear();
            if self.reader.read_line(&mut self.buf)? == 0 {
                return Ok(None);
            }
            let complete = self.buf.ends_with('\n');
            let line = self.buf.trim();
            if line.is_empty() {
                continue;
            }
            self.lines_read += 1;
            match ParsedEvent::from_line(line) {
                Ok(event) => return Ok(Some(event)),
                Err(_) if !complete => {
                    // Final unterminated line: a writer cut mid-record.
                    self.truncated = true;
                    return Ok(None);
                }
                Err(_) => {
                    self.malformed += 1;
                }
            }
        }
    }

    /// Non-blank lines consumed so far (including bad ones).
    pub fn lines_read(&self) -> u64 {
        self.lines_read
    }

    /// Malformed interior lines skipped so far.
    pub fn malformed_lines(&self) -> u64 {
        self.malformed
    }

    /// Whether the stream ended in a truncated (unterminated,
    /// unparseable) final line.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file for streaming.
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn open(path: &Path) -> io::Result<Self> {
        Ok(TraceReader::new(BufReader::new(File::open(path)?)))
    }
}

/// Incremental reader following a trace file that is still being
/// written — the tailing mode of [`TraceReader`].
///
/// Each [`TraceTailer::poll`] drains the complete (`\n`-terminated)
/// lines appended since the last poll and leaves anything after the
/// final newline untouched: the committed [`offset`](TraceTailer::offset)
/// only ever advances past whole lines, so a writer cut mid-record is
/// re-read — intact — on the next poll once the rest of the line lands.
/// A watcher can therefore persist the offset and
/// [`resume`](TraceTailer::resume) later; the resumed stream yields
/// exactly the events a one-shot read of the finished file would.
///
/// Malformed *complete* lines are counted and skipped, mirroring
/// [`TraceReader`]'s recovery behaviour.
#[derive(Debug)]
pub struct TraceTailer {
    file: File,
    offset: u64,
    malformed: u64,
    partial_tail: bool,
}

impl TraceTailer {
    /// Starts tailing `path` from the beginning.
    ///
    /// # Errors
    ///
    /// Propagates the open failure (e.g. the writer has not created the
    /// file yet — callers typically retry).
    pub fn follow(path: &Path) -> io::Result<Self> {
        TraceTailer::resume(path, 0)
    }

    /// Resumes tailing `path` from a previously committed byte
    /// `offset`. Resuming at [`TraceTailer::offset`] of an earlier
    /// tailer continues the stream without loss or duplication.
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn resume(path: &Path, offset: u64) -> io::Result<Self> {
        Ok(TraceTailer {
            file: File::open(path)?,
            offset,
            malformed: 0,
            partial_tail: false,
        })
    }

    /// Drains the complete lines currently available past the committed
    /// offset, in file order. An empty vector means no complete new
    /// line has landed yet — poll again later.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; format problems (malformed complete
    /// lines, invalid UTF-8, partial tails) never error.
    pub fn poll(&mut self) -> io::Result<Vec<ParsedEvent>> {
        use std::io::{Read, Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        let mut events = Vec::new();
        let mut consumed = 0usize;
        while let Some(len) = buf[consumed..].iter().position(|&b| b == b'\n') {
            let bytes = &buf[consumed..consumed + len];
            consumed += len + 1;
            let line = match std::str::from_utf8(bytes) {
                Ok(text) => text.trim(),
                Err(_) => {
                    self.malformed += 1;
                    continue;
                }
            };
            if line.is_empty() {
                continue;
            }
            match ParsedEvent::from_line(line) {
                Ok(event) => events.push(event),
                Err(_) => self.malformed += 1,
            }
        }
        self.offset += consumed as u64;
        self.partial_tail = consumed < buf.len();
        Ok(events)
    }

    /// The committed byte offset: the start of the first line not yet
    /// returned as a complete event. Safe to persist and
    /// [`resume`](TraceTailer::resume) from.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Malformed complete lines skipped so far.
    pub fn malformed_lines(&self) -> u64 {
        self.malformed
    }

    /// Whether the last poll saw bytes after the final newline — a
    /// line still being written (or a writer that died mid-record).
    pub fn partial_tail(&self) -> bool {
        self.partial_tail
    }
}

/// Distribution rollup of one named value stream.
///
/// Keeps every finite observation so percentiles are exact (traces are
/// bounded by run length; a full run emits thousands, not billions, of
/// observations per name). Non-finite observations — including `null`s
/// the JSON writer substitutes for NaN — are counted separately.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rollup {
    values: Vec<f64>,
    non_finite: u64,
}

impl Rollup {
    /// Folds one observation in (non-finite values are counted but not
    /// ranked).
    pub fn observe(&mut self, value: f64) {
        if value.is_finite() {
            self.values.push(value);
        } else {
            self.non_finite += 1;
        }
    }

    /// Counts an observation that carried no usable number (absent
    /// field, or a `null` from a non-finite float).
    pub fn note_invalid(&mut self) {
        self.non_finite += 1;
    }

    /// Number of finite observations.
    pub fn count(&self) -> u64 {
        self.values.len() as u64
    }

    /// Number of non-finite / unusable observations.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Sum of finite observations.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Mean of finite observations; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        stats::mean(&self.values)
    }

    /// Smallest finite observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        stats::min(&self.values)
    }

    /// Largest finite observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        stats::max(&self.values)
    }

    /// Linear-interpolated percentile over the finite observations.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        stats::percentile(&self.values, p)
    }

    /// The raw finite observations, in arrival order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Span begin/end pairing state and completed-duration rollup for one
/// span name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStats {
    /// Starts not yet matched by an end (non-zero at end of trace means
    /// the run died inside this span).
    pub open: u64,
    /// Durations (`dur_s`) of completed spans.
    pub durations: Rollup,
    /// Ends that arrived with no matching start.
    pub unmatched_ends: u64,
}

impl SpanStats {
    /// Completed start/end pairs.
    pub fn completed(&self) -> u64 {
        self.durations.count() + self.durations.non_finite()
    }
}

/// Solver-convergence rollup for one solve site (`thermal.gs`,
/// `pdn.ir_cg`, …): iteration-count and final-residual distributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverRollup {
    /// Iterations per solve.
    pub iters: Rollup,
    /// Final relative residual per solve.
    pub residuals: Rollup,
}

impl SolverRollup {
    /// Number of solve events folded in.
    pub fn solves(&self) -> u64 {
        self.iters.count() + self.iters.non_finite()
    }
}

/// Aggregate over the regulator gating decisions of a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GatingStats {
    /// Gating events seen.
    pub decisions: u64,
    /// Regulators switched on across all decisions.
    pub turned_on: u64,
    /// Regulators switched off across all decisions.
    pub turned_off: u64,
    /// Active-regulator count per decision.
    pub active: Rollup,
}

impl GatingStats {
    /// Total switching activity (on + off transitions).
    pub fn churn(&self) -> u64 {
        self.turned_on + self.turned_off
    }

    /// Mean switching activity per decision; `None` with no decisions.
    pub fn churn_per_decision(&self) -> Option<f64> {
        if self.decisions == 0 {
            None
        } else {
            Some(self.churn() as f64 / self.decisions as f64)
        }
    }
}

/// Aggregate over the voltage-emergency checks of a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EmergencyStats {
    /// Emergency-check events seen.
    pub checks: u64,
    /// Checks that flagged at least one domain.
    pub with_emergency: u64,
    /// Domain flags raised, summed over all checks.
    pub flagged_domains: u64,
    /// Ground-truth emergency domains, summed over all checks.
    pub true_domains: u64,
    /// Mispredicted domains, summed over all checks.
    pub mispredicted: u64,
}

impl EmergencyStats {
    /// Fraction of checks that flagged an emergency; `None` with no
    /// checks.
    pub fn emergency_rate(&self) -> Option<f64> {
        if self.checks == 0 {
            None
        } else {
            Some(self.with_emergency as f64 / self.checks as f64)
        }
    }
}

/// Full rollup of one JSONL trace.
///
/// Build it with [`TraceAnalysis::from_path`] /
/// [`TraceAnalysis::from_reader`], or fold events in one at a time with
/// [`TraceAnalysis::observe`]. All name-keyed collections preserve
/// first-appearance order, so reports over a deterministic trace are
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    /// Well-formed events folded in.
    pub events: u64,
    kind_counts: [u64; EventKind::ALL.len()],
    /// Counter totals by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge/histogram value rollups by name.
    pub rollups: Vec<(String, Rollup)>,
    /// Span pairing and durations by name.
    pub spans: Vec<(String, SpanStats)>,
    /// Solver-convergence rollups by solve site.
    pub solvers: Vec<(String, SolverRollup)>,
    /// Gating-churn aggregate.
    pub gating: GatingStats,
    /// Voltage-emergency aggregate.
    pub emergency: EmergencyStats,
    /// Timestamp of the first event.
    pub first_t_s: Option<f64>,
    /// Timestamp of the last event.
    pub last_t_s: Option<f64>,
    /// Malformed interior lines the reader skipped.
    pub malformed_lines: u64,
    /// Whether the trace ended in a truncated final line.
    pub truncated: bool,
}

fn kind_index(kind: EventKind) -> usize {
    EventKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind is in ALL")
}

/// Finds or inserts `name` in an order-preserving name-keyed vector.
fn entry<'v, T: Default>(vec: &'v mut Vec<(String, T)>, name: &str) -> &'v mut T {
    if let Some(i) = vec.iter().position(|(n, _)| n == name) {
        return &mut vec[i].1;
    }
    vec.push((name.to_string(), T::default()));
    &mut vec.last_mut().expect("just pushed").1
}

impl TraceAnalysis {
    /// An empty analysis.
    pub fn new() -> Self {
        TraceAnalysis::default()
    }

    /// Streams every event of a byte source into a fresh analysis.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors only; format problems are folded into
    /// [`malformed_lines`](TraceAnalysis::malformed_lines) /
    /// [`truncated`](TraceAnalysis::truncated).
    pub fn from_reader(reader: impl BufRead) -> io::Result<Self> {
        let mut trace = TraceReader::new(reader);
        let mut analysis = TraceAnalysis::new();
        while let Some(event) = trace.next_event()? {
            analysis.observe(&event);
        }
        analysis.malformed_lines = trace.malformed_lines();
        analysis.truncated = trace.truncated();
        Ok(analysis)
    }

    /// Streams a trace file (conventionally `trace.jsonl`) into a fresh
    /// analysis.
    ///
    /// # Errors
    ///
    /// Propagates open/read failures.
    pub fn from_path(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        TraceAnalysis::from_reader(BufReader::new(file))
    }

    /// Folds one event in.
    pub fn observe(&mut self, event: &ParsedEvent) {
        self.events += 1;
        self.kind_counts[kind_index(event.kind)] += 1;
        if self.first_t_s.is_none() {
            self.first_t_s = Some(event.t_s);
        }
        self.last_t_s = Some(self.last_t_s.map_or(event.t_s, |t| t.max(event.t_s)));
        match event.kind {
            EventKind::Counter => {
                *entry(&mut self.counters, &event.name) += event.field_u64("delta").unwrap_or(1);
            }
            EventKind::Gauge | EventKind::Histogram => {
                let rollup = entry(&mut self.rollups, &event.name);
                match event.field_f64("value") {
                    Some(v) => rollup.observe(v),
                    None => rollup.note_invalid(),
                }
            }
            EventKind::SpanStart => {
                entry::<SpanStats>(&mut self.spans, &event.name).open += 1;
            }
            EventKind::SpanEnd => {
                let span = entry::<SpanStats>(&mut self.spans, &event.name);
                if span.open > 0 {
                    span.open -= 1;
                    match event.field_f64("dur_s") {
                        Some(d) => span.durations.observe(d),
                        None => span.durations.note_invalid(),
                    }
                } else {
                    span.unmatched_ends += 1;
                }
            }
            EventKind::Solve => {
                let solver = entry::<SolverRollup>(&mut self.solvers, &event.name);
                match event.field_f64("iters") {
                    Some(i) => solver.iters.observe(i),
                    None => solver.iters.note_invalid(),
                }
                match event.field_f64("residual") {
                    Some(r) => solver.residuals.observe(r),
                    None => solver.residuals.note_invalid(),
                }
            }
            EventKind::Gating => {
                self.gating.decisions += 1;
                self.gating.turned_on += event.field_u64("turned_on").unwrap_or(0);
                self.gating.turned_off += event.field_u64("turned_off").unwrap_or(0);
                match event.field_f64("active") {
                    Some(a) => self.gating.active.observe(a),
                    None => self.gating.active.note_invalid(),
                }
            }
            EventKind::Emergency => {
                self.emergency.checks += 1;
                let flagged = event.field_u64("flagged_domains").unwrap_or(0);
                if flagged > 0 {
                    self.emergency.with_emergency += 1;
                }
                self.emergency.flagged_domains += flagged;
                self.emergency.true_domains += event.field_u64("true_domains").unwrap_or(0);
                self.emergency.mispredicted += event.field_u64("mispredicted").unwrap_or(0);
            }
            // Frame payloads (grid data, lanes) are consumed by the
            // timeline exporter, not the aggregate rollups; hotspot
            // magnitude rides along as a plain value rollup when present.
            EventKind::Frame => {
                if let Some(v) = event.field_f64("value") {
                    entry::<Rollup>(&mut self.rollups, &event.name).observe(v);
                }
            }
            EventKind::Progress => {}
        }
    }

    /// Number of events of one kind.
    pub fn kind_count(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind_index(kind)]
    }

    /// Total of one named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The gauge/histogram rollup for one name.
    pub fn rollup(&self, name: &str) -> Option<&Rollup> {
        self.rollups.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// The span stats for one name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// The solver rollup for one solve site.
    pub fn solver(&self, name: &str) -> Option<&SolverRollup> {
        self.solvers.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Span of event timestamps (0.0 for empty or single-event traces).
    pub fn duration_s(&self) -> f64 {
        match (self.first_t_s, self.last_t_s) {
            (Some(a), Some(b)) => (b - a).max(0.0),
            _ => 0.0,
        }
    }

    /// Spans left open or ended without a start, summed over all names
    /// — 0 for a cleanly recorded trace.
    pub fn unpaired_spans(&self) -> u64 {
        self.spans
            .iter()
            .map(|(_, s)| s.open + s.unmatched_ends)
            .sum()
    }
}

/// Expands one event into exportable time-series points, appended to
/// `out` as `(series, value)` pairs (the timestamp is the event's own
/// `t_s`):
///
/// * gauges and histograms → one point on the series of that name;
/// * gating events → `<name>.active` (the active-regulator count);
/// * solve events → `<name>.iters` and `<name>.residual`;
/// * span ends → `<name>.dur_s`.
///
/// Everything else (counters, span starts, progress) carries no
/// plottable instantaneous value and contributes nothing. This is the
/// mapping behind `tg-obs export`: T_max arrives as the
/// `thermal.max_silicon_c` gauge, worst window noise as the
/// `engine.window_noise_pct` histogram / `pdn.noise_max_pct` gauge,
/// `n_on` as `engine.gating.active`, and solver residuals as
/// `<site>.residual`.
pub fn series_points(event: &ParsedEvent, out: &mut Vec<(String, f64)>) {
    match event.kind {
        EventKind::Gauge | EventKind::Histogram => {
            if let Some(v) = event.field_f64("value") {
                out.push((event.name.clone(), v));
            }
        }
        EventKind::Gating => {
            if let Some(a) = event.field_f64("active") {
                out.push((format!("{}.active", event.name), a));
            }
        }
        EventKind::Solve => {
            if let Some(i) = event.field_f64("iters") {
                out.push((format!("{}.iters", event.name), i));
            }
            if let Some(r) = event.field_f64("residual") {
                out.push((format!("{}.residual", event.name), r));
            }
        }
        EventKind::Frame => {
            if let Some(v) = event.field_f64("value") {
                out.push((event.name.clone(), v));
            }
        }
        EventKind::SpanEnd => {
            if let Some(d) = event.field_f64("dur_s") {
                out.push((format!("{}.dur_s", event.name), d));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Telemetry;

    /// Records a small synthetic run and returns its JSONL text.
    fn sample_trace() -> String {
        let (tel, sink) = Telemetry::recorder();
        {
            let _run = tel.span("engine.run");
            for k in 0..4u64 {
                tel.event(EventKind::Gating, "engine.gating")
                    .field_u64("decision", k)
                    .field_u64("active", 10 + k)
                    .field_u64("turned_on", 1)
                    .field_u64("turned_off", if k > 1 { 2 } else { 0 })
                    .emit();
                tel.counter("engine.decisions", 1);
                tel.histogram("engine.window_noise_pct", 4.0 + k as f64);
                tel.solve("thermal.gs", 10 + k as usize, 1e-9 * (k + 1) as f64);
            }
            tel.event(EventKind::Emergency, "engine.emergency_check")
                .field_u64("flagged_domains", 2)
                .field_u64("true_domains", 1)
                .field_u64("mispredicted", 1)
                .emit();
            tel.event(EventKind::Emergency, "engine.emergency_check")
                .field_u64("flagged_domains", 0)
                .field_u64("true_domains", 0)
                .field_u64("mispredicted", 0)
                .emit();
            tel.gauge("thermal.max_silicon_c", 63.5);
        }
        sink.events().iter().map(|e| e.to_json() + "\n").collect()
    }

    #[test]
    fn analysis_counts_and_rolls_up() {
        let text = sample_trace();
        let a = TraceAnalysis::from_reader(text.as_bytes()).unwrap();
        assert_eq!(a.events, text.lines().count() as u64);
        assert_eq!(a.kind_count(EventKind::Gating), 4);
        assert_eq!(a.kind_count(EventKind::Emergency), 2);
        assert_eq!(a.counter("engine.decisions"), 4);

        let noise = a.rollup("engine.window_noise_pct").unwrap();
        assert_eq!(noise.count(), 4);
        assert_eq!(noise.min(), Some(4.0));
        assert_eq!(noise.max(), Some(7.0));
        assert_eq!(noise.percentile(50.0), Some(5.5));

        let gs = a.solver("thermal.gs").unwrap();
        assert_eq!(gs.solves(), 4);
        assert_eq!(gs.iters.percentile(0.0), Some(10.0));
        assert_eq!(gs.iters.percentile(100.0), Some(13.0));
        assert_eq!(gs.residuals.max(), Some(4e-9));

        assert_eq!(a.gating.decisions, 4);
        assert_eq!(a.gating.turned_on, 4);
        assert_eq!(a.gating.turned_off, 4);
        assert_eq!(a.gating.churn(), 8);
        assert_eq!(a.gating.churn_per_decision(), Some(2.0));
        assert_eq!(a.gating.active.mean(), Some(11.5));

        assert_eq!(a.emergency.checks, 2);
        assert_eq!(a.emergency.with_emergency, 1);
        assert_eq!(a.emergency.flagged_domains, 2);
        assert_eq!(a.emergency.mispredicted, 1);
        assert_eq!(a.emergency.emergency_rate(), Some(0.5));

        let run = a.span("engine.run").unwrap();
        assert_eq!(run.completed(), 1);
        assert_eq!(run.open, 0);
        assert_eq!(run.unmatched_ends, 0);
        assert_eq!(a.unpaired_spans(), 0);
        assert!(run.durations.max().unwrap() >= 0.0);
        assert!(!a.truncated);
        assert_eq!(a.malformed_lines, 0);
    }

    #[test]
    fn truncated_final_line_is_recovered() {
        let mut text = sample_trace();
        // Cut the final record mid-JSON, dropping its newline.
        text.truncate(text.len() - 15);
        assert!(!text.ends_with('\n'));
        let full_events = sample_trace().lines().count() as u64;
        let a = TraceAnalysis::from_reader(text.as_bytes()).unwrap();
        assert!(a.truncated);
        assert_eq!(a.events, full_events - 1);
        assert_eq!(a.malformed_lines, 0);
    }

    #[test]
    fn malformed_interior_lines_are_skipped_and_counted() {
        let good = sample_trace();
        let lines: Vec<&str> = good.lines().collect();
        let text = format!(
            "{}\nnot json at all\n{{\"t\":1}}\n{}\n",
            lines[0],
            lines[1..].join("\n")
        );
        let a = TraceAnalysis::from_reader(text.as_bytes()).unwrap();
        assert_eq!(a.malformed_lines, 2);
        assert_eq!(a.events, lines.len() as u64);
        assert!(!a.truncated);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = format!("\n\n{}\n\n", sample_trace());
        let a = TraceAnalysis::from_reader(text.as_bytes()).unwrap();
        assert_eq!(a.malformed_lines, 0);
        assert_eq!(a.events, sample_trace().lines().count() as u64);
    }

    #[test]
    fn null_values_count_as_non_finite() {
        // The writer emits NaN gauges as null; the rollup must not
        // panic and must surface the bad observation.
        let (tel, sink) = Telemetry::recorder();
        tel.gauge("g", f64::NAN);
        tel.gauge("g", 2.0);
        tel.solve("s", 3, f64::NAN);
        let text: String = sink.events().iter().map(|e| e.to_json() + "\n").collect();
        let a = TraceAnalysis::from_reader(text.as_bytes()).unwrap();
        let g = a.rollup("g").unwrap();
        assert_eq!(g.count(), 1);
        assert_eq!(g.non_finite(), 1);
        assert_eq!(g.percentile(99.0), Some(2.0));
        let s = a.solver("s").unwrap();
        assert_eq!(s.solves(), 1);
        assert_eq!(s.residuals.non_finite(), 1);
    }

    #[test]
    fn unmatched_spans_are_reported() {
        let lines = "\
            {\"t\":0.1,\"kind\":\"span_end\",\"name\":\"a\",\"dur_s\":0.1}\n\
            {\"t\":0.2,\"kind\":\"span_start\",\"name\":\"b\"}\n";
        let a = TraceAnalysis::from_reader(lines.as_bytes()).unwrap();
        assert_eq!(a.span("a").unwrap().unmatched_ends, 1);
        assert_eq!(a.span("b").unwrap().open, 1);
        assert_eq!(a.unpaired_spans(), 2);
    }

    #[test]
    fn series_points_expand_expected_kinds() {
        let (tel, sink) = Telemetry::recorder();
        tel.gauge("thermal.max_silicon_c", 63.5);
        tel.event(EventKind::Gating, "engine.gating")
            .field_u64("active", 12)
            .emit();
        tel.solve("pdn.ir_cg", 8, 1e-10);
        tel.counter("engine.steps", 50);
        let mut points = Vec::new();
        for event in sink.events() {
            let parsed = ParsedEvent::from_line(&event.to_json()).unwrap();
            series_points(&parsed, &mut points);
        }
        let names: Vec<&str> = points.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "thermal.max_silicon_c",
                "engine.gating.active",
                "pdn.ir_cg.iters",
                "pdn.ir_cg.residual"
            ]
        );
        assert_eq!(points[0].1, 63.5);
        assert_eq!(points[2].1, 8.0);
    }

    #[test]
    fn parsed_event_rejects_bad_envelopes() {
        for bad in [
            "[1,2]",
            "{\"kind\":\"gauge\",\"name\":\"x\"}",
            "{\"t\":1.0,\"kind\":\"nope\",\"name\":\"x\"}",
            "{\"t\":1.0,\"kind\":\"gauge\"}",
            "{\"t\":1.0,\"kind\":\"gauge\",\"name\":\"\"}",
            "{\"t\":-1.0,\"kind\":\"gauge\",\"name\":\"x\"}",
            "{\"t\":null,\"kind\":\"gauge\",\"name\":\"x\"}",
        ] {
            assert!(ParsedEvent::from_line(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn empty_trace_analyzes_to_empty() {
        let a = TraceAnalysis::from_reader("".as_bytes()).unwrap();
        assert_eq!(a.events, 0);
        assert_eq!(a.duration_s(), 0.0);
        assert_eq!(a.first_t_s, None);
        assert!(a.counters.is_empty() && a.rollups.is_empty());
    }

    /// A scratch directory unique to the calling test.
    fn tail_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tg_tail_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn event_line(name: &str, value: u64) -> String {
        format!("{{\"t\":0.5,\"kind\":\"counter\",\"name\":\"{name}\",\"delta\":{value}}}\n")
    }

    #[test]
    fn tailer_holds_a_partial_final_line_until_it_completes() {
        use std::io::Write;
        let dir = tail_dir("partial");
        let path = dir.join("trace.jsonl");
        let full = event_line("a", 1);
        let (head, rest) = full.split_at(20);
        std::fs::write(&path, head).expect("write partial");

        let mut tailer = TraceTailer::follow(&path).expect("open");
        assert!(tailer.poll().expect("poll").is_empty());
        assert!(tailer.partial_tail());
        assert_eq!(tailer.offset(), 0, "partial bytes stay uncommitted");

        // The writer finishes the record (and appends another).
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("reopen");
        write!(file, "{rest}{}", event_line("b", 2)).expect("complete line");
        drop(file);

        let events = tailer.poll().expect("poll");
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert!(!tailer.partial_tail());
        assert_eq!(tailer.malformed_lines(), 0);
        assert_eq!(
            tailer.offset() as usize,
            full.len() + event_line("b", 2).len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tailer_sees_appends_between_polls() {
        use std::io::Write;
        let dir = tail_dir("append");
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, event_line("first", 1)).expect("seed");
        let mut tailer = TraceTailer::follow(&path).expect("open");
        assert_eq!(tailer.poll().expect("poll").len(), 1);
        assert!(tailer.poll().expect("idle poll").is_empty());

        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("reopen");
        for k in 0..5 {
            write!(file, "{}", event_line("more", k)).expect("append");
            file.flush().expect("flush");
            let events = tailer.poll().expect("poll");
            assert_eq!(events.len(), 1, "append {k} visible immediately");
            assert_eq!(events[0].field_u64("delta"), Some(k));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tailer_resume_at_offset_matches_a_one_shot_read() {
        let dir = tail_dir("resume");
        let path = dir.join("trace.jsonl");
        let mut trace = String::new();
        trace.push_str(&event_line("a", 1));
        trace.push_str("this line is garbage\n");
        trace.push_str(&event_line("b", 2));
        trace.push_str(&event_line("c", 3));
        std::fs::write(&path, &trace).expect("write");

        // Tail part of the file, remember the offset, then resume.
        let mut first = TraceTailer::follow(&path).expect("open");
        let mut streamed: Vec<String> = first
            .poll()
            .expect("poll")
            .iter()
            .map(|e| e.name.clone())
            .collect();
        let malformed = first.malformed_lines();
        let offset = first.offset();
        drop(first);
        let mut resumed = TraceTailer::resume(&path, offset).expect("resume");
        streamed.extend(resumed.poll().expect("poll").iter().map(|e| e.name.clone()));

        // One-shot batch read of the finished file.
        let mut reader = TraceReader::open(&path).expect("open");
        let mut batch = Vec::new();
        while let Some(event) = reader.next_event().expect("read") {
            batch.push(event.name.clone());
        }
        assert_eq!(streamed, batch);
        assert_eq!(
            malformed + resumed.malformed_lines(),
            reader.malformed_lines()
        );

        // Resuming mid-stream (after just the first line) also loses
        // nothing: offset commits are per-line.
        let first_line = event_line("a", 1).len() as u64;
        let mut mid = TraceTailer::resume(&path, first_line).expect("resume");
        let names: Vec<String> = mid
            .poll()
            .expect("poll")
            .iter()
            .map(|e| e.name.clone())
            .collect();
        assert_eq!(names, ["b", "c"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
